//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API that flagsim uses. The build environment has no access to a crates
//! registry, so the workspace points `rand` at this path instead.
//!
//! Covered surface: [`RngCore`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Anything else is intentionally absent —
//! add to this file (and only this file) if a new call site needs it.
//!
//! Streams are deterministic per seed but are NOT bit-compatible with the
//! upstream crate; flagsim's tests assert distribution-level properties,
//! not exact draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `u64` entry point is supported).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(3);
        for _ in 0..1000 {
            let a = r.gen_range(0..100);
            assert!((0..100).contains(&a));
            let b = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&b));
            let c = r.gen_range(-3i32..4);
            assert!((-3..4).contains(&c));
            let d = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Lcg(9);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
