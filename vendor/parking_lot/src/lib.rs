//! Vendored stand-in for the subset of `parking_lot` flagsim uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`) and —
//! like the real parking_lot — does not poison: if a thread panics while
//! holding the lock, later lockers recover the inner state instead of
//! propagating the poison. That behaviour is what lets one panicking
//! worker degrade a parallel run instead of wedging every peer that shares
//! an implement.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value (poison is discarded).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held. A panic in a previous holder does not
    /// poison the lock — the guard is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Real parking_lot semantics: no poisoning, state is recoverable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
