//! Vendored stand-in for `rand_chacha`, exposing a [`ChaCha8Rng`] with the
//! same name and seeding API the real crate has. The build environment has
//! no crates registry, so the workspace points here instead.
//!
//! The generator underneath is xoshiro256++ (seeded via splitmix64), not
//! actual ChaCha: flagsim only needs a fast, statistically solid,
//! deterministic-per-seed stream, never bit-compatibility with upstream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator, seedable from a `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_seed_works() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
