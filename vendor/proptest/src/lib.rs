//! Vendored, dependency-light stand-in for the subset of `proptest` that
//! flagsim's property tests use. The build environment has no crates
//! registry, so the workspace points `proptest` here.
//!
//! What it keeps from real proptest: the `proptest! { fn f(x in strat) }`
//! macro syntax, `Strategy` with `prop_map`/`prop_flat_map`/`boxed`,
//! `Just`, `any::<T>()`, integer/float range strategies, tuple strategies,
//! `collection::vec`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`, and
//! `ProptestConfig::with_cases`. Cases are drawn from a generator seeded
//! deterministically from the test's name, so runs are reproducible.
//!
//! What it drops: shrinking, failure persistence, and forked execution. A
//! failing case simply panics via the assertion that caught it.

#![forbid(unsafe_code)]

use rand::{Rng as _, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The generator handed to strategies while sampling cases.
pub type TestRng = ChaCha8Rng;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator: FNV-1a over the test name.
pub fn seed_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Draw a value, then draw from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (needed to mix arms in [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.sample(rng);
        (self.f)(mid).sample(rng)
    }
}

/// A type-erased strategy.
#[allow(clippy::type_complexity)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted boxed alternatives.
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a wide dynamic range.
        let mag = rng.gen::<f64>() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy over a type's whole domain: `any::<u64>()`.
pub struct Any<T>(PhantomData<T>);

/// Build an [`Any`] strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length bounds for [`vec`]; convertible from `usize`, `Range<usize>`
    /// and `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, (a, b) in my_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::seed_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($pat,)*) =
                    ($($crate::Strategy::sample(&($strat), &mut __rng),)*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
/// Weighted arms (`w => strat`) are accepted but weights are ignored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property (plain `assert!` — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in pair(), c in 1usize..=4) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn oneof_map_flatmap(v in prop_oneof![
            (1u64..5).prop_map(|x| x * 2),
            Just(99u64),
        ], w in (1u32..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n as usize..(n as usize + 1)))) {
            prop_assert!(v == 99 || (2..10).contains(&v));
            prop_assert!(!w.is_empty() && w.len() < 4);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = crate::seed_rng("some::test");
        let mut r2 = crate::seed_rng("some::test");
        let s = crate::collection::vec(0u32..100, 5..10);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
