//! Vendored, dependency-free stand-in for the subset of `criterion` that
//! flagsim's benches use. The build environment has no crates registry, so
//! the workspace points `criterion` here.
//!
//! It keeps the API shape (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `criterion_group!`/`criterion_main!`) but replaces the statistical
//! machinery with a short fixed-iteration timer: each benchmark runs a
//! warm-up pass plus a handful of timed iterations and prints the mean.
//! Good enough to smoke the benches and eyeball regressions offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs.
const ITERS: u32 = 5;

/// Batch sizing hints (accepted for API compatibility; batches are always
/// one input per iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; one per iteration here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up pass, untimed.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup());
        let mut total = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = ITERS;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("bench {name:<56} (no measurement)");
    } else {
        let mean = b.elapsed / b.iters;
        println!("bench {name:<56} {mean:>12.3?}/iter ({} iters)", b.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup { _c: self, name }
    }
}

/// A named group; ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new();
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Accepted for API compatibility; the fixed iteration count stands.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        // one warm-up + ITERS timed
        assert_eq!(calls, 1 + ITERS);
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut setups = 0u32;
        g.bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 1 + ITERS);
    }
}
