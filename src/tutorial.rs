//! # A guided tour of `flagsim`
//!
//! This module is documentation only — a walkthrough from "color one
//! flag" to "regenerate the paper's evaluation". Every snippet compiles
//! and runs as a doctest.
//!
//! ## 1. Flags are layered specs; grids are paper
//!
//! ```
//! use flagsim::flags::library;
//! use flagsim::grid::render;
//!
//! let mauritius = library::mauritius();
//! let grid = mauritius.rasterize();
//! assert!(grid.is_complete());
//! assert_eq!(grid.cells_of_color(flagsim::grid::Color::Red).len(), 24);
//! // Print it: render::to_ascii / to_ansi / to_ppm / to_svg.
//! assert!(render::to_ascii(&grid).starts_with("RRRRRRRRRRRR"));
//! ```
//!
//! ## 2. Scenarios run students over partitions
//!
//! ```
//! use flagsim::agents::{ImplementKind, StudentProfile};
//! use flagsim::core::{config::ActivityConfig, scenario::Scenario,
//!                     work::PreparedFlag, TeamKit};
//! use flagsim::flags::library;
//!
//! let flag = PreparedFlag::new(&library::mauritius());
//! let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
//! let mut team: Vec<_> = (1..=4)
//!     .map(|i| StudentProfile::new(format!("P{i}")))
//!     .collect();
//! let cfg = ActivityConfig::default().with_seed(1);
//!
//! let solo = Scenario::fig1(1).run(&flag, &mut team, &kit, &cfg).unwrap();
//! let slices = Scenario::fig1(4).run(&flag, &mut team, &kit, &cfg).unwrap();
//! assert!(solo.correct && slices.correct);
//! // Scenario 4 contends on the single marker of each color:
//! assert!(slices.total_wait_secs() > 0.0);
//! ```
//!
//! ## 3. Speedup, efficiency, and what ate the difference
//!
//! ```
//! # use flagsim::agents::{ImplementKind, StudentProfile};
//! # use flagsim::core::{config::ActivityConfig, scenario::Scenario,
//! #                     work::PreparedFlag, TeamKit};
//! # use flagsim::flags::library;
//! # let flag = PreparedFlag::new(&library::mauritius());
//! # let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
//! # let mut team: Vec<_> = (1..=4)
//! #     .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
//! #     .collect();
//! # let cfg = ActivityConfig::default().with_seed(1);
//! # let solo = Scenario::fig1(1).run(&flag, &mut team, &kit, &cfg).unwrap();
//! # let stripes = Scenario::fig1(3).run(&flag, &mut team, &kit, &cfg).unwrap();
//! use flagsim::metrics::{efficiency, speedup};
//! let s = stripes.speedup_vs(&solo);
//! assert!(s > 2.0 && s < 4.2);
//! assert!(efficiency(solo.completion_secs(), stripes.completion_secs(), 4) <= 1.05);
//! ```
//!
//! ## 4. Dependencies cap parallelism (the Knox lesson)
//!
//! ```
//! use flagsim::core::layered;
//! use flagsim::flags::library;
//!
//! // The Union Jack's three layers form a chain: no speedup, ever.
//! let p = layered::layered_parallelism(&library::great_britain(), 2000);
//! assert!((p - 1.0).abs() < 1e-9);
//! // Mauritius is flat: four stripes, fourfold parallelism.
//! let p = layered::layered_parallelism(&library::mauritius(), 2000);
//! assert!(p >= 4.0);
//! ```
//!
//! ## 5. The assessment pipeline regenerates the paper's tables
//!
//! ```
//! use flagsim::assessment::report;
//! use flagsim::assessment::survey::Construct;
//!
//! let rows = report::regenerate_table(Construct::Engagement, 7);
//! assert!(report::table_matches(&rows)); // equals Table I exactly
//! ```
//!
//! ## 6. And the §V-C rubric grades real submissions
//!
//! ```
//! use flagsim::assessment::jordan;
//! use flagsim::taskgraph::{classify, SubmissionGrade, SubmittedGraph};
//!
//! let chain = SubmittedGraph::new(
//!     ["black stripe", "white stripe", "green stripe", "red triangle", "white dot"]
//!         .iter().map(|s| s.to_string()).collect(),
//!     vec![(0, 1), (1, 2), (2, 3), (3, 4)],
//! );
//! assert_eq!(
//!     classify(&chain, &jordan::reference_graph(), &jordan::grade_options()),
//!     SubmissionGrade::LinearChain, // "sequential-code thinking"
//! );
//! ```
//!
//! From here: `examples/` for full programs, `flagsim-cli` for the
//! command-line workflow, and `flagsim-bench`'s `experiments` binary for
//! the complete paper-vs-measured ledger.
