//! # flagsim — facade crate
//!
//! A simulation suite reproducing *"A Visual Unplugged Activity to
//! Introduce PDC"* (IPDPSW 2025): a discrete-event model of the
//! flag-coloring classroom activity, the substrates it needs, and the
//! assessment analytics that regenerate every table and figure in the
//! paper. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! This crate re-exports the workspace crates under short names:
//!
//! ```
//! use flagsim::flags::library;
//! let mauritius = library::mauritius();
//! let grid = mauritius.rasterize();
//! assert!(grid.is_complete());
//! ```

pub mod prelude;
pub mod tutorial;

pub use flagsim_agents as agents;
pub use flagsim_assessment as assessment;
pub use flagsim_core as core;
pub use flagsim_desim as desim;
pub use flagsim_flags as flags;
pub use flagsim_grid as grid;
pub use flagsim_metrics as metrics;
pub use flagsim_simcheck as simcheck;
pub use flagsim_taskgraph as taskgraph;
pub use flagsim_threads as threads;
