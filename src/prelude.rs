//! One-stop imports for the common workflow.
//!
//! ```
//! use flagsim::prelude::*;
//!
//! let flag = PreparedFlag::new(&library::mauritius());
//! let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
//! let mut team: Vec<StudentProfile> =
//!     (1..=4).map(|i| StudentProfile::new(format!("P{i}"))).collect();
//! let report = Scenario::fig1(3)
//!     .run(&flag, &mut team, &kit, &ActivityConfig::default())
//!     .unwrap();
//! assert!(report.correct);
//! ```

pub use flagsim_agents::{CostModel, Implement, ImplementKind, StudentProfile};
pub use flagsim_core::classroom::ClassroomSession;
pub use flagsim_core::config::{ActivityConfig, ReleasePolicy, TeamKit};
pub use flagsim_core::partition::{CellOrder, PartitionStrategy};
pub use flagsim_core::scenario::Scenario;
pub use flagsim_core::sweep::sweep;
pub use flagsim_core::work::{PreparedFlag, WorkItem};
pub use flagsim_core::RunReport;
pub use flagsim_flags::{library, FlagSpec};
pub use flagsim_grid::{render, Color, Grid};
pub use flagsim_metrics::{efficiency, speedup, RunStats};
pub use flagsim_taskgraph::{list_schedule, Priority, TaskGraph};
