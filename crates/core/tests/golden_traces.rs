//! Golden event-by-event traces for the six built-in scenarios.
//!
//! Each file under `tests/golden/` pins the complete trace of one
//! scenario at a fixed seed: the full event log (CSV), per-process
//! accounting, per-resource contention statistics, and the end time.
//! The engine rewrite (ISSUE 7) must reproduce every byte — these files
//! were generated with the pre-rewrite engine and act as the hard
//! determinism gate alongside the par-vs-serial property tests.
//!
//! To regenerate after an *intentional* trace-semantics change, run:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p flagsim-core --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_desim::Trace;
use flagsim_flags::library;
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 7;

/// The six built-in scenarios, named as the CLI names them.
fn builtins(flag: &PreparedFlag) -> Vec<(&'static str, Scenario)> {
    vec![
        ("scenario1", Scenario::fig1(1)),
        ("scenario2", Scenario::fig1(2)),
        ("scenario3", Scenario::fig1(3)),
        ("scenario4", Scenario::fig1(4)),
        ("pipelined", Scenario::pipelined_slices(flag, 4, 4)),
        ("alternating", Scenario::alternating_slices()),
    ]
}

/// Run one scenario exactly the way `SweepRunner::run_rep(0)` (and the
/// `flagsim run` CLI) does: fresh no-warm-up team, uniform thick-marker
/// kit, default config at [`GOLDEN_SEED`].
fn run_builtin(scenario: &Scenario) -> Trace {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(GOLDEN_SEED);
    let n = scenario.team_size(&flag, &cfg);
    let mut team: Vec<StudentProfile> = (1..=n)
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect();
    let report = scenario
        .run(&flag, &mut team, &kit, &cfg)
        .expect("built-in scenario must run");
    report.trace
}

/// Serialize everything the golden file pins: events, accounting, stats.
fn render(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&trace.events_csv());
    out.push_str("# procs name,busy_ms,waiting_ms,finished_at_ms\n");
    for p in &trace.procs {
        let finished = p
            .finished_at
            .map_or("none".to_owned(), |t| t.millis().to_string());
        let _ = writeln!(
            out,
            "# {},{},{},{}",
            p.name,
            p.busy.millis(),
            p.waiting.millis(),
            finished
        );
    }
    out.push_str(
        "# resources label,capacity,handoff_ms,acquisitions,contended,handoffs,\
         total_wait_ms,max_queue\n",
    );
    for r in &trace.resources {
        let _ = writeln!(
            out,
            "# {},{},{},{},{},{},{},{}",
            r.label,
            r.capacity,
            r.handoff.millis(),
            r.stats.acquisitions,
            r.stats.contended_acquisitions,
            r.stats.handoffs,
            r.stats.total_wait.millis(),
            r.stats.max_queue_len
        );
    }
    let _ = writeln!(out, "# end_time_ms {}", trace.end_time.millis());
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"))
}

#[test]
fn all_six_builtin_scenarios_match_golden_traces() {
    let flag = PreparedFlag::new(&library::mauritius());
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    let mut mismatches = Vec::new();
    for (name, scenario) in builtins(&flag) {
        let got = render(&run_builtin(&scenario));
        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        if got != want {
            // Find the first differing line for a readable failure.
            let diff_line = got
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .map_or_else(
                    || "trailing content differs".to_owned(),
                    |i| {
                        format!(
                            "first diff at line {}: got {:?}, want {:?}",
                            i + 1,
                            got.lines().nth(i).unwrap_or(""),
                            want.lines().nth(i).unwrap_or("")
                        )
                    },
                );
            mismatches.push(format!("{name}: {diff_line}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden trace mismatch (run GOLDEN_BLESS=1 only for intentional changes):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_traces_are_nontrivial() {
    // The gate is only as strong as the files: every golden trace must
    // hold a real event log, and scenario 4 must show real contention.
    for (name, scenario) in builtins(&PreparedFlag::new(&library::mauritius())) {
        let trace = run_builtin(&scenario);
        assert!(
            trace.events.len() > 100,
            "{name} golden trace suspiciously small: {} events",
            trace.events.len()
        );
        assert!(trace.end_time.millis() > 0, "{name} ended at t=0");
    }
    let four = run_builtin(&Scenario::fig1(4));
    assert!(four.total_waiting().millis() > 0, "scenario 4 must contend");
}
