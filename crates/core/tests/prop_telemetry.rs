//! Telemetry properties over real sweeps: the Chrome export must always
//! be well-formed JSON with balanced, name-matched B/E pairs, and the
//! canonical span tree must not depend on the worker count — `par_sweep`
//! at `--jobs 1` and `--jobs 4` records the same logical work.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::faults::FaultPlan;
use flagsim_core::scenario::Scenario;
use flagsim_core::sweep::par_sweep;
use flagsim_core::work::PreparedFlag;
use flagsim_flags::library;
use flagsim_telemetry::{json, Collector, SpanSet};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serialize properties that install the process-global collector: two
/// concurrent installs would steal each other's spans.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Run a scenario sweep under a fresh collector and return its spans.
fn sweep_spans(scenario: &Scenario, seed: u64, reps: u64, jobs: usize) -> SpanSet {
    let flag = PreparedFlag::new(&library::mauritius());
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    let cfg = ActivityConfig::default().with_seed(seed);
    let plan = FaultPlan::none();
    let collector = Collector::install();
    let result = par_sweep(scenario, &flag, &kit, &cfg, 4, false, reps, &plan, jobs);
    let set = collector.finish();
    result.expect("sweep succeeds");
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chrome_export_is_wellformed_and_balanced(
        seed in any::<u64>(),
        reps in 1u64..6,
        scenario_n in 1u8..5,
        jobs in 1usize..5,
    ) {
        let _serial = telemetry_lock();
        let set = sweep_spans(&Scenario::fig1(scenario_n), seed, reps, jobs);
        prop_assert!(!set.is_empty(), "a sweep must record spans");
        let trace = set.chrome_trace();
        let events = json::validate_chrome_trace(&trace).expect("valid chrome trace");
        prop_assert!(events > 0, "trace has no events:\n{trace}");
    }

    #[test]
    fn canonical_tree_is_job_count_invariant(
        seed in any::<u64>(),
        reps in 1u64..6,
        scenario_n in 1u8..5,
    ) {
        let _serial = telemetry_lock();
        let scenario = Scenario::fig1(scenario_n);
        let serial = sweep_spans(&scenario, seed, reps, 1);
        let par = sweep_spans(&scenario, seed, reps, 4);
        prop_assert_eq!(serial.canonical_tree(), par.canonical_tree());
    }
}
