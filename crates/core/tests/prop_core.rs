//! Property tests over the activity layer: any partition of any library
//! flag must verify, run to completion, produce the correct flag, and
//! respect the basic timing laws — under arbitrary seeds, fill styles,
//! policies, and kit stockings.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::config::{ActivityConfig, ReleasePolicy, TeamKit};
use flagsim_core::partition::{verify_assignments, CellOrder, PartitionStrategy};
use flagsim_core::run_activity;
use flagsim_core::work::PreparedFlag;
use flagsim_flags::library;
use proptest::prelude::*;

fn strategy_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::Solo),
        (1u32..6).prop_map(PartitionStrategy::HorizontalBands),
        (1u32..6).prop_map(PartitionStrategy::VerticalSlices),
        ((1u32..4), (1u32..4)).prop_map(|(c, r)| PartitionStrategy::Blocks(c, r)),
        (1u32..6).prop_map(PartitionStrategy::Cyclic),
        Just(PartitionStrategy::ByColor),
    ]
}

fn order_strategy() -> impl Strategy<Value = CellOrder> {
    prop_oneof![Just(CellOrder::RowMajor), Just(CellOrder::ColumnMajor)]
}

fn kind_strategy() -> impl Strategy<Value = ImplementKind> {
    prop_oneof![
        Just(ImplementKind::BingoDauber),
        Just(ImplementKind::ThickMarker),
        Just(ImplementKind::ThinMarker),
        Just(ImplementKind::Crayon),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any strategy × any flag: assignments partition the colorable cells
    /// and the run reproduces the reference raster.
    #[test]
    fn any_partition_runs_correctly(
        flag_idx in 0usize..13,
        strategy in strategy_strategy(),
        order in order_strategy(),
        kind in kind_strategy(),
        seed in any::<u64>(),
        markers in 1usize..4,
        policy in prop_oneof![
            Just(ReleasePolicy::KeepUntilColorChange),
            Just(ReleasePolicy::ReleaseEachCell)
        ],
    ) {
        let spec = &library::all()[flag_idx];
        let flag = PreparedFlag::new(spec);
        let assignments = strategy.assignments(&flag, order, &[]);
        prop_assert!(verify_assignments(&flag, &assignments, &[]).is_ok());

        let mut team: Vec<StudentProfile> = (0..assignments.len())
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let kit = TeamKit::uniform(kind, &flag.colors_needed(&[])).with_count_all(markers);
        let cfg = ActivityConfig::default().with_seed(seed).with_policy(policy);
        let report = run_activity("prop", &flag, &assignments, &mut team, &kit, &cfg)
            .expect("run succeeds");
        prop_assert!(report.correct, "{} with {strategy:?}", spec.name);

        // Timing laws: completion ≥ the busiest student's coloring time;
        // completion ≤ total busy + total waiting (serialization bound).
        let max_busy = report
            .students
            .iter()
            .map(|s| s.busy.millis())
            .max()
            .unwrap_or(0);
        prop_assert!(report.completion.millis() >= max_busy);
        let serial_bound: u64 = report
            .students
            .iter()
            .map(|s| s.busy.millis() + s.waiting.millis())
            .sum();
        prop_assert!(report.completion.millis() <= serial_bound.max(max_busy));

        // Students finish exactly their assigned cells.
        for (stats, items) in report.students.iter().zip(&assignments) {
            prop_assert_eq!(stats.cells, items.len());
        }
    }

    /// Equal seeds ⇒ identical runs; the run is a pure function of config.
    #[test]
    fn runs_are_deterministic(
        seed in any::<u64>(),
        strategy in strategy_strategy(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let run_once = || {
            let assignments = strategy.assignments(&flag, CellOrder::RowMajor, &[]);
            let mut team: Vec<StudentProfile> = (0..assignments.len())
                .map(|i| StudentProfile::new(format!("P{i}")))
                .collect();
            let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
            run_activity(
                "det",
                &flag,
                &assignments,
                &mut team,
                &kit,
                &ActivityConfig::default().with_seed(seed),
            )
            .expect("run succeeds")
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.completion, b.completion);
        prop_assert_eq!(a.trace.events.len(), b.trace.events.len());
    }

    /// Stocking more markers never makes a run wait longer.
    #[test]
    fn marker_stocking_is_monotone(seed in any::<u64>()) {
        let flag = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::VerticalSlices(4)
            .assignments(&flag, CellOrder::RowMajor, &[]);
        let wait_with = |markers: usize| {
            let mut team: Vec<StudentProfile> = (0..4)
                .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
                .collect();
            let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]))
                .with_count_all(markers);
            run_activity(
                "stock",
                &flag,
                &assignments,
                &mut team,
                &kit,
                &ActivityConfig::default().with_seed(seed),
            )
            .expect("run succeeds")
            .total_wait_secs()
        };
        let w1 = wait_with(1);
        let w2 = wait_with(2);
        let w4 = wait_with(4);
        prop_assert!(w2 <= w1 + 1e-9, "w1={w1} w2={w2}");
        prop_assert!(w4 <= w2 + 1e-9, "w2={w2} w4={w4}");
        prop_assert_eq!(w4, 0.0);
    }

    /// Dropout rebalancing at any point keeps the run correct.
    #[test]
    fn dropout_rebalancing_is_safe(
        who in 0usize..4,
        completed in 0usize..30,
        seed in any::<u64>(),
    ) {
        use flagsim_core::partition::rebalance_dropout;
        let flag = PreparedFlag::new(&library::mauritius());
        let a = PartitionStrategy::HorizontalBands(4)
            .assignments(&flag, CellOrder::RowMajor, &[]);
        let rebalanced = rebalance_dropout(&a, who, completed);
        prop_assert!(verify_assignments(&flag, &rebalanced, &[]).is_ok());
        let mut team: Vec<StudentProfile> = (0..4)
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let r = run_activity(
            "dropout",
            &flag,
            &rebalanced,
            &mut team,
            &kit,
            &ActivityConfig::default().with_seed(seed),
        )
        .expect("run succeeds");
        prop_assert!(r.correct);
    }
}
