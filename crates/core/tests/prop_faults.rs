//! Property tests over the fault-injection layer: a random fault plan on
//! a random scenario must always terminate with either a completed run
//! (carrying a resilience report) or a structured error string — never a
//! panic, never a hang — and the timing laws must hold throughout.

use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::faults::{FaultEvent, FaultPlan, RecoveryPolicy};
use flagsim_core::partition::{CellOrder, PartitionStrategy};
use flagsim_core::run::{run_activity, run_activity_with_faults};
use flagsim_core::work::PreparedFlag;
use flagsim_flags::library;
use proptest::prelude::*;

fn strategy_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::Solo),
        (1u32..6).prop_map(PartitionStrategy::HorizontalBands),
        (1u32..6).prop_map(PartitionStrategy::VerticalSlices),
        (1u32..6).prop_map(PartitionStrategy::Cyclic),
        Just(PartitionStrategy::ByColor),
    ]
}

fn policy_strategy() -> impl Strategy<Value = RecoveryPolicy> {
    prop_oneof![
        Just(RecoveryPolicy::Rebalance),
        (0u32..30).prop_map(|d| RecoveryPolicy::SpareSwap {
            replacement_delay_secs: f64::from(d),
        }),
        Just(RecoveryPolicy::AbortAndReport),
    ]
}

fn fresh_team(n: usize) -> Vec<StudentProfile> {
    (1..=n)
        .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline robustness property: any seeded random fault plan on
    /// any scenario terminates with a report or a structured error.
    #[test]
    fn random_fault_plans_always_terminate_structurally(
        flag_idx in 0usize..13,
        strategy in strategy_strategy(),
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let spec = &library::all()[flag_idx];
        let flag = PreparedFlag::new(spec);
        let assignments = strategy.assignments(&flag, CellOrder::RowMajor, &[]);
        let team_size = assignments.len();
        prop_assume!(team_size > 0);
        let colors = flag.colors_needed(&[]);
        let plan = FaultPlan::random(plan_seed, team_size, &colors).with_policy(policy);
        prop_assert!(plan.validate(team_size).is_ok(), "random plans must be valid");
        let mut team = fresh_team(team_size);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &colors);
        let cfg = ActivityConfig::default().with_seed(seed);
        match run_activity_with_faults("prop", &flag, &assignments, &mut team, &kit, &cfg, &plan) {
            Ok(r) => {
                let res = r.resilience.as_ref().expect("random plans are non-empty");
                // Recovery overhead is never negative, an abort only
                // happens under the abort policy, and every incident
                // carries a finite timestamp.
                prop_assert!(res.time_lost_secs >= 0.0);
                if res.aborted {
                    prop_assert!(plan.policy.aborts());
                }
                for i in &res.incidents {
                    prop_assert!(i.at_secs.is_finite() && i.at_secs >= 0.0);
                }
                // Time accounting: busy + waiting never exceeds a
                // student's lifetime, and nobody outlives the trace. A
                // bell can cut a run mid-cell (busy accrues at WorkStart
                // for the full cell), so the lifetime law only binds on
                // uncut runs.
                let end = r.trace.end_time.as_secs_f64();
                let cut_short = plan
                    .events
                    .iter()
                    .any(|e| matches!(e, FaultEvent::DeadlineBell { .. }));
                for s in &r.students {
                    if !cut_short {
                        let accounted = s.busy.as_secs_f64() + s.waiting.as_secs_f64();
                        prop_assert!(
                            accounted <= s.finished_at.as_secs_f64() + 1e-6,
                            "{}: busy+wait {accounted} > lifetime {}",
                            s.name,
                            s.finished_at.as_secs_f64()
                        );
                    }
                    prop_assert!(s.finished_at.as_secs_f64() <= end + 1e-6);
                }
                // A bell is a hard cap on the completion time.
                for e in &plan.events {
                    if let FaultEvent::DeadlineBell { at_secs } = e {
                        prop_assert!(
                            r.completion_secs() <= at_secs + 1e-6,
                            "completion {} past the bell {at_secs}",
                            r.completion_secs()
                        );
                    }
                }
            }
            Err(e) => prop_assert!(!e.is_empty(), "errors must carry a message"),
        }
    }

    /// Same plan, same seed, same scenario: bit-identical outcome,
    /// including the resilience report.
    #[test]
    fn faulted_runs_are_reproducible(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::VerticalSlices(4)
            .assignments(&flag, CellOrder::RowMajor, &[]);
        let colors = flag.colors_needed(&[]);
        let plan = FaultPlan::random(plan_seed, assignments.len(), &colors).with_policy(policy);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &colors);
        let cfg = ActivityConfig::default().with_seed(seed);
        let mut t1 = fresh_team(assignments.len());
        let mut t2 = fresh_team(assignments.len());
        let a = run_activity_with_faults("a", &flag, &assignments, &mut t1, &kit, &cfg, &plan);
        let b = run_activity_with_faults("b", &flag, &assignments, &mut t2, &kit, &cfg, &plan);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                prop_assert_eq!(ra.completion, rb.completion);
                prop_assert_eq!(ra.resilience, rb.resilience);
                prop_assert_eq!(ra.grid, rb.grid);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
        }
    }

    /// An empty plan is exactly the fault-free path: same completion,
    /// same grid, and no resilience report attached.
    #[test]
    fn empty_plan_is_the_identity(
        seed in any::<u64>(),
        strategy in strategy_strategy(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let assignments = strategy.assignments(&flag, CellOrder::RowMajor, &[]);
        prop_assume!(!assignments.is_empty());
        let colors = flag.colors_needed(&[]);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &colors);
        let cfg = ActivityConfig::default().with_seed(seed);
        let mut t1 = fresh_team(assignments.len());
        let mut t2 = fresh_team(assignments.len());
        let plain = run_activity("x", &flag, &assignments, &mut t1, &kit, &cfg).unwrap();
        let nofault = run_activity_with_faults(
            "x", &flag, &assignments, &mut t2, &kit, &cfg, &FaultPlan::none(),
        )
        .unwrap();
        prop_assert_eq!(plain.completion, nofault.completion);
        prop_assert_eq!(&plain.grid, &nofault.grid);
        prop_assert!(nofault.resilience.is_none());
    }
}
