//! Property tests over the causal-analysis layer: for any scenario,
//! seed, implement kind, and team size, the executed critical path must
//! tile the makespan with causally connected steps, the blame table must
//! account for every waited millisecond, the what-if bounds must respect
//! the task-graph span, and `explain`'s JSON must not depend on the job
//! count used to produce it.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::explain::explain_scenario;
use flagsim_core::scenario::Scenario;
use flagsim_core::work::PreparedFlag;
use flagsim_desim::{analyze, CriticalKind, SimDuration, SimTime};
use flagsim_flags::library;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ImplementKind> {
    prop_oneof![
        Just(ImplementKind::BingoDauber),
        Just(ImplementKind::ThickMarker),
        Just(ImplementKind::ThinMarker),
        Just(ImplementKind::Crayon),
    ]
}

/// One of the built-in scenario shapes, by index.
fn scenario_for(idx: usize, flag: &PreparedFlag) -> Scenario {
    match idx {
        0 => Scenario::fig1(1),
        1 => Scenario::fig1(2),
        2 => Scenario::fig1(3),
        3 => Scenario::fig1(4),
        4 => Scenario::pipelined_slices(flag, 4, 4),
        _ => Scenario::alternating_slices(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The executed critical path tiles `[0, makespan]`: the step
    /// durations sum to the makespan, the first step starts at zero, the
    /// last ends at the makespan, and each step begins where the
    /// previous one ended (causal connectivity).
    #[test]
    fn critical_path_tiles_the_makespan(
        scenario_idx in 0usize..6,
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let scenario = scenario_for(scenario_idx, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
        let team = scenario.team_size(&flag, &cfg);
        let e = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs");
        let trace = &e.report.trace;
        let path = &e.analysis.critical_path;
        prop_assert!(!path.is_empty());
        let first = &path[0];
        let last = &path[path.len() - 1];
        prop_assert_eq!(first.start, SimTime::ZERO);
        prop_assert_eq!(last.end, trace.end_time);
        let mut sum = SimDuration::ZERO;
        for (i, seg) in path.iter().enumerate() {
            prop_assert!(seg.start <= seg.end, "step {i} runs backward");
            if i > 0 {
                prop_assert_eq!(
                    path[i - 1].end, seg.start,
                    "step {} does not start where step {} ended", i, i - 1
                );
            }
            sum += seg.end.since(seg.start);
        }
        prop_assert_eq!(sum, trace.makespan(), "path must sum to the makespan");
    }

    /// The blame table accounts for exactly the engine's total waiting
    /// time, holder rows within a resource are sorted by descending
    /// cost, and every contention step on the critical path names a
    /// resource that the blame table also knows about.
    #[test]
    fn blame_accounts_for_all_waiting(
        scenario_idx in 0usize..6,
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let scenario = scenario_for(scenario_idx, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
        let team = scenario.team_size(&flag, &cfg);
        let e = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs");
        let analysis = &e.analysis;
        prop_assert_eq!(
            analysis.blame_total(),
            e.report.trace.total_waiting(),
            "blame must equal the engine's waiting accounting"
        );
        for rb in &analysis.blame {
            let holder_sum: u64 = rb.holders.iter().map(|h| h.wait.millis()).sum();
            prop_assert_eq!(holder_sum, rb.total.millis());
            for pair in rb.holders.windows(2) {
                prop_assert!(pair[0].wait >= pair[1].wait, "holders sorted by cost");
            }
        }
        let blamed: Vec<_> = analysis.blame.iter().map(|b| b.resource).collect();
        for seg in &analysis.critical_path {
            if let CriticalKind::Contention(r) = seg.kind {
                prop_assert!(
                    blamed.contains(&r),
                    "critical contention on a resource the blame table missed"
                );
            }
        }
    }

    /// Re-analyzing the same trace is a pure function: `analyze` twice
    /// gives identical structures, and the what-if sandwich
    /// `span <= no_contention <= observed` holds with an exact cost
    /// decomposition.
    #[test]
    fn analysis_is_pure_and_bounds_hold(
        scenario_idx in 0usize..6,
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let scenario = scenario_for(scenario_idx, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
        let team = scenario.team_size(&flag, &cfg);
        let e = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs");
        let again = analyze(&e.report.trace);
        prop_assert_eq!(&again.critical_path, &e.analysis.critical_path);
        prop_assert_eq!(&again.blame, &e.analysis.blame);
        prop_assert_eq!(&again.whatif, &e.analysis.whatif);
        let w = &e.analysis.whatif;
        prop_assert!(e.bounds_hold(), "span {} <= {} <= {} violated",
            e.graph_span, w.no_contention, w.observed);
        prop_assert!(w.ideal_balance <= w.no_contention);
        prop_assert_eq!(
            w.observed.millis(),
            w.no_contention.millis() + w.contention_cost.millis()
        );
        prop_assert_eq!(
            w.no_contention.millis(),
            w.ideal_balance.millis() + w.imbalance_cost.millis()
        );
    }

    /// `explain` JSON is byte-identical however many sweep jobs produced
    /// the underlying run.
    #[test]
    fn explain_json_is_job_count_invariant(
        scenario_idx in 0usize..6,
        seed in any::<u64>(),
        jobs in 2usize..5,
    ) {
        let flag = PreparedFlag::new(&library::mauritius());
        let scenario = scenario_for(scenario_idx, &flag);
        let cfg = ActivityConfig::default().with_seed(seed);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let team = scenario.team_size(&flag, &cfg);
        let serial = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs");
        let parallel = explain_scenario(&scenario, &flag, &kit, &cfg, team, jobs).expect("scenario runs");
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }
}

/// The ISSUE's acceptance gate, spelled out scenario by scenario: on
/// every built-in scenario the infinite-implement what-if bound sits
/// between the task-graph span and the observed makespan.
#[test]
fn whatif_bounds_hold_on_every_builtin_scenario() {
    let flag = PreparedFlag::new(&library::mauritius());
    let cfg = ActivityConfig::default().with_seed(7);
    let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
    for idx in 0..6 {
        let scenario = scenario_for(idx, &flag);
        let team = scenario.team_size(&flag, &cfg);
        let e = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs");
        let w = &e.analysis.whatif;
        assert!(
            e.graph_span <= w.no_contention && w.no_contention <= w.observed,
            "{}: span {} <= no_contention {} <= observed {} violated",
            scenario.name,
            e.graph_span,
            w.no_contention,
            w.observed
        );
    }
}
