//! Scenario slides.
//!
//! §IV: "We strongly suggest projecting slides with each scenario during
//! the activity to show the task decomposition. Number the cells to
//! efficiently convey the order in which they should be filled." This
//! module renders exactly those slides as text: per-student panels with
//! 1-based execution numbers on the cells, plus a color-coded overview.

use crate::partition::assignment_region;
use crate::scenario::Scenario;
use crate::work::{PreparedFlag, WorkItem};
use flagsim_grid::render;
use std::fmt::Write as _;

/// Render the slide for one scenario: a header, the flag overview, and a
/// numbered panel per student.
pub fn scenario_slide(scenario: &Scenario, flag: &PreparedFlag) -> String {
    let assignments = scenario
        .strategy
        .assignments(flag, scenario.order, &[]);
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", scenario.name);
    let _ = writeln!(out, "flag: {} ({}x{})", flag.name, flag.width, flag.height);
    out.push('\n');
    out.push_str(&render::to_ascii(&flag.reference));
    let _ = writeln!(out, "legend: {}", render::legend(&flag.reference));
    for (i, items) in assignments.iter().enumerate() {
        let _ = writeln!(
            out,
            "\nP{} colors {} cells in this order:",
            i + 1,
            items.len()
        );
        out.push_str(&panel(flag, items));
    }
    out
}

/// The numbered panel for one student's assignment.
pub fn panel(flag: &PreparedFlag, items: &[WorkItem]) -> String {
    render::to_numbered(&flag.reference, &assignment_region(items))
}

/// All four Fig. 1 slides in activity order, separated by blank lines —
/// the full deck the instructor projects.
pub fn fig1_deck(flag: &PreparedFlag) -> String {
    (1..=4u8)
        .map(|n| scenario_slide(&Scenario::fig1(n), flag))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    fn flag() -> PreparedFlag {
        PreparedFlag::new(&library::mauritius())
    }

    #[test]
    fn scenario_1_numbers_every_cell() {
        let slide = scenario_slide(&Scenario::fig1(1), &flag());
        assert!(slide.contains("P1 colors 96 cells"));
        // Cell 1 and the wrap past 99 both visible.
        assert!(slide.contains(" 1 "));
        // 96 cells: numbers print modulo 100, so no wrap artifacts here,
        // but none of the panel rows may contain unnumbered cells.
        let panel_lines: Vec<&str> = slide
            .lines()
            .filter(|l| l.contains(' ') && l.chars().any(|c| c.is_ascii_digit()))
            .collect();
        assert!(!panel_lines.is_empty());
        assert!(!slide.contains(".."), "scenario 1 leaves no cell unnumbered");
    }

    #[test]
    fn scenario_3_panels_are_disjoint() {
        let slide = scenario_slide(&Scenario::fig1(3), &flag());
        for i in 1..=4 {
            assert!(slide.contains(&format!("P{i} colors 24 cells")));
        }
        // Each panel shows 72 unnumbered cells (the other stripes).
        assert!(slide.contains(".."));
    }

    #[test]
    fn deck_contains_all_four() {
        let deck = fig1_deck(&flag());
        for n in 1..=4 {
            assert!(deck.contains(&format!("scenario {n}")), "missing slide {n}");
        }
        assert!(deck.contains("legend: R=red B=blue Y=yellow G=green"));
    }

    #[test]
    fn panel_numbering_follows_execution_order() {
        let pf = flag();
        let assignments = Scenario::fig1(4)
            .strategy
            .assignments(&pf, Scenario::fig1(4).order, &[]);
        let p1 = panel(&pf, &assignments[0]);
        // P1's slice is the left 3 columns; first row starts " 1  2  3".
        let first_line = p1.lines().next().unwrap();
        assert!(first_line.starts_with(" 1  2  3"), "{first_line:?}");
    }
}
