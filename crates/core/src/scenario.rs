//! The activity's scenarios (Fig. 1 and the variations).

use crate::config::{ActivityConfig, TeamKit};
use crate::faults::FaultPlan;
use crate::partition::{verify_assignments, CellOrder, PartitionStrategy};
use crate::report::RunReport;
use crate::run::{run_activity_scheduled, run_activity_with_faults, ActivityOutcome};
use crate::work::PreparedFlag;
use flagsim_agents::StudentProfile;
use flagsim_desim::SchedulePolicy;

/// A named task decomposition: what the instructor projects on the slide.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Slide title ("scenario 3: one stripe each").
    pub name: String,
    /// How the flag is divided.
    pub strategy: PartitionStrategy,
    /// Cell order within each part.
    pub order: CellOrder,
}

impl Scenario {
    /// A custom scenario.
    pub fn new(name: impl Into<String>, strategy: PartitionStrategy, order: CellOrder) -> Self {
        Scenario {
            name: name.into(),
            strategy,
            order,
        }
    }

    /// The four core scenarios of Fig. 1 (`n` in `1..=4`):
    ///
    /// 1. one student colors the entire flag;
    /// 2. two students, one coloring the red and blue stripes, the other
    ///    the yellow and green;
    /// 3. four students, one stripe each;
    /// 4. four students, one *vertical slice* each — every slice includes
    ///    part of each stripe, so the single marker of each color must be
    ///    handed around.
    pub fn fig1(n: u8) -> Scenario {
        match n {
            1 => Scenario::new(
                "scenario 1: one student",
                PartitionStrategy::Solo,
                CellOrder::RowMajor,
            ),
            2 => Scenario::new(
                "scenario 2: stripe pairs",
                PartitionStrategy::HorizontalBands(2),
                CellOrder::RowMajor,
            ),
            3 => Scenario::new(
                "scenario 3: one stripe each",
                PartitionStrategy::HorizontalBands(4),
                CellOrder::RowMajor,
            ),
            4 => Scenario::new(
                "scenario 4: vertical slices",
                PartitionStrategy::VerticalSlices(4),
                CellOrder::RowMajor,
            ),
            other => panic!("Fig. 1 has scenarios 1..=4, not {other}"), // lint-gate: allow (documented contract)
        }
    }

    /// All four core scenarios in activity order.
    pub fn core_activity() -> Vec<Scenario> {
        (1..=4).map(Scenario::fig1).collect()
    }

    /// The Webster variation: color `flag` with one student or with `n`
    /// students in vertical slices (how a team naturally splits a tricolor
    /// or the Canadian flag).
    pub fn webster(n: u32) -> Scenario {
        if n <= 1 {
            Scenario::new("webster: one student", PartitionStrategy::Solo, CellOrder::RowMajor)
        } else {
            Scenario::new(
                format!("webster: {n} students"),
                PartitionStrategy::VerticalSlices(n),
                CellOrder::RowMajor,
            )
        }
    }

    /// Scenario 4 with fine-grained alternation: same slices, but each
    /// student marches down their columns, crossing every stripe. Shorter
    /// marker holds, many more hand-offs.
    pub fn alternating_slices() -> Scenario {
        Scenario::new(
            "scenario 4 (column-major): vertical slices, fine-grained",
            PartitionStrategy::VerticalSlices(4),
            CellOrder::ColumnMajor,
        )
    }

    /// Scenario 4 with the pipelined rotation of §III-C: student `i`
    /// starts on stripe `i` and rotates, so the markers circulate and
    /// nobody convoys on red at the start.
    pub fn pipelined_slices(flag: &PreparedFlag, slices: u32, bands: u32) -> Scenario {
        let regions = crate::partition::pipelined_slices(flag, slices, bands);
        Scenario::new(
            "scenario 4 (pipelined): rotated stripe starts",
            PartitionStrategy::Custom(regions),
            CellOrder::RowMajor,
        )
    }

    /// How many coloring students this scenario needs (the paper's teams
    /// of five include a timer we don't simulate).
    pub fn team_size(&self, flag: &PreparedFlag, config: &ActivityConfig) -> usize {
        match &self.strategy {
            PartitionStrategy::ByColor => flag.colors_needed(&config.skip_colors).len(),
            s => s.parts(),
        }
    }

    /// Run this scenario with the given team (the first
    /// [`Scenario::team_size`] students color; extras sit out, like the
    /// timer). Assignments are verified before the run.
    pub fn run(
        &self,
        flag: &PreparedFlag,
        team: &mut [StudentProfile],
        kit: &TeamKit,
        config: &ActivityConfig,
    ) -> Result<RunReport, String> {
        self.run_with_faults(flag, team, kit, config, &FaultPlan::none())
    }

    /// [`Scenario::run`] under an injected [`FaultPlan`] — the fault drill
    /// version of the activity. The returned report carries a
    /// [`crate::faults::ResilienceReport`] when the plan is non-empty.
    pub fn run_with_faults(
        &self,
        flag: &PreparedFlag,
        team: &mut [StudentProfile],
        kit: &TeamKit,
        config: &ActivityConfig,
        plan: &FaultPlan,
    ) -> Result<RunReport, String> {
        self.compile(flag, config)?.run_with_faults(team, kit, config, plan)
    }

    /// Partition the flag and verify the assignments once, for reuse
    /// across many repetitions. The result depends only on the flag, the
    /// strategy, the cell order, and `skip_colors` — never on the seed —
    /// so a sweep compiles once and runs [`CompiledScenario`] per rep
    /// instead of re-partitioning and re-verifying every time.
    pub fn compile(
        &self,
        flag: &PreparedFlag,
        config: &ActivityConfig,
    ) -> Result<CompiledScenario, String> {
        let assignments = self
            .strategy
            .assignments(flag, self.order, &config.skip_colors);
        verify_assignments(flag, &assignments, &config.skip_colors)?;
        Ok(CompiledScenario {
            name: self.name.clone(),
            flag: flag.clone(),
            assignments,
        })
    }
}

/// A [`Scenario`] bound to one flag with its partition computed and
/// verified — the reusable per-rep unit of a sweep.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    name: String,
    flag: PreparedFlag,
    assignments: Vec<Vec<crate::work::WorkItem>>,
}

impl CompiledScenario {
    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many coloring students the compiled partition needs.
    pub fn parts(&self) -> usize {
        self.assignments.len()
    }

    /// The flag this scenario was compiled against.
    pub fn flag(&self) -> &PreparedFlag {
        &self.flag
    }

    /// Run the compiled partition with a team. Same contract as
    /// [`Scenario::run_with_faults`], minus the per-call partition and
    /// verification work.
    pub fn run_with_faults(
        &self,
        team: &mut [StudentProfile],
        kit: &TeamKit,
        config: &ActivityConfig,
        plan: &FaultPlan,
    ) -> Result<RunReport, String> {
        let needed = self.assignments.len();
        if team.len() < needed {
            return Err(format!(
                "{} needs {needed} coloring students, team has {}",
                self.name,
                team.len()
            ));
        }
        run_activity_with_faults(
            self.name.clone(),
            &self.flag,
            &self.assignments,
            &mut team[..needed],
            kit,
            config,
            plan,
        )
    }

    /// Run the compiled partition under a forced (or otherwise custom)
    /// [`SchedulePolicy`], surfacing a stall as a structured
    /// [`ActivityOutcome`] — the per-schedule unit of `flagsim verify`'s
    /// exploration. See [`run_activity_scheduled`].
    pub fn run_scheduled(
        &self,
        team: &mut [StudentProfile],
        kit: &TeamKit,
        config: &ActivityConfig,
        plan: &FaultPlan,
        policy: Option<Box<dyn SchedulePolicy>>,
    ) -> Result<ActivityOutcome, String> {
        let needed = self.assignments.len();
        if team.len() < needed {
            return Err(format!(
                "{} needs {needed} coloring students, team has {}",
                self.name,
                team.len()
            ));
        }
        run_activity_scheduled(
            self.name.clone(),
            &self.flag,
            &self.assignments,
            &mut team[..needed],
            kit,
            config,
            plan,
            policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_flags::library;
    use flagsim_grid::Color;

    fn setup() -> (PreparedFlag, Vec<StudentProfile>, TeamKit, ActivityConfig) {
        let pf = PreparedFlag::new(&library::mauritius());
        let team: Vec<StudentProfile> = (1..=4)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        (pf, team, kit, ActivityConfig::default())
    }

    #[test]
    fn fig1_scenarios_have_expected_sizes() {
        let (pf, _, _, cfg) = setup();
        assert_eq!(Scenario::fig1(1).team_size(&pf, &cfg), 1);
        assert_eq!(Scenario::fig1(2).team_size(&pf, &cfg), 2);
        assert_eq!(Scenario::fig1(3).team_size(&pf, &cfg), 4);
        assert_eq!(Scenario::fig1(4).team_size(&pf, &cfg), 4);
        assert_eq!(Scenario::core_activity().len(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn fig1_out_of_range_panics() {
        let _ = Scenario::fig1(5);
    }

    #[test]
    fn all_core_scenarios_run_correctly() {
        let (pf, mut team, kit, cfg) = setup();
        for sc in Scenario::core_activity() {
            let r = sc.run(&pf, &mut team, &kit, &cfg).unwrap();
            assert!(r.correct, "{} produced a wrong flag", sc.name);
        }
    }

    #[test]
    fn extra_students_sit_out() {
        let (pf, _, kit, cfg) = setup();
        let mut big_team: Vec<StudentProfile> = (1..=6)
            .map(|i| StudentProfile::new(format!("P{i}")))
            .collect();
        let r = Scenario::fig1(2).run(&pf, &mut big_team, &kit, &cfg).unwrap();
        assert_eq!(r.students.len(), 2);
    }

    #[test]
    fn too_small_team_errors() {
        let (pf, _, kit, cfg) = setup();
        let mut duo: Vec<StudentProfile> =
            (1..=2).map(|i| StudentProfile::new(format!("P{i}"))).collect();
        assert!(Scenario::fig1(4).run(&pf, &mut duo, &kit, &cfg).is_err());
    }

    #[test]
    fn pipelined_slices_beat_scenario_4() {
        let (pf, _, kit, cfg) = setup();
        let fresh_team = || -> Vec<StudentProfile> {
            (1..=4)
                .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
                .collect()
        };
        let mut t1 = fresh_team();
        let mut t2 = fresh_team();
        let convoy = Scenario::fig1(4).run(&pf, &mut t1, &kit, &cfg).unwrap();
        let pipelined = Scenario::pipelined_slices(&pf, 4, 4)
            .run(&pf, &mut t2, &kit, &cfg)
            .unwrap();
        assert!(pipelined.correct);
        // The rotation eliminates the startup convoy on red: faster and
        // far less waiting.
        assert!(
            pipelined.completion < convoy.completion,
            "pipelined {} should beat convoy {}",
            pipelined.completion,
            convoy.completion
        );
        assert!(pipelined.total_wait_secs() < convoy.total_wait_secs() / 2.0);
    }

    #[test]
    fn alternating_slices_trade_holds_for_handoffs() {
        let (pf, _, kit, cfg) = setup();
        let fresh_team = || -> Vec<StudentProfile> {
            (1..=4)
                .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
                .collect()
        };
        let mut t1 = fresh_team();
        let mut t2 = fresh_team();
        let block = Scenario::fig1(4).run(&pf, &mut t1, &kit, &cfg).unwrap();
        let alt = Scenario::alternating_slices()
            .run(&pf, &mut t2, &kit, &cfg)
            .unwrap();
        let handoffs = |r: &crate::report::RunReport| -> u64 {
            r.contention.iter().map(|c| c.stats.handoffs).sum()
        };
        assert!(
            handoffs(&alt) > handoffs(&block),
            "column-major should hand markers around more: {} vs {}",
            handoffs(&alt),
            handoffs(&block)
        );
    }

    #[test]
    fn webster_scenarios() {
        let pf = PreparedFlag::new(&library::france());
        let kit = TeamKit::uniform(
            ImplementKind::ThickMarker,
            &[Color::Blue, Color::White, Color::Red],
        );
        let cfg = ActivityConfig::default();
        let mut solo = vec![StudentProfile::new("P1").without_warmup()];
        let mut trio: Vec<StudentProfile> = (1..=3)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let s1 = Scenario::webster(1).run(&pf, &mut solo, &kit, &cfg).unwrap();
        let s3 = Scenario::webster(3).run(&pf, &mut trio, &kit, &cfg).unwrap();
        assert!(s3.completion < s1.completion);
        let speedup = s3.speedup_vs(&s1);
        assert!(speedup > 2.0, "France 3-way speedup {speedup}");
    }
}
