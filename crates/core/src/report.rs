//! Run reports — what the activity measures.

use crate::faults::ResilienceReport;
use flagsim_desim::resource::ResourceStats;
use flagsim_desim::{SimDuration, SimTime, Trace};
use flagsim_grid::{Color, Grid};
use std::fmt::Write as _;

/// Per-student accounting for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudentStats {
    /// Student name ("P1" …).
    pub name: String,
    /// Cells assigned.
    pub cells: usize,
    /// Cells actually completed — differs from `cells` when the bell rang,
    /// the student dropped out, or they adopted a dropout's orphaned work.
    pub completed: usize,
    /// Time spent coloring.
    pub busy: SimDuration,
    /// Time spent waiting for markers (queue + hand-off).
    pub waiting: SimDuration,
    /// Time spent idle (done early, or waiting to start).
    pub idle: SimDuration,
    /// When they finished their part.
    pub finished_at: SimTime,
}

/// Contention on one color's implement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorContention {
    /// The color.
    pub color: Color,
    /// The resource stats from the engine.
    pub stats: ResourceStats,
}

/// Everything a run produces: the number the timer student reports, plus
/// the breakdowns the post-activity discussion digs into.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario label ("scenario 3: one stripe each").
    pub label: String,
    /// Flag that was colored.
    pub flag_name: String,
    /// Completion time — the number that goes on the board.
    pub completion: SimDuration,
    /// Per-student stats.
    pub students: Vec<StudentStats>,
    /// Per-color contention.
    pub contention: Vec<ColorContention>,
    /// The grid as colored.
    pub grid: Grid,
    /// Whether the grid matches the flag (modulo skipped colors).
    pub correct: bool,
    /// Implements that broke during the run (crayons, mostly) — each cost
    /// a replacement delay.
    pub breakages: u64,
    /// How the run weathered an injected [`crate::faults::FaultPlan`] —
    /// `None` when no faults were planned.
    pub resilience: Option<ResilienceReport>,
    /// The raw engine trace (Gantt, event log).
    pub trace: Trace,
    /// Per-student cells in the order their coloring *started* — the
    /// `k`-th entry of `cell_log[i]` is the cell behind student `i`'s
    /// `k`-th `WorkStart` trace event. Unlike the static assignments this
    /// includes adopted orphan work and the cell cut off by a bell, so a
    /// race detector can map trace events back to grid cells.
    pub cell_log: Vec<Vec<crate::work::WorkItem>>,
}

impl RunReport {
    /// Completion time in seconds.
    pub fn completion_secs(&self) -> f64 {
        self.completion.as_secs_f64()
    }

    /// Total waiting across the team, in seconds — the contention bill.
    pub fn total_wait_secs(&self) -> f64 {
        self.students
            .iter()
            .map(|s| s.waiting.as_secs_f64())
            .sum()
    }

    /// Total coloring time across the team, in seconds.
    pub fn total_busy_secs(&self) -> f64 {
        self.students.iter().map(|s| s.busy.as_secs_f64()).sum()
    }

    /// Per-student busy seconds (for load-imbalance metrics).
    pub fn busy_secs_per_student(&self) -> Vec<f64> {
        self.students.iter().map(|s| s.busy.as_secs_f64()).collect()
    }

    /// Speedup of this run relative to a baseline run (usually scenario 1
    /// on the same flag): `baseline.completion / self.completion`.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        flagsim_metrics::speedup(baseline.completion_secs(), self.completion_secs())
    }

    /// Pipeline fill time: how long until every student had started
    /// coloring (until the last first-work event). Zero when everyone
    /// starts immediately; large in scenario 4 where students queue for
    /// the red marker before doing anything.
    pub fn pipeline_fill_secs(&self) -> f64 {
        let mut latest_first_work = SimTime::ZERO;
        for (idx, _) in self.students.iter().enumerate() {
            let first = self
                .trace
                .events
                .iter()
                .find(|e| {
                    e.proc.index() == idx
                        && matches!(e.kind, flagsim_desim::EventKind::WorkStart { .. })
                })
                .map(|e| e.time)
                .unwrap_or(self.trace.end_time);
            latest_first_work = latest_first_work.max(first);
        }
        latest_first_work.as_secs_f64()
    }

    /// Export the run as a CSV bundle: `(filename, contents)` pairs for
    /// students, marker contention, and the raw event log — spreadsheet
    /// food for a post-activity data-analysis exercise.
    pub fn to_csv_bundle(&self) -> Vec<(String, String)> {
        let mut students = String::from(
            "name,cells_assigned,cells_completed,busy_s,waiting_s,idle_s,finished_at_s\n",
        );
        for s in &self.students {
            let _ = writeln!(
                students,
                "{},{},{},{:.3},{:.3},{:.3},{:.3}",
                flagsim_desim::csv_field(&s.name),
                s.cells,
                s.completed,
                s.busy.as_secs_f64(),
                s.waiting.as_secs_f64(),
                s.idle.as_secs_f64(),
                s.finished_at.as_secs_f64(),
            );
        }
        let mut contention = String::from(
            "color,acquisitions,contended,handoffs,total_wait_s,max_queue\n",
        );
        for c in &self.contention {
            let _ = writeln!(
                contention,
                "{},{},{},{},{:.3},{}",
                c.color,
                c.stats.acquisitions,
                c.stats.contended_acquisitions,
                c.stats.handoffs,
                c.stats.total_wait.as_secs_f64(),
                c.stats.max_queue_len,
            );
        }
        vec![
            ("students.csv".to_owned(), students),
            ("contention.csv".to_owned(), contention),
            ("events.csv".to_owned(), self.trace.events_csv()),
        ]
    }

    /// A classroom-style one-liner: `"scenario 3: one stripe each — 48.2s"`.
    pub fn board_line(&self) -> String {
        format!("{} — {:.1}s", self.label, self.completion_secs())
    }

    /// A multi-line breakdown for the post-activity discussion.
    pub fn detail(&self) -> String {
        let mut out = self.detail_core();
        if let Some(res) = &self.resilience {
            out.push_str(&res.render());
        }
        out
    }

    /// [`detail`](Self::detail) minus the resilience block — the part
    /// that is pure measurement. The CLI uses this for stdout and routes
    /// the resilience narrative to stderr separately.
    pub fn detail_core(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {} — completion {:.1}s ({})",
            self.label,
            self.flag_name,
            self.completion_secs(),
            if self.correct { "correct" } else { "WRONG FLAG" },
        );
        for s in &self.students {
            let _ = writeln!(
                out,
                "  {:<4} {:>3} cells  busy {:>7}  wait {:>7}  idle {:>7}",
                s.name, s.cells, s.busy, s.waiting, s.idle
            );
        }
        for c in &self.contention {
            if c.stats.contended_acquisitions > 0 {
                let _ = writeln!(
                    out,
                    "  {:<7} marker: {} grabs, {} contended, total wait {}, max queue {}",
                    c.color,
                    c.stats.acquisitions,
                    c.stats.contended_acquisitions,
                    c.stats.total_wait,
                    c.stats.max_queue_len
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            label: "scenario 1".into(),
            flag_name: "Mauritius".into(),
            completion: SimDuration::from_millis(100_000),
            students: vec![StudentStats {
                name: "P1".into(),
                cells: 96,
                completed: 96,
                busy: SimDuration::from_millis(95_000),
                waiting: SimDuration::from_millis(0),
                idle: SimDuration::from_millis(5_000),
                finished_at: SimTime(100_000),
            }],
            contention: vec![],
            grid: Grid::new(2, 2),
            correct: true,
            breakages: 0,
            resilience: None,
            trace: Trace {
                end_time: SimTime(100_000),
                procs: vec![],
                resources: vec![],
                events: vec![],
            },
            cell_log: vec![],
        }
    }

    #[test]
    fn board_line_format() {
        assert_eq!(report().board_line(), "scenario 1 — 100.0s");
    }

    #[test]
    fn speedup_vs_baseline() {
        let base = report();
        let mut fast = report();
        fast.completion = SimDuration::from_millis(25_000);
        assert_eq!(fast.speedup_vs(&base), 4.0);
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_busy_secs(), 95.0);
        assert_eq!(r.total_wait_secs(), 0.0);
        assert_eq!(r.busy_secs_per_student(), vec![95.0]);
    }

    #[test]
    fn csv_bundle_has_three_files_with_headers() {
        let bundle = report().to_csv_bundle();
        let names: Vec<&str> = bundle.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["students.csv", "contention.csv", "events.csv"]);
        assert!(bundle[0].1.starts_with("name,cells_assigned"));
        assert!(bundle[0].1.contains("P1,96,96,95.000,0.000"));
        assert!(bundle[2].1.starts_with("time_ms,"));
    }

    #[test]
    fn detail_mentions_everything() {
        let d = report().detail();
        assert!(d.contains("scenario 1 on Mauritius"));
        assert!(d.contains("correct"));
        assert!(d.contains("P1"));
    }
}
