//! Work items: what one student colors, cell by cell.

use flagsim_agents::CellKind;
use flagsim_flags::FlagSpec;
use flagsim_grid::{CellId, Color, Coord, Grid};

/// One cell of coloring work: where, what color, and how fiddly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// The cell to color.
    pub cell: CellId,
    /// The color it must receive (the flag's final visible color).
    pub color: Color,
    /// Interior or boundary (boundary cells take precision time — the
    /// maple-leaf effect).
    pub kind: CellKind,
}

/// A flag prepared for the activity: its flat raster (final colors) and a
/// per-cell difficulty classification.
#[derive(Debug, Clone)]
pub struct PreparedFlag {
    /// The flag spec this was built from.
    pub name: String,
    /// Raster width.
    pub width: u32,
    /// Raster height.
    pub height: u32,
    /// The reference raster (what a correct coloring must produce).
    pub reference: Grid,
    /// Per-cell kinds, indexed by `CellId`.
    kinds: Vec<CellKind>,
}

impl PreparedFlag {
    /// Prepare a flag at its recommended size.
    pub fn new(flag: &FlagSpec) -> Self {
        Self::at_size(flag, flag.default_width, flag.default_height)
    }

    /// Prepare a flag at an explicit raster size.
    pub fn at_size(flag: &FlagSpec, width: u32, height: u32) -> Self {
        let reference = flag.rasterize_flat_at(width, height);
        let kinds = classify_cells(&reference);
        PreparedFlag {
            name: flag.name.clone(),
            width,
            height,
            reference,
            kinds,
        }
    }

    /// The difficulty kind of a cell.
    pub fn kind(&self, cell: CellId) -> CellKind {
        self.kinds[cell.index()]
    }

    /// The work item for one cell (None if the cell is blank in the
    /// reference — nothing to color).
    pub fn item(&self, cell: CellId) -> Option<WorkItem> {
        let color = self.reference.get(cell);
        color.is_painted().then_some(WorkItem {
            cell,
            color,
            kind: self.kind(cell),
        })
    }

    /// Work items for a sequence of cells, in order, skipping blank cells
    /// and cells whose color is in `skip` (the "white is just the paper"
    /// shortcut the paper allows for Jordan).
    pub fn items<'a>(
        &'a self,
        cells: impl IntoIterator<Item = CellId> + 'a,
        skip: &'a [Color],
    ) -> impl Iterator<Item = WorkItem> + 'a {
        cells
            .into_iter()
            .filter_map(move |c| self.item(c))
            .filter(move |it| !skip.contains(&it.color))
    }

    /// All colors that actually need coloring (present in the reference
    /// and not skipped).
    pub fn colors_needed(&self, skip: &[Color]) -> Vec<Color> {
        let mut out = Vec::new();
        for (_, c) in self.reference.iter() {
            if c.is_painted() && !skip.contains(&c) && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Total number of colorable cells (not blank, not skipped).
    pub fn total_items(&self, skip: &[Color]) -> usize {
        self.reference
            .iter()
            .filter(|(_, c)| c.is_painted() && !skip.contains(c))
            .count()
    }

    /// Count of boundary cells among colorable cells — a crude intricacy
    /// score (Canada ≫ France).
    pub fn boundary_cells(&self, skip: &[Color]) -> usize {
        self.reference
            .iter()
            .filter(|&(id, c)| {
                c.is_painted() && !skip.contains(&c) && self.kind(id) == CellKind::Boundary
            })
            .count()
    }
}

/// Classify every cell of a raster: a cell is a boundary cell if any of
/// its 4-neighbors has a different color (students must edge carefully
/// there). Grid edges don't count — the paper's grids have margins, and
/// running a marker to the paper's edge needs no precision.
pub fn classify_cells(grid: &Grid) -> Vec<CellKind> {
    let (w, h) = (grid.width(), grid.height());
    let mut kinds = Vec::with_capacity(grid.len());
    for y in 0..h {
        for x in 0..w {
            let own = grid.get_at(Coord::new(x, y));
            let mut boundary = false;
            let neighbors = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ];
            for (nx, ny) in neighbors {
                if nx < w && ny < h && grid.get_at(Coord::new(nx, ny)) != own {
                    boundary = true;
                    break;
                }
            }
            kinds.push(if boundary {
                CellKind::Boundary
            } else {
                CellKind::Interior
            });
        }
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    #[test]
    fn mauritius_boundary_cells_are_stripe_edges() {
        let pf = PreparedFlag::new(&library::mauritius());
        // 12×8, stripes of 2 rows: rows 1,2,3,4,5,6 touch a different
        // stripe above or below → 6 rows × 12 cols = 72 boundary cells.
        assert_eq!(pf.boundary_cells(&[]), 72);
        assert_eq!(pf.total_items(&[]), 96);
        // Top-left cell is interior (edges don't count).
        assert_eq!(pf.kind(CellId(0)), CellKind::Interior);
        // A cell in row 1 touches row 2 (blue) → boundary.
        assert_eq!(pf.kind(Coord::new(0, 1).to_id(12)), CellKind::Boundary);
    }

    #[test]
    fn canada_is_more_intricate_than_france() {
        let fr = PreparedFlag::new(&library::france());
        let ca = PreparedFlag::new(&library::canada());
        let fr_frac = fr.boundary_cells(&[]) as f64 / fr.total_items(&[]) as f64;
        let ca_frac = ca.boundary_cells(&[]) as f64 / ca.total_items(&[]) as f64;
        assert!(
            ca_frac > fr_frac * 1.5,
            "Canada {ca_frac:.2} vs France {fr_frac:.2}"
        );
    }

    #[test]
    fn items_skip_blank_and_skipped_colors() {
        let flag = library::jordan();
        let pf = PreparedFlag::new(&flag);
        let all: Vec<_> = pf.items(pf.reference.ids(), &[]).collect();
        assert_eq!(all.len(), pf.total_items(&[]));
        let no_white: Vec<_> = pf.items(pf.reference.ids(), &[Color::White]).collect();
        assert!(no_white.len() < all.len());
        assert!(no_white.iter().all(|it| it.color != Color::White));
        assert_eq!(no_white.len(), pf.total_items(&[Color::White]));
    }

    #[test]
    fn colors_needed_respects_skip() {
        let pf = PreparedFlag::new(&library::jordan());
        let with = pf.colors_needed(&[]);
        assert!(with.contains(&Color::White));
        let without = pf.colors_needed(&[Color::White]);
        assert!(!without.contains(&Color::White));
        assert_eq!(without.len(), with.len() - 1);
    }

    #[test]
    fn item_returns_none_for_blank() {
        // A flag that leaves cells blank: Jordan with everything white
        // skipped isn't blank in the raster; build a custom check instead.
        let mut grid = Grid::new(2, 1);
        grid.paint(CellId(0), Color::Red);
        let kinds = classify_cells(&grid);
        // Red cell borders a blank cell → boundary.
        assert_eq!(kinds[0], CellKind::Boundary);
    }
}
