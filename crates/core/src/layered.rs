//! Layered flags and their dependency graphs — the Knox follow-up.
//!
//! Complicated flags are easiest to color in layers (the Painter's
//! algorithm), but "this approach also limits parallelism by introducing
//! dependencies: the background must be colored before the diagonals,
//! which must be colored before the rectilinear lines". This module turns
//! any [`FlagSpec`] into a [`TaskGraph`] (one task per layer, weighted by
//! the cells that layer paints) and analyzes/schedules it.

use flagsim_flags::FlagSpec;
use flagsim_taskgraph::analysis;
use flagsim_taskgraph::{list_schedule, Priority, Schedule, TaskGraph};

/// Build a task graph for coloring `flag` in layers: one task per layer,
/// weight = (cells the layer paints) × `ms_per_cell`, edges where layers
/// overlap (reduced to the minimal Fig. 9-style graph).
pub fn flag_taskgraph(flag: &FlagSpec, ms_per_cell: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let ids: Vec<_> = (0..flag.layer_count())
        .map(|li| {
            let cells = flag.layer_cells(li).len() as u64;
            g.add_task(flag.layers[li].name.clone(), cells * ms_per_cell)
        })
        .collect();
    for (i, j) in flag.layer_dependencies() {
        g.add_dep(ids[i], ids[j])
            .expect("layer dependencies are forward edges");
    }
    g.transitive_reduction()
}

/// One point of a layered speedup curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredPoint {
    /// Processor count.
    pub p: usize,
    /// Scheduled makespan (ms).
    pub makespan_ms: u64,
    /// Speedup vs one processor.
    pub speedup: f64,
}

/// Schedule the layered coloring of `flag` on `p` students.
pub fn layered_schedule(flag: &FlagSpec, p: usize, ms_per_cell: u64) -> (TaskGraph, Schedule) {
    let g = flag_taskgraph(flag, ms_per_cell);
    let s = list_schedule(&g, p, Priority::CriticalPath);
    (g, s)
}

/// Layered speedup curve over processor counts: how little extra students
/// help once the layer chain dominates.
pub fn layered_speedup_curve(flag: &FlagSpec, ps: &[usize], ms_per_cell: u64) -> Vec<LayeredPoint> {
    let g = flag_taskgraph(flag, ms_per_cell);
    let t1 = list_schedule(&g, 1, Priority::CriticalPath).makespan;
    ps.iter()
        .map(|&p| {
            let m = list_schedule(&g, p, Priority::CriticalPath).makespan;
            LayeredPoint {
                p,
                makespan_ms: m,
                speedup: t1 as f64 / m.max(1) as f64,
            }
        })
        .collect()
}

/// The maximum useful parallelism of a flag's layered coloring
/// (work / span).
pub fn layered_parallelism(flag: &FlagSpec, ms_per_cell: u64) -> f64 {
    analysis::parallelism(&flag_taskgraph(flag, ms_per_cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    #[test]
    fn great_britain_graph_is_a_chain() {
        let g = flag_taskgraph(&library::great_britain(), 2000);
        assert_eq!(g.len(), 3);
        // Blue → white → red, reduced: exactly 2 edges.
        assert_eq!(g.edge_count(), 2);
        let blue = g.find("blue field").unwrap();
        let white = g.find("white diagonals").unwrap();
        let red = g.find("red cross").unwrap();
        assert!(g.reaches(blue, white));
        assert!(g.reaches(white, red));
        // A chain has parallelism 1.
        assert!((layered_parallelism(&library::great_britain(), 2000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jordan_graph_matches_fig9() {
        let g = flag_taskgraph(&library::jordan(), 2000);
        assert_eq!(g.len(), 5);
        let tri = g.find("red triangle").unwrap();
        let dot = g.find("white dot").unwrap();
        // Reduced graph: three stripes → triangle, triangle → dot. The
        // white-stripe → dot overlap is transitive and must be gone.
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.preds(tri).count(), 3);
        assert_eq!(g.preds(dot).count(), 1);
        assert_eq!(g.roots().len(), 3);
    }

    #[test]
    fn mauritius_graph_is_fully_parallel() {
        let g = flag_taskgraph(&library::mauritius(), 2000);
        assert_eq!(g.edge_count(), 0);
        assert!(layered_parallelism(&library::mauritius(), 2000) >= 4.0);
    }

    #[test]
    fn gb_speedup_saturates_mauritius_does_not() {
        let ps = [1, 2, 4];
        let gb = layered_speedup_curve(&library::great_britain(), &ps, 2000);
        let mu = layered_speedup_curve(&library::mauritius(), &ps, 2000);
        // GB: chain ⇒ no speedup at all from extra students.
        assert!((gb[2].speedup - 1.0).abs() < 1e-9, "{:?}", gb[2]);
        // Mauritius: 4 equal stripes ⇒ 4× at p = 4.
        assert!((mu[2].speedup - 4.0).abs() < 1e-9, "{:?}", mu[2]);
    }

    #[test]
    fn jordan_speedup_is_between() {
        let curve = layered_speedup_curve(&library::jordan(), &[1, 4], 2000);
        let s4 = curve[1].speedup;
        assert!(s4 > 1.5 && s4 < 4.0, "Jordan speedup at 4: {s4}");
    }

    #[test]
    fn schedules_are_valid() {
        for flag in library::all() {
            for p in [1, 2, 4] {
                let (g, s) = layered_schedule(&flag, p, 1000);
                s.validate(&g)
                    .unwrap_or_else(|e| panic!("{} p={p}: {e}", flag.name));
            }
        }
    }
}
