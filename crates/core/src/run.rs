//! Wiring the activity into the DES engine.
//!
//! Each student becomes a [`Process`] walking their assigned cell list;
//! each color's single implement becomes an exclusive resource. Per-cell
//! durations are pre-sampled (they depend only on the student's own
//! history, not on interleaving), so the DES run itself is exact.

use crate::config::{ActivityConfig, ReleasePolicy, TeamKit};
use crate::report::{ColorContention, RunReport, StudentStats};
use crate::work::{PreparedFlag, WorkItem};
use flagsim_agents::{CostModel, StudentProfile};
use flagsim_desim::{Action, Engine, Process, ResourceId, SimDuration, SimTime};
use flagsim_grid::{Color, Grid};
use std::collections::BTreeMap;

/// Seconds to fetch a replacement when an implement breaks mid-cell.
const REPLACEMENT_DELAY_SECS: f64 = 12.0;

/// One pre-timed unit of work for the state machine.
#[derive(Debug, Clone, Copy)]
struct TimedItem {
    resource: ResourceId,
    dur: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    NeedItem,
    DidWork,
}

/// A student as a DES process.
struct StudentProc {
    name: String,
    items: Vec<TimedItem>,
    policy: ReleasePolicy,
    pos: usize,
    step: Step,
    held: Option<ResourceId>,
    pending: Option<ResourceId>,
}

impl Process for StudentProc {
    fn next(&mut self, _now: SimTime) -> Action {
        loop {
            match self.step {
                Step::DidWork => {
                    self.pos += 1;
                    self.step = Step::NeedItem;
                    if self.policy == ReleasePolicy::ReleaseEachCell {
                        if let Some(r) = self.held.take() {
                            return Action::Release(r);
                        }
                    }
                }
                Step::NeedItem => {
                    // Resolve a pending acquire: being polled means granted.
                    if let Some(r) = self.pending.take() {
                        self.held = Some(r);
                    }
                    let Some(item) = self.items.get(self.pos).copied() else {
                        if let Some(r) = self.held.take() {
                            return Action::Release(r);
                        }
                        return Action::Done;
                    };
                    match self.held {
                        Some(h) if h == item.resource => {
                            self.step = Step::DidWork;
                            return Action::Work(item.dur);
                        }
                        Some(h) => {
                            self.held = None;
                            return Action::Release(h);
                        }
                        None => {
                            self.pending = Some(item.resource);
                            return Action::Acquire(item.resource);
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// Run the activity: `assignments[i]` is the cell list for `team[i]`.
///
/// The `team` profiles are mutated — their warm-up experience advances, so
/// running scenario 1 twice with the same team reproduces the paper's
/// "second run is significantly better" observation.
///
/// Errors if the kit is missing or has dead implements for a needed color
/// (the §IV dry-run would have caught it), or if assignments don't match
/// the team.
pub fn run_activity(
    label: impl Into<String>,
    flag: &PreparedFlag,
    assignments: &[Vec<WorkItem>],
    team: &mut [StudentProfile],
    kit: &TeamKit,
    config: &ActivityConfig,
) -> Result<RunReport, String> {
    let label = label.into();
    if assignments.len() != team.len() {
        return Err(format!(
            "{} assignments for {} students",
            assignments.len(),
            team.len()
        ));
    }

    // Which colors does this run actually need?
    let mut needed: Vec<Color> = Vec::new();
    for part in assignments {
        for item in part {
            if !needed.contains(&item.color) {
                needed.push(item.color);
            }
        }
    }
    needed.sort_unstable();
    kit.check(&needed)?;

    let mut cost = CostModel::with_params(config.seed, config.cost_params.clone());

    // One resource per needed color; hand-off latency sampled per marker.
    let mut engine = Engine::new();
    let mut res_of_color: BTreeMap<Color, ResourceId> = BTreeMap::new();
    for &c in &needed {
        let implement = kit.implement(c).expect("checked above");
        let handoff = SimDuration::from_secs_f64(cost.sample_handoff_secs(implement));
        let rid = engine.add_resource_pool(
            format!("{c} {}", implement.kind),
            kit.count(c),
            handoff,
        );
        res_of_color.insert(c, rid);
    }

    // Pre-sample durations student-major (deterministic, interleaving-free).
    // Crayons occasionally break mid-cell (§V: "to avoid breakage"); a
    // break costs the student a fetch-a-replacement delay on that cell.
    let mut breakages: u64 = 0;
    let mut procs: Vec<StudentProc> = Vec::with_capacity(team.len());
    for (student, items) in team.iter_mut().zip(assignments) {
        let timed: Vec<TimedItem> = items
            .iter()
            .map(|item| {
                let implement = kit.implement(item.color).expect("checked above");
                let mut secs = cost.sample_cell_secs(student, implement, config.fill, item.kind);
                if cost.sample_breakage(implement) {
                    breakages += 1;
                    secs += REPLACEMENT_DELAY_SECS;
                }
                TimedItem {
                    resource: res_of_color[&item.color],
                    dur: SimDuration::from_secs_f64(secs),
                }
            })
            .collect();
        procs.push(StudentProc {
            name: student.name.clone(),
            items: timed,
            policy: config.policy,
            pos: 0,
            step: Step::NeedItem,
            held: None,
            pending: None,
        });
    }
    for p in procs {
        engine.add_process(Box::new(p));
    }

    let trace = match config.deadline_secs {
        Some(secs) => {
            let deadline = SimTime::ZERO + SimDuration::from_secs_f64(secs);
            engine.run_until(deadline)
        }
        None => engine.run(),
    };

    // Cells each student actually completed: one WorkStart per cell, in
    // assignment order; a cell counts if its work finished by the end of
    // the trace (with a deadline, in-flight work at the bell is lost).
    let completed: Vec<usize> = (0..team.len())
        .map(|i| {
            trace
                .events
                .iter()
                .filter(|e| e.proc.index() == i)
                .filter(|e| {
                    matches!(e.kind, flagsim_desim::EventKind::WorkStart { dur }
                        if e.time + dur <= trace.end_time)
                })
                .count()
        })
        .collect();

    // Reconstruct the colored grid (only what was completed) and verify.
    let mut grid = Grid::new(flag.width, flag.height);
    for (part, &done) in assignments.iter().zip(&completed) {
        for item in &part[..done.min(part.len())] {
            grid.paint(item.cell, item.color);
        }
    }
    let correct = grid.iter().all(|(id, got)| {
        let want = flag.reference.get(id);
        if config.skip_colors.contains(&want) {
            got == Color::Blank || got == want
        } else {
            got == want
        }
    });

    let students = trace
        .procs
        .iter()
        .zip(assignments)
        .zip(&completed)
        .map(|((p, items), &done)| StudentStats {
            name: p.name.clone(),
            cells: items.len(),
            completed: done.min(items.len()),
            busy: p.busy,
            waiting: p.waiting,
            idle: p.idle(),
            finished_at: p.finished_at.unwrap_or(trace.end_time),
        })
        .collect();

    let contention = needed
        .iter()
        .map(|&c| ColorContention {
            color: c,
            stats: trace.resources[res_of_color[&c].index()].stats.clone(),
        })
        .collect();

    Ok(RunReport {
        label,
        flag_name: flag.name.clone(),
        completion: trace.makespan(),
        students,
        contention,
        grid,
        correct,
        breakages,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{CellOrder, PartitionStrategy};
    use flagsim_agents::{Condition, Implement, ImplementKind};
    use flagsim_flags::library;

    fn team(n: usize) -> Vec<StudentProfile> {
        (1..=n)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect()
    }

    fn kit() -> TeamKit {
        TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
    }

    fn run_scenario(strategy: PartitionStrategy, n: usize, seed: u64) -> RunReport {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = strategy.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(n);
        run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default().with_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn solo_run_completes_correctly() {
        let r = run_scenario(PartitionStrategy::Solo, 1, 1);
        assert!(r.correct);
        assert!(r.completion.as_secs_f64() > 0.0);
        assert_eq!(r.students.len(), 1);
        assert_eq!(r.students[0].cells, 96);
        // Solo: no contention at all.
        assert_eq!(r.total_wait_secs(), 0.0);
    }

    #[test]
    fn more_students_are_faster_without_contention() {
        let s1 = run_scenario(PartitionStrategy::Solo, 1, 1);
        let s2 = run_scenario(PartitionStrategy::HorizontalBands(2), 2, 1);
        let s3 = run_scenario(PartitionStrategy::HorizontalBands(4), 4, 1);
        assert!(s2.completion < s1.completion);
        assert!(s3.completion < s2.completion);
        // Stripe partitions never share a marker.
        assert_eq!(s2.total_wait_secs(), 0.0);
        assert_eq!(s3.total_wait_secs(), 0.0);
    }

    #[test]
    fn vertical_slices_contend() {
        let s3 = run_scenario(PartitionStrategy::HorizontalBands(4), 4, 1);
        let s4 = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 1);
        // Scenario 4 is slower than scenario 3 and shows real waiting.
        assert!(s4.completion > s3.completion);
        assert!(s4.total_wait_secs() > 0.0);
        let red = s4
            .contention
            .iter()
            .find(|c| c.color == Color::Red)
            .unwrap();
        // All four students queue on red at the start: 3 contended grants.
        assert_eq!(red.stats.acquisitions, 4);
        assert_eq!(red.stats.contended_acquisitions, 3);
        assert_eq!(red.stats.max_queue_len, 3);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 42);
        let b = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 42);
        assert_eq!(a.completion, b.completion);
        let c = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 43);
        assert_ne!(a.completion, c.completion);
    }

    #[test]
    fn dead_marker_fails_the_dry_run_check() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(1);
        let bad_kit = kit().with_implement(
            Color::Yellow,
            Implement {
                kind: ImplementKind::ThickMarker,
                condition: Condition::Dead,
            },
        );
        let err = run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &bad_kit,
            &ActivityConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("dead"));
    }

    #[test]
    fn mismatched_team_size_rejected() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(2);
        assert!(run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default()
        )
        .is_err());
    }

    #[test]
    fn warmup_advances_across_runs() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = vec![StudentProfile::new("P1")]; // with warm-up
        let cfg = ActivityConfig::default();
        let first = run_activity("run 1", &pf, &assignments, &mut t, &kit(), &cfg).unwrap();
        let second = run_activity("run 2", &pf, &assignments, &mut t, &kit(), &cfg).unwrap();
        assert!(
            second.completion.as_secs_f64() < first.completion.as_secs_f64() * 0.95,
            "second run {} should beat first {}",
            second.completion,
            first.completion
        );
    }

    #[test]
    fn release_each_cell_is_no_faster() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let run = |policy| {
            let mut t = team(4);
            run_activity(
                "p",
                &pf,
                &assignments,
                &mut t,
                &kit(),
                &ActivityConfig::default().with_policy(policy),
            )
            .unwrap()
        };
        let keep = run(ReleasePolicy::KeepUntilColorChange);
        let each = run(ReleasePolicy::ReleaseEachCell);
        assert!(each.completion >= keep.completion);
    }

    #[test]
    fn extra_markers_dissolve_scenario_4_contention() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let run_with = |kit: TeamKit| {
            let mut t = team(4);
            run_activity(
                "kit sweep",
                &pf,
                &assignments,
                &mut t,
                &kit,
                &ActivityConfig::default(),
            )
            .unwrap()
        };
        let one = run_with(kit());
        let four = run_with(kit().with_count_all(4));
        // With a marker of each color per student, nobody ever waits.
        assert_eq!(four.total_wait_secs(), 0.0);
        assert!(one.total_wait_secs() > 0.0);
        assert!(four.completion < one.completion);
        // Intermediate stocking helps monotonically.
        let two = run_with(kit().with_count_all(2));
        assert!(two.total_wait_secs() < one.total_wait_secs());
        assert!(two.completion <= one.completion);
    }

    #[test]
    fn class_bell_cuts_the_run_short() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        // A full solo run takes ~190s without warm-up; ring the bell at 60.
        let mut t = team(1);
        let cut = run_activity(
            "bell",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default().with_deadline_secs(60.0),
        )
        .unwrap();
        assert!(!cut.correct, "incomplete flag cannot be correct");
        assert!(cut.grid.blank_cells() > 0);
        let done = cut.students[0].completed;
        assert!(done > 0 && done < 96, "completed {done}");
        assert!((cut.completion_secs() - 60.0).abs() < 1e-9);
        // Painted prefix matches the reference cell-for-cell.
        for item in &assignments[0][..done] {
            assert_eq!(cut.grid.get(item.cell), pf.reference.get(item.cell));
        }
        // A generous deadline changes nothing.
        let mut t2 = team(1);
        let full = run_activity(
            "no bell",
            &pf,
            &assignments,
            &mut t2,
            &kit(),
            &ActivityConfig::default().with_deadline_secs(100_000.0),
        )
        .unwrap();
        assert!(full.correct);
        assert_eq!(full.students[0].completed, 96);
    }

    #[test]
    fn crayons_break_markers_do_not() {
        let pf = PreparedFlag::at_size(&library::mauritius(), 48, 32); // 1536 cells
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let run_with = |kind: ImplementKind| {
            let mut t = team(1);
            run_activity(
                "breakage",
                &pf,
                &assignments,
                &mut t,
                &TeamKit::uniform(kind, &Color::MAURITIUS),
                &ActivityConfig::default().with_seed(5),
            )
            .unwrap()
        };
        let crayon = run_with(ImplementKind::Crayon);
        let marker = run_with(ImplementKind::ThickMarker);
        assert!(crayon.breakages > 0, "1536 crayon cells should break a few");
        assert_eq!(marker.breakages, 0);
        assert!(crayon.correct && marker.correct);
    }

    #[test]
    fn dropout_rebalanced_run_still_completes() {
        use crate::partition::rebalance_dropout;
        let pf = PreparedFlag::new(&library::mauritius());
        let a = PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let rebalanced = rebalance_dropout(&a, 1, 6);
        let mut t = team(4);
        let r = run_activity(
            "dropout",
            &pf,
            &rebalanced,
            &mut t,
            &kit(),
            &ActivityConfig::default(),
        )
        .unwrap();
        assert!(r.correct);
        assert_eq!(r.students[1].cells, 6);
    }

    #[test]
    fn skip_colors_verifies_blank_cells() {
        let pf = PreparedFlag::new(&library::jordan());
        let skip = [Color::White];
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &skip);
        let mut t = team(1);
        let jk = TeamKit::uniform(
            ImplementKind::ThickMarker,
            &[Color::Black, Color::Green, Color::Red],
        );
        let r = run_activity(
            "jordan no white",
            &pf,
            &assignments,
            &mut t,
            &jk,
            &ActivityConfig::default().skipping(&skip),
        )
        .unwrap();
        assert!(r.correct);
        assert!(r.grid.blank_cells() > 0);
    }
}
