//! Wiring the activity into the DES engine.
//!
//! Each student becomes a [`Process`] walking their assigned cell list;
//! each color's single implement becomes an exclusive resource. Per-cell
//! durations are pre-sampled (they depend only on the student's own
//! history, not on interleaving), so the DES run itself is exact.
//!
//! Fault injection ([`run_activity_with_faults`]) threads a shared
//! [`faults::FaultPlan`] through the same state machine: students consult
//! the live fault state at every poll, so dropouts leave at their next
//! natural pause, broken implements are discovered by the next student to
//! use them, and orphaned cells sit in a shared pool that survivors adopt
//! after finishing their own work. Orphaned cells keep their pre-sampled
//! durations — the adopting survivor colors at the dropout's pace — a
//! deliberate simplification that keeps the DES exact.

use crate::config::{ActivityConfig, ReleasePolicy, TeamKit};
use crate::faults::{
    FaultEvent, FaultPlan, Incident, RecoveryAction, ResilienceReport,
};
use crate::report::{ColorContention, RunReport, StudentStats};
use crate::work::{PreparedFlag, WorkItem};
use flagsim_agents::{CostModel, Implement, StudentProfile};
use flagsim_desim::{
    Action, Engine, Process, ResourceId, SchedulePolicy, SimDuration, SimError, SimTime,
    WaitForGraph,
};
use flagsim_grid::{Color, Grid};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Seconds to fetch a replacement when an implement breaks mid-cell.
const REPLACEMENT_DELAY_SECS: f64 = 12.0;

/// One pre-timed unit of work for the state machine.
#[derive(Debug, Clone, Copy)]
struct TimedItem {
    resource: ResourceId,
    dur: SimDuration,
    work: WorkItem,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    NeedItem,
    DidWork,
}

/// What using an implement costs once the live fault state has its say.
enum UseOutcome {
    /// Usable; the swap delay (zero when nothing was broken).
    Ok(SimDuration),
    /// The policy aborted the run; the caller should wind down.
    Abort,
}

/// Mutable state shared by every student process during a faulted run:
/// pending dropouts, broken implements, the orphaned-work pool, and the
/// incident/action log that becomes the [`ResilienceReport`].
struct LiveFaultState {
    abort_on_fault: bool,
    spare_delay_secs: Option<f64>,
    dropout_at: Vec<Option<SimTime>>,
    /// resource index -> (break time, color, verb for the incident log).
    broken: BTreeMap<usize, (SimTime, Color, &'static str)>,
    orphans: VecDeque<TimedItem>,
    aborted: Option<SimTime>,
    incidents: Vec<Incident>,
    actions: Vec<RecoveryAction>,
    time_lost_secs: f64,
    adopted: Vec<usize>,
    /// Per student, every cell whose work actually started, in order —
    /// under rebalancing this is the ground truth for painting the grid.
    started: Vec<Vec<WorkItem>>,
}

impl LiveFaultState {
    fn new(team_size: usize, plan: &FaultPlan) -> Self {
        LiveFaultState {
            abort_on_fault: plan.policy.aborts(),
            spare_delay_secs: plan.policy.spare_delay_secs(),
            dropout_at: vec![None; team_size],
            broken: BTreeMap::new(),
            orphans: VecDeque::new(),
            aborted: None,
            incidents: Vec::new(),
            actions: Vec::new(),
            time_lost_secs: 0.0,
            adopted: vec![0; team_size],
            started: vec![Vec::new(); team_size],
        }
    }

    /// A student is about to color with resource `r` at `now`: discover
    /// any break scheduled before `now` and either pay the spare swap or
    /// abort the run, per policy.
    fn use_implement(&mut self, r: ResourceId, now: SimTime) -> UseOutcome {
        let Some(&(broke_at, color, verb)) = self.broken.get(&r.index()) else {
            return UseOutcome::Ok(SimDuration::ZERO);
        };
        if broke_at > now {
            return UseOutcome::Ok(SimDuration::ZERO);
        }
        self.broken.remove(&r.index());
        self.incidents.push(Incident {
            at_secs: broke_at.as_secs_f64(),
            what: format!("the {color} implement {verb}"),
        });
        match self.spare_delay_secs {
            None => {
                self.aborted = Some(now);
                self.actions.push(RecoveryAction::Aborted {
                    at_secs: now.as_secs_f64(),
                });
                UseOutcome::Abort
            }
            Some(delay) => {
                self.actions.push(RecoveryAction::SpareSwapped {
                    color,
                    at_secs: now.as_secs_f64(),
                    delay_secs: delay,
                });
                self.time_lost_secs += delay;
                UseOutcome::Ok(SimDuration::from_secs_f64(delay))
            }
        }
    }
}

/// A student as a DES process.
struct StudentProc {
    idx: usize,
    name: String,
    items: Vec<TimedItem>,
    policy: ReleasePolicy,
    pos: usize,
    step: Step,
    held: Option<ResourceId>,
    pending: Option<ResourceId>,
    dropped: bool,
    live: Rc<RefCell<LiveFaultState>>,
}

impl Process for StudentProc {
    fn next(&mut self, now: SimTime) -> Action {
        loop {
            // Faults first: a global abort, or this student's dropout
            // falling due. Both are noticed at the student's next natural
            // pause — exactly when a real student would look up.
            if !self.dropped {
                let mut live = self.live.borrow_mut();
                let dropout_due = live.dropout_at[self.idx].is_some_and(|t| t <= now);
                if dropout_due {
                    live.dropout_at[self.idx] = None;
                    live.incidents.push(Incident {
                        at_secs: now.as_secs_f64(),
                        what: format!("{} dropped out", self.name),
                    });
                    // Cells not yet started (the one under the hand, when
                    // `DidWork`, is finished) go back on the table.
                    let cut = match self.step {
                        Step::DidWork => self.pos + 1,
                        Step::NeedItem => self.pos,
                    };
                    let leftover = self.items.split_off(cut.min(self.items.len()));
                    if live.abort_on_fault {
                        live.aborted = Some(now);
                        live.actions.push(RecoveryAction::Aborted {
                            at_secs: now.as_secs_f64(),
                        });
                    } else if !leftover.is_empty() {
                        live.actions.push(RecoveryAction::WorkRebalanced {
                            student: self.idx,
                            cells: leftover.len(),
                            at_secs: now.as_secs_f64(),
                        });
                        live.orphans.extend(leftover);
                    }
                    self.dropped = true;
                } else if live.aborted.is_some() {
                    self.dropped = true;
                }
            }
            if self.dropped {
                // Wind down: hand back whatever we hold (including a
                // grant that landed while we were deciding to leave).
                if let Some(r) = self.pending.take() {
                    self.held = Some(r);
                }
                if let Some(r) = self.held.take() {
                    return Action::Release(r);
                }
                return Action::Done;
            }
            match self.step {
                Step::DidWork => {
                    self.pos += 1;
                    self.step = Step::NeedItem;
                    if self.policy == ReleasePolicy::ReleaseEachCell {
                        if let Some(r) = self.held.take() {
                            return Action::Release(r);
                        }
                    }
                }
                Step::NeedItem => {
                    // Resolve a pending acquire: being polled means granted.
                    if let Some(r) = self.pending.take() {
                        self.held = Some(r);
                    }
                    let item = match self.items.get(self.pos).copied() {
                        Some(item) => item,
                        None => {
                            // Own list done: adopt orphaned work, if any.
                            let adopted = self.live.borrow_mut().orphans.pop_front();
                            match adopted {
                                Some(it) => {
                                    self.live.borrow_mut().adopted[self.idx] += 1;
                                    self.items.push(it);
                                    continue;
                                }
                                None => {
                                    if let Some(r) = self.held.take() {
                                        return Action::Release(r);
                                    }
                                    return Action::Done;
                                }
                            }
                        }
                    };
                    match self.held {
                        Some(h) if h == item.resource => {
                            // About to color: does the implement still work?
                            let outcome =
                                self.live.borrow_mut().use_implement(item.resource, now);
                            match outcome {
                                UseOutcome::Abort => continue,
                                UseOutcome::Ok(swap_delay) => {
                                    self.step = Step::DidWork;
                                    self.live.borrow_mut().started[self.idx].push(item.work);
                                    return Action::Work(item.dur + swap_delay);
                                }
                            }
                        }
                        Some(h) => {
                            self.held = None;
                            return Action::Release(h);
                        }
                        None => {
                            self.pending = Some(item.resource);
                            return Action::Acquire(item.resource);
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Run the activity: `assignments[i]` is the cell list for `team[i]`.
///
/// The `team` profiles are mutated — their warm-up experience advances, so
/// running scenario 1 twice with the same team reproduces the paper's
/// "second run is significantly better" observation.
///
/// Errors if the kit is missing or has dead implements for a needed color
/// (the §IV dry-run would have caught it), or if assignments don't match
/// the team.
pub fn run_activity(
    label: impl Into<String>,
    flag: &PreparedFlag,
    assignments: &[Vec<WorkItem>],
    team: &mut [StudentProfile],
    kit: &TeamKit,
    config: &ActivityConfig,
) -> Result<RunReport, String> {
    run_activity_with_faults(label, flag, assignments, team, kit, config, &FaultPlan::none())
}

/// [`run_activity`] with a [`FaultPlan`] injected. The run survives every
/// planned mishap (or aborts cleanly, per the plan's policy) and attaches
/// a [`ResilienceReport`] to the returned report whenever the plan is
/// non-empty. Engine-level failures (a stall, a tripped live-lock guard)
/// come back as `Err` strings instead of panicking, so batch drivers can
/// record them and keep going.
pub fn run_activity_with_faults(
    label: impl Into<String>,
    flag: &PreparedFlag,
    assignments: &[Vec<WorkItem>],
    team: &mut [StudentProfile],
    kit: &TeamKit,
    config: &ActivityConfig,
    plan: &FaultPlan,
) -> Result<RunReport, String> {
    match run_activity_scheduled(label, flag, assignments, team, kit, config, plan, None)? {
        ActivityOutcome::Completed(report) => Ok(*report),
        ActivityOutcome::Stalled(waiters) => Err(format!(
            "simulation failed: {}",
            SimError::Stalled { waiters }
        )),
    }
}

/// How a scheduled run ended: normally, with the full report, or stalled
/// with every remaining process blocked — the structured form of the
/// deadlock [`run_activity_with_faults`] flattens into an error string.
/// `flagsim verify` needs the wait-for graph itself, not its rendering.
#[derive(Debug)]
pub enum ActivityOutcome {
    /// The run drained (or the bell cut it off) and produced a report.
    Completed(Box<RunReport>),
    /// The run stalled: the event queue emptied with processes still
    /// blocked on resources. Carries the wait-for graph at the stall.
    Stalled(WaitForGraph),
}

/// [`run_activity_with_faults`] with an optional [`SchedulePolicy`]
/// threaded through to the engine, and with deadlock surfaced
/// structurally instead of as an error string. This is the entry point
/// schedule-space exploration drives: a [`ForcedSchedule`]
/// (`flagsim_desim::ForcedSchedule`) policy replays one concrete
/// resolution of every scheduling tie, and a stall under some resolution
/// is a *result* (a reachable deadlock), not a failure.
///
/// With `policy: None` the engine behaves exactly as in
/// [`run_activity_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_activity_scheduled(
    label: impl Into<String>,
    flag: &PreparedFlag,
    assignments: &[Vec<WorkItem>],
    team: &mut [StudentProfile],
    kit: &TeamKit,
    config: &ActivityConfig,
    plan: &FaultPlan,
    policy: Option<Box<dyn SchedulePolicy>>,
) -> Result<ActivityOutcome, String> {
    let label = label.into();
    let _activity_span = flagsim_telemetry::span("sim", "run.activity")
        .arg("label", &label)
        .arg("students", team.len());
    if assignments.len() != team.len() {
        return Err(format!(
            "{} assignments for {} students",
            assignments.len(),
            team.len()
        ));
    }
    plan.validate(team.len())?;

    // Which colors does this run actually need?
    let mut needed: Vec<Color> = Vec::new();
    for part in assignments {
        for item in part {
            if !needed.contains(&item.color) {
                needed.push(item.color);
            }
        }
    }
    needed.sort_unstable();
    kit.check(&needed)?;

    // Ambient faults that shape the run before it starts: the earliest
    // bell wins over any configured deadline, and fumbles pad the hand-off
    // latency of their color. Faults naming colors this run never uses
    // are planned-but-cannot-bite and stay out of the incident log.
    let mut deadline_secs = config.deadline_secs;
    let mut fumble_extra: BTreeMap<Color, f64> = BTreeMap::new();
    for e in &plan.events {
        match e {
            FaultEvent::DeadlineBell { at_secs } => {
                deadline_secs = Some(deadline_secs.map_or(*at_secs, |d| d.min(*at_secs)));
            }
            FaultEvent::HandoffFumble { color, extra_secs } => {
                *fumble_extra.entry(*color).or_insert(0.0) += extra_secs;
            }
            _ => {}
        }
    }

    let mut cost = CostModel::with_params(config.seed, config.cost_params.clone());

    // One resource per needed color; hand-off latency sampled per marker.
    // Sizing the engine up front (one slot per student, one resource per
    // color, ~4 events per cell) keeps the hot loop free of buffer growth.
    let total_cells: usize = assignments.iter().map(Vec::len).sum();
    let mut engine = Engine::with_capacity(
        team.len(),
        needed.len(),
        if config.trace_events {
            total_cells * 4 + team.len() * 2
        } else {
            0
        },
    );
    engine.set_trace_events(config.trace_events);
    let mut res_of_color: BTreeMap<Color, ResourceId> = BTreeMap::new();
    // Per-color tables resolved once per run, in `needed` order: the
    // implement and resource id the per-cell loop below indexes into
    // instead of re-querying the kit and color map per cell.
    let mut color_implements: Vec<Implement> = Vec::with_capacity(needed.len());
    let mut color_rids: Vec<ResourceId> = Vec::with_capacity(needed.len());
    for &c in &needed {
        let implement = kit.implement(c).expect("checked above");
        let mut handoff_secs = cost.sample_handoff_secs(implement);
        handoff_secs += fumble_extra.get(&c).copied().unwrap_or(0.0);
        let rid = engine.add_resource_pool(
            format!("{c} {}", implement.kind),
            kit.count(c),
            SimDuration::from_secs_f64(handoff_secs),
        );
        res_of_color.insert(c, rid);
        color_implements.push(implement);
        color_rids.push(rid);
    }

    // The shared live fault state, primed from the plan.
    let live = Rc::new(RefCell::new(LiveFaultState::new(team.len(), plan)));
    let mut start_at: Vec<SimTime> = vec![SimTime::ZERO; team.len()];
    {
        let mut st = live.borrow_mut();
        for e in &plan.events {
            match e {
                FaultEvent::ImplementBreaks { color, at_secs }
                | FaultEvent::ImplementDriesOut { color, at_secs } => {
                    if let Some(rid) = res_of_color.get(color) {
                        let verb = if matches!(e, FaultEvent::ImplementBreaks { .. }) {
                            "broke"
                        } else {
                            "dried out"
                        };
                        st.broken.insert(
                            rid.index(),
                            (SimTime::ZERO + SimDuration::from_secs_f64(*at_secs), *color, verb),
                        );
                    }
                }
                FaultEvent::Dropout { student, at_secs } => {
                    st.dropout_at[*student] =
                        Some(SimTime::ZERO + SimDuration::from_secs_f64(*at_secs));
                }
                FaultEvent::LateArrival { student, at_secs } => {
                    let t = SimTime::ZERO + SimDuration::from_secs_f64(*at_secs);
                    start_at[*student] = start_at[*student].max(t);
                    if *at_secs > 0.0 {
                        st.incidents.push(Incident {
                            at_secs: *at_secs,
                            what: format!("P{} arrived {at_secs:.1}s late", student + 1),
                        });
                    }
                }
                FaultEvent::HandoffFumble { .. } | FaultEvent::DeadlineBell { .. } => {}
            }
        }
    }

    // Pre-sample durations student-major (deterministic, interleaving-free).
    // Crayons occasionally break mid-cell (§V: "to avoid breakage"); a
    // break costs the student a fetch-a-replacement delay on that cell.
    // The fill-style factors are constant for the run and the
    // `base × skill` cost prefix is constant per (student, color), so
    // both are resolved outside the per-cell loop; the RNG draw order —
    // and therefore every sampled duration — is unchanged.
    let fill_factor = config.fill.work_factor();
    let sigma = cost.cell_sigma(config.fill);
    let mut breakages: u64 = 0;
    let mut procs: Vec<StudentProc> = Vec::with_capacity(team.len());
    for (idx, (student, items)) in team.iter_mut().zip(assignments).enumerate() {
        let base_skill: Vec<f64> = color_implements
            .iter()
            .map(|imp| imp.effective_base_secs() * student.skill)
            .collect();
        let timed: Vec<TimedItem> = items
            .iter()
            .map(|item| {
                let ci = needed
                    .iter()
                    .position(|&c| c == item.color)
                    .expect("collected above");
                let mut secs = cost.sample_cell_secs_resolved(
                    student,
                    base_skill[ci],
                    fill_factor,
                    sigma,
                    item.kind,
                );
                if cost.sample_breakage(color_implements[ci]) {
                    breakages += 1;
                    secs += REPLACEMENT_DELAY_SECS;
                }
                TimedItem {
                    resource: color_rids[ci],
                    dur: SimDuration::from_secs_f64(secs),
                    work: *item,
                }
            })
            .collect();
        procs.push(StudentProc {
            idx,
            name: student.name.clone(),
            items: timed,
            policy: config.policy,
            pos: 0,
            step: Step::NeedItem,
            held: None,
            pending: None,
            dropped: false,
            live: Rc::clone(&live),
        });
    }
    for (idx, p) in procs.into_iter().enumerate() {
        engine.add_process_at(Box::new(p), start_at[idx]);
    }
    if let Some(policy) = policy {
        engine.set_schedule_policy(policy);
    }

    let result = match deadline_secs {
        Some(secs) => {
            let deadline = SimTime::ZERO + SimDuration::from_secs_f64(secs);
            engine.try_run_until(deadline)
        }
        None => engine.try_run(),
    };
    let trace = match result {
        Ok(trace) => trace,
        // A stall is a structured outcome for the verification layer; the
        // engine (and every process's Rc handle) is already dropped.
        Err(SimError::Stalled { waiters }) => return Ok(ActivityOutcome::Stalled(waiters)),
        Err(e) => return Err(format!("simulation failed: {e}")),
    };

    // The engine (and every boxed process) is gone; reclaim the log.
    let mut state = Rc::try_unwrap(live)
        .map_err(|_| "fault state still shared after the run".to_owned())?
        .into_inner();

    // Cells each student actually completed, straight from the engine's
    // per-process counter (with a deadline, in-flight work at the bell is
    // lost). Every `Work` a student issues is one cell, so the counter
    // replaces the old O(procs × events) trace scan and — unlike that
    // scan — also works with the event sink off.
    let completed: Vec<usize> = trace
        .procs
        .iter()
        .map(|p| p.completed_work as usize)
        .collect();

    // Reconstruct the colored grid from the per-student started-cell logs
    // (which, unlike the static assignments, account for adopted orphan
    // work) and verify it.
    let mut grid = Grid::new(flag.width, flag.height);
    for (log, &done) in state.started.iter().zip(&completed) {
        for item in &log[..done.min(log.len())] {
            grid.paint(item.cell, item.color);
        }
    }
    // The painting loop above was `started`'s last reader; move, don't
    // clone, the per-student logs into the report.
    let cell_log = std::mem::take(&mut state.started);
    let correct = grid.iter().all(|(id, got)| {
        let want = flag.reference.get(id);
        if config.skip_colors.contains(&want) {
            got == Color::Blank || got == want
        } else {
            got == want
        }
    });

    let students: Vec<StudentStats> = trace
        .procs
        .iter()
        .zip(assignments)
        .zip(&completed)
        .map(|((p, items), &done)| StudentStats {
            name: p.name.clone(),
            cells: items.len(),
            completed: done,
            busy: p.busy,
            waiting: p.waiting,
            idle: p.idle(trace.end_time),
            finished_at: p.finished_at.unwrap_or(trace.end_time),
        })
        .collect();

    let contention: Vec<ColorContention> = needed
        .iter()
        .map(|&c| ColorContention {
            color: c,
            stats: trace.resources[res_of_color[&c].index()].stats.clone(),
        })
        .collect();

    // Post-run fault accounting: fumbles bite once per observed hand-off,
    // the bell bites only if it actually cut the run short, and adopted
    // orphans become recovery actions.
    let resilience = if plan.is_empty() {
        None
    } else {
        for e in &plan.events {
            if let FaultEvent::HandoffFumble { color, extra_secs } = e {
                let handoffs = contention
                    .iter()
                    .find(|c| c.color == *color)
                    .map_or(0, |c| c.stats.handoffs);
                if handoffs > 0 {
                    state.incidents.push(Incident {
                        at_secs: 0.0,
                        what: format!(
                            "every {color} hand-off fumbled (+{extra_secs:.1}s x {handoffs})"
                        ),
                    });
                    state.time_lost_secs += extra_secs * handoffs as f64;
                }
            }
        }
        let bell = plan.events.iter().any(|e| {
            matches!(e, FaultEvent::DeadlineBell { at_secs }
                if deadline_secs == Some(*at_secs)
                    && (trace.end_time.as_secs_f64() - at_secs).abs() < 1e-9)
        });
        if bell {
            state.incidents.push(Incident {
                at_secs: trace.end_time.as_secs_f64(),
                what: "the bell rang with work unfinished".to_owned(),
            });
        }
        for (i, &n) in state.adopted.iter().enumerate() {
            if n > 0 {
                state
                    .actions
                    .push(RecoveryAction::CellsAdopted { student: i, cells: n });
            }
        }
        state
            .incidents
            .sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        if flagsim_telemetry::enabled() {
            flagsim_telemetry::count("faults.incidents", state.incidents.len() as u64);
            flagsim_telemetry::count("faults.recovery_actions", state.actions.len() as u64);
            flagsim_telemetry::observe("faults.time_lost_secs", state.time_lost_secs);
            if state.aborted.is_some() {
                flagsim_telemetry::count("faults.aborted_runs", 1);
            }
        }
        Some(ResilienceReport {
            plan_label: plan.label.clone(),
            policy: plan.policy,
            faults_planned: plan.events.len(),
            incidents: state.incidents,
            actions: state.actions,
            time_lost_secs: state.time_lost_secs,
            aborted: state.aborted.is_some(),
        })
    };

    flagsim_telemetry::count("run.breakages", breakages);
    Ok(ActivityOutcome::Completed(Box::new(RunReport {
        label,
        flag_name: flag.name.clone(),
        completion: trace.makespan(),
        students,
        contention,
        grid,
        correct,
        breakages,
        resilience,
        trace,
        cell_log,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::RecoveryPolicy;
    use crate::partition::{CellOrder, PartitionStrategy};
    use flagsim_agents::{Condition, Implement, ImplementKind};
    use flagsim_flags::library;

    fn team(n: usize) -> Vec<StudentProfile> {
        (1..=n)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect()
    }

    fn kit() -> TeamKit {
        TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
    }

    fn run_scenario(strategy: PartitionStrategy, n: usize, seed: u64) -> RunReport {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = strategy.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(n);
        run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default().with_seed(seed),
        )
        .unwrap()
    }

    fn run_faulted(
        strategy: PartitionStrategy,
        n: usize,
        seed: u64,
        plan: &FaultPlan,
    ) -> RunReport {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = strategy.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(n);
        run_activity_with_faults(
            "faulted",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default().with_seed(seed),
            plan,
        )
        .unwrap()
    }

    #[test]
    fn solo_run_completes_correctly() {
        let r = run_scenario(PartitionStrategy::Solo, 1, 1);
        assert!(r.correct);
        assert!(r.completion.as_secs_f64() > 0.0);
        assert_eq!(r.students.len(), 1);
        assert_eq!(r.students[0].cells, 96);
        // Solo: no contention at all.
        assert_eq!(r.total_wait_secs(), 0.0);
        // No plan, no resilience report.
        assert!(r.resilience.is_none());
    }

    #[test]
    fn more_students_are_faster_without_contention() {
        let s1 = run_scenario(PartitionStrategy::Solo, 1, 1);
        let s2 = run_scenario(PartitionStrategy::HorizontalBands(2), 2, 1);
        let s3 = run_scenario(PartitionStrategy::HorizontalBands(4), 4, 1);
        assert!(s2.completion < s1.completion);
        assert!(s3.completion < s2.completion);
        // Stripe partitions never share a marker.
        assert_eq!(s2.total_wait_secs(), 0.0);
        assert_eq!(s3.total_wait_secs(), 0.0);
    }

    #[test]
    fn vertical_slices_contend() {
        let s3 = run_scenario(PartitionStrategy::HorizontalBands(4), 4, 1);
        let s4 = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 1);
        // Scenario 4 is slower than scenario 3 and shows real waiting.
        assert!(s4.completion > s3.completion);
        assert!(s4.total_wait_secs() > 0.0);
        let red = s4
            .contention
            .iter()
            .find(|c| c.color == Color::Red)
            .unwrap();
        // All four students queue on red at the start: 3 contended grants.
        assert_eq!(red.stats.acquisitions, 4);
        assert_eq!(red.stats.contended_acquisitions, 3);
        assert_eq!(red.stats.max_queue_len, 3);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 42);
        let b = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 42);
        assert_eq!(a.completion, b.completion);
        let c = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 43);
        assert_ne!(a.completion, c.completion);
    }

    #[test]
    fn dead_marker_fails_the_dry_run_check() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(1);
        let bad_kit = kit().with_implement(
            Color::Yellow,
            Implement {
                kind: ImplementKind::ThickMarker,
                condition: Condition::Dead,
            },
        );
        let err = run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &bad_kit,
            &ActivityConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("dead"));
    }

    #[test]
    fn mismatched_team_size_rejected() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(2);
        assert!(run_activity(
            "test",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default()
        )
        .is_err());
    }

    #[test]
    fn warmup_advances_across_runs() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = vec![StudentProfile::new("P1")]; // with warm-up
        let cfg = ActivityConfig::default();
        let first = run_activity("run 1", &pf, &assignments, &mut t, &kit(), &cfg).unwrap();
        let second = run_activity("run 2", &pf, &assignments, &mut t, &kit(), &cfg).unwrap();
        assert!(
            second.completion.as_secs_f64() < first.completion.as_secs_f64() * 0.95,
            "second run {} should beat first {}",
            second.completion,
            first.completion
        );
    }

    #[test]
    fn release_each_cell_is_no_faster() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let run = |policy| {
            let mut t = team(4);
            run_activity(
                "p",
                &pf,
                &assignments,
                &mut t,
                &kit(),
                &ActivityConfig::default().with_policy(policy),
            )
            .unwrap()
        };
        let keep = run(ReleasePolicy::KeepUntilColorChange);
        let each = run(ReleasePolicy::ReleaseEachCell);
        assert!(each.completion >= keep.completion);
    }

    #[test]
    fn extra_markers_dissolve_scenario_4_contention() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let run_with = |kit: TeamKit| {
            let mut t = team(4);
            run_activity(
                "kit sweep",
                &pf,
                &assignments,
                &mut t,
                &kit,
                &ActivityConfig::default(),
            )
            .unwrap()
        };
        let one = run_with(kit());
        let four = run_with(kit().with_count_all(4));
        // With a marker of each color per student, nobody ever waits.
        assert_eq!(four.total_wait_secs(), 0.0);
        assert!(one.total_wait_secs() > 0.0);
        assert!(four.completion < one.completion);
        // Intermediate stocking helps monotonically.
        let two = run_with(kit().with_count_all(2));
        assert!(two.total_wait_secs() < one.total_wait_secs());
        assert!(two.completion <= one.completion);
    }

    #[test]
    fn class_bell_cuts_the_run_short() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        // A full solo run takes ~190s without warm-up; ring the bell at 60.
        let mut t = team(1);
        let cut = run_activity(
            "bell",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default().with_deadline_secs(60.0),
        )
        .unwrap();
        assert!(!cut.correct, "incomplete flag cannot be correct");
        assert!(cut.grid.blank_cells() > 0);
        let done = cut.students[0].completed;
        assert!(done > 0 && done < 96, "completed {done}");
        assert!((cut.completion_secs() - 60.0).abs() < 1e-9);
        // Painted prefix matches the reference cell-for-cell.
        for item in &assignments[0][..done] {
            assert_eq!(cut.grid.get(item.cell), pf.reference.get(item.cell));
        }
        // A generous deadline changes nothing.
        let mut t2 = team(1);
        let full = run_activity(
            "no bell",
            &pf,
            &assignments,
            &mut t2,
            &kit(),
            &ActivityConfig::default().with_deadline_secs(100_000.0),
        )
        .unwrap();
        assert!(full.correct);
        assert_eq!(full.students[0].completed, 96);
    }

    #[test]
    fn crayons_break_markers_do_not() {
        let pf = PreparedFlag::at_size(&library::mauritius(), 48, 32); // 1536 cells
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let run_with = |kind: ImplementKind| {
            let mut t = team(1);
            run_activity(
                "breakage",
                &pf,
                &assignments,
                &mut t,
                &TeamKit::uniform(kind, &Color::MAURITIUS),
                &ActivityConfig::default().with_seed(5),
            )
            .unwrap()
        };
        let crayon = run_with(ImplementKind::Crayon);
        let marker = run_with(ImplementKind::ThickMarker);
        assert!(crayon.breakages > 0, "1536 crayon cells should break a few");
        assert_eq!(marker.breakages, 0);
        assert!(crayon.correct && marker.correct);
    }

    #[test]
    fn dropout_rebalanced_run_still_completes() {
        use crate::partition::rebalance_dropout;
        let pf = PreparedFlag::new(&library::mauritius());
        let a = PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let rebalanced = rebalance_dropout(&a, 1, 6);
        let mut t = team(4);
        let r = run_activity(
            "dropout",
            &pf,
            &rebalanced,
            &mut t,
            &kit(),
            &ActivityConfig::default(),
        )
        .unwrap();
        assert!(r.correct);
        assert_eq!(r.students[1].cells, 6);
    }

    #[test]
    fn skip_colors_verifies_blank_cells() {
        let pf = PreparedFlag::new(&library::jordan());
        let skip = [Color::White];
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &skip);
        let mut t = team(1);
        let jk = TeamKit::uniform(
            ImplementKind::ThickMarker,
            &[Color::Black, Color::Green, Color::Red],
        );
        let r = run_activity(
            "jordan no white",
            &pf,
            &assignments,
            &mut t,
            &jk,
            &ActivityConfig::default().skipping(&skip),
        )
        .unwrap();
        assert!(r.correct);
        assert!(r.grid.blank_cells() > 0);
    }

    // ---- fault injection ----

    #[test]
    fn broken_implement_spare_swap_recovers() {
        let base = run_scenario(PartitionStrategy::Solo, 1, 3);
        let plan = FaultPlan::new("snap").break_implement(Color::Blue, 20.0);
        let r = run_faulted(PartitionStrategy::Solo, 1, 3, &plan);
        assert!(r.correct, "a spare swap should still finish the flag");
        let res = r.resilience.as_ref().unwrap();
        assert_eq!(res.faults_planned, 1);
        assert_eq!(res.incidents.len(), 1, "{res:?}");
        assert!(res.incidents[0].what.contains("blue implement broke"));
        assert!(res
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::SpareSwapped { color: Color::Blue, .. })));
        assert!(res.time_lost_secs > 0.0);
        assert!(!res.aborted);
        assert!(
            r.completion > base.completion,
            "the swap delay must show up in the completion time"
        );
    }

    #[test]
    fn dropout_mid_run_rebalances_to_survivors() {
        let base = run_scenario(PartitionStrategy::HorizontalBands(4), 4, 3);
        let plan = FaultPlan::new("office call").dropout(1, 10.0);
        let r = run_faulted(PartitionStrategy::HorizontalBands(4), 4, 3, &plan);
        assert!(r.correct, "survivors should finish the dropout's stripe");
        let res = r.resilience.as_ref().unwrap();
        assert!(res.incidents.iter().any(|i| i.what.contains("dropped out")));
        assert!(res
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::WorkRebalanced { student: 1, .. })));
        assert!(res
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::CellsAdopted { .. })));
        assert!(r.students[1].completed < r.students[1].cells);
        // Three students doing four students' work is slower.
        assert!(r.completion > base.completion);
    }

    #[test]
    fn abort_policy_stops_the_run_cleanly() {
        let base = run_scenario(PartitionStrategy::Solo, 1, 3);
        let plan = FaultPlan::new("give up")
            .break_implement(Color::Red, 5.0)
            .with_policy(RecoveryPolicy::AbortAndReport);
        let r = run_faulted(PartitionStrategy::Solo, 1, 3, &plan);
        let res = r.resilience.as_ref().unwrap();
        assert!(res.aborted);
        assert!(res
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::Aborted { .. })));
        assert!(!r.correct, "an aborted run leaves the flag unfinished");
        assert!(r.completion < base.completion);
    }

    #[test]
    fn late_arrival_delays_their_part() {
        let base = run_scenario(PartitionStrategy::HorizontalBands(2), 2, 3);
        let plan = FaultPlan::new("overslept").late_arrival(1, 40.0);
        let r = run_faulted(PartitionStrategy::HorizontalBands(2), 2, 3, &plan);
        assert!(r.correct);
        assert!(r.completion > base.completion);
        assert!(r.students[1].finished_at.as_secs_f64() > 40.0);
        let res = r.resilience.as_ref().unwrap();
        assert!(res.incidents.iter().any(|i| i.what.contains("late")));
    }

    #[test]
    fn bell_fault_matches_configured_deadline() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t1 = team(1);
        let via_config = run_activity(
            "config bell",
            &pf,
            &assignments,
            &mut t1,
            &kit(),
            &ActivityConfig::default().with_deadline_secs(60.0),
        )
        .unwrap();
        let mut t2 = team(1);
        let via_fault = run_activity_with_faults(
            "fault bell",
            &pf,
            &assignments,
            &mut t2,
            &kit(),
            &ActivityConfig::default(),
            &FaultPlan::new("bell").bell(60.0),
        )
        .unwrap();
        assert_eq!(via_config.completion, via_fault.completion);
        assert_eq!(
            via_config.students[0].completed,
            via_fault.students[0].completed
        );
        let res = via_fault.resilience.as_ref().unwrap();
        assert!(res.incidents.iter().any(|i| i.what.contains("bell")));
    }

    #[test]
    fn fumbles_charge_every_handoff() {
        let base = run_scenario(PartitionStrategy::VerticalSlices(4), 4, 3);
        let plan = FaultPlan::new("butterfingers").fumble(Color::Red, 3.0);
        let r = run_faulted(PartitionStrategy::VerticalSlices(4), 4, 3, &plan);
        assert!(r.correct);
        // Slower hand-offs reshuffle downstream queue arrivals, so the
        // makespan may move either way (a Graham-style anomaly) — but it
        // must move, and the bill must match the observed hand-offs.
        assert_ne!(r.completion, base.completion);
        let res = r.resilience.as_ref().unwrap();
        assert!(res.incidents.iter().any(|i| i.what.contains("fumbled")));
        let red_handoffs = r
            .contention
            .iter()
            .find(|c| c.color == Color::Red)
            .unwrap()
            .stats
            .handoffs;
        assert!(red_handoffs > 0);
        assert!((res.time_lost_secs - 3.0 * red_handoffs as f64).abs() < 1e-9);
        // Every red wait got 3s longer than the fault-free run's.
        let base_red_wait = base
            .contention
            .iter()
            .find(|c| c.color == Color::Red)
            .unwrap()
            .stats
            .total_wait;
        let red_wait = r
            .contention
            .iter()
            .find(|c| c.color == Color::Red)
            .unwrap()
            .stats
            .total_wait;
        assert!(red_wait > base_red_wait);
    }

    #[test]
    fn fault_that_cannot_bite_leaves_an_empty_incident_log() {
        // Breaking a color long after the run ends: planned, never bites.
        let plan = FaultPlan::new("too late").break_implement(Color::Red, 1e6);
        let r = run_faulted(PartitionStrategy::Solo, 1, 3, &plan);
        assert!(r.correct);
        let res = r.resilience.as_ref().unwrap();
        assert_eq!(res.faults_planned, 1);
        assert!(res.incidents.is_empty());
        assert_eq!(res.time_lost_secs, 0.0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let plan = FaultPlan::new("drill")
            .break_implement(Color::Yellow, 15.0)
            .dropout(2, 25.0)
            .fumble(Color::Red, 2.0);
        let a = run_faulted(PartitionStrategy::VerticalSlices(4), 4, 9, &plan);
        let b = run_faulted(PartitionStrategy::VerticalSlices(4), 4, 9, &plan);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.grid, b.grid);
    }

    #[test]
    fn plan_validation_is_enforced() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut t = team(1);
        let err = run_activity_with_faults(
            "bad",
            &pf,
            &assignments,
            &mut t,
            &kit(),
            &ActivityConfig::default(),
            &FaultPlan::new("bad").dropout(3, 10.0),
        )
        .unwrap_err();
        assert!(err.contains("student #4"), "{err}");
    }
}
