//! Run replay: watch the flag fill in.
//!
//! The Webster instructor used animations to show schedules; the
//! activity-level counterpart is watching the *grid* fill cell by cell.
//! A [`Replay`] reconstructs, from a run's trace, when every cell was
//! finished, and renders the grid at any instant — ASCII frames for the
//! terminal, or a full frame sequence for a flip-book handout.

use crate::report::RunReport;
use crate::work::WorkItem;
use flagsim_desim::{EventKind, SimTime};
use flagsim_grid::{render, CellId, Color, Grid};

/// One cell's completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCompletion {
    /// The cell.
    pub cell: CellId,
    /// Its color.
    pub color: Color,
    /// Which student colored it.
    pub student: usize,
    /// When the coloring stroke finished (ms).
    pub finished_ms: u64,
}

/// A reconstructed run timeline.
#[derive(Debug, Clone)]
pub struct Replay {
    width: u32,
    height: u32,
    completions: Vec<CellCompletion>,
    end_ms: u64,
}

impl Replay {
    /// Build from a run report and the assignments it executed. The k-th
    /// work event of student i corresponds to `assignments[i][k]` — the
    /// engine polls work strictly in assignment order.
    pub fn new(report: &RunReport, assignments: &[Vec<WorkItem>]) -> Self {
        let mut completions = Vec::new();
        for (i, items) in assignments.iter().enumerate() {
            let mut k = 0usize;
            for e in report.trace.events.iter().filter(|e| e.proc.index() == i) {
                if let EventKind::WorkStart { dur } = e.kind {
                    let finished = e.time + dur;
                    if finished <= report.trace.end_time {
                        if let Some(item) = items.get(k) {
                            completions.push(CellCompletion {
                                cell: item.cell,
                                color: item.color,
                                student: i,
                                finished_ms: finished.millis(),
                            });
                        }
                    }
                    k += 1;
                }
            }
        }
        completions.sort_by_key(|c| c.finished_ms);
        Replay {
            width: report.grid.width(),
            height: report.grid.height(),
            completions,
            end_ms: report.trace.end_time.millis(),
        }
    }

    /// Total runtime in milliseconds.
    pub fn end_ms(&self) -> u64 {
        self.end_ms
    }

    /// All completions in time order.
    pub fn completions(&self) -> &[CellCompletion] {
        &self.completions
    }

    /// The grid as it looked at time `t`.
    pub fn grid_at(&self, t: SimTime) -> Grid {
        let mut grid = Grid::new(self.width, self.height);
        for c in &self.completions {
            if c.finished_ms <= t.millis() {
                grid.paint(c.cell, c.color);
            }
        }
        grid
    }

    /// Cells finished by time `t`.
    pub fn progress_at(&self, t: SimTime) -> usize {
        self.completions
            .iter()
            .take_while(|c| c.finished_ms <= t.millis())
            .count()
    }

    /// Render `frames` evenly spaced ASCII frames (including the final
    /// state), each with a progress caption.
    pub fn ascii_frames(&self, frames: usize) -> Vec<String> {
        assert!(frames > 0, "need at least one frame");
        let total = self.completions.len().max(1);
        (1..=frames)
            .map(|i| {
                let t = SimTime(self.end_ms * i as u64 / frames as u64);
                let grid = self.grid_at(t);
                let done = self.progress_at(t);
                format!(
                    "t = {:>7.1}s  ({done}/{total} cells)\n{}",
                    t.as_secs_f64(),
                    render::to_ascii(&grid)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActivityConfig;
    use crate::partition::{CellOrder, PartitionStrategy};
    use crate::run_activity;
    use crate::work::PreparedFlag;
    use crate::TeamKit;
    use flagsim_agents::{ImplementKind, StudentProfile};
    use flagsim_flags::library;

    fn run() -> (RunReport, Vec<Vec<WorkItem>>, PreparedFlag) {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team: Vec<StudentProfile> = (1..=4)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = run_activity(
            "replay",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_seed(3),
        )
        .unwrap();
        (report, assignments, pf)
    }

    #[test]
    fn replay_reconstructs_every_cell() {
        let (report, assignments, pf) = run();
        let replay = Replay::new(&report, &assignments);
        assert_eq!(replay.completions().len(), 96);
        // Final frame equals the reference flag.
        let final_grid = replay.grid_at(SimTime(replay.end_ms()));
        assert!(flagsim_grid::diff(&final_grid, &pf.reference).is_identical());
        // Start frame is blank.
        assert_eq!(replay.grid_at(SimTime::ZERO).blank_cells(), 96);
    }

    #[test]
    fn progress_is_monotone() {
        let (report, assignments, _) = run();
        let replay = Replay::new(&report, &assignments);
        let mut last = 0;
        for i in 0..=20 {
            let t = SimTime(replay.end_ms() * i / 20);
            let p = replay.progress_at(t);
            assert!(p >= last, "progress went backwards at {t}");
            last = p;
        }
        assert_eq!(last, 96);
    }

    #[test]
    fn frames_render_with_captions() {
        let (report, assignments, _) = run();
        let replay = Replay::new(&report, &assignments);
        let frames = replay.ascii_frames(4);
        assert_eq!(frames.len(), 4);
        assert!(frames[0].contains("t ="));
        assert!(frames[3].contains("(96/96 cells)"));
        // Earlier frames have more blanks than later ones.
        let blanks = |f: &str| f.matches('.').count();
        assert!(blanks(&frames[0]) >= blanks(&frames[3]));
    }

    #[test]
    fn deadline_replays_stay_partial() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team = vec![StudentProfile::new("P1").without_warmup()];
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = run_activity(
            "bell",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_deadline_secs(60.0),
        )
        .unwrap();
        let replay = Replay::new(&report, &assignments);
        assert!(replay.completions().len() < 96);
        let final_grid = replay.grid_at(SimTime(replay.end_ms()));
        assert!(final_grid.blank_cells() > 0);
        // The replay's final grid matches the report's partial grid.
        assert!(flagsim_grid::diff(&final_grid, &report.grid).is_identical());
    }
}
