//! Run replay: watch the flag fill in.
//!
//! The Webster instructor used animations to show schedules; the
//! activity-level counterpart is watching the *grid* fill cell by cell.
//! A [`Replay`] reconstructs, from a run's trace, when every cell was
//! finished, and renders the grid at any instant — ASCII frames for the
//! terminal, or a full frame sequence for a flip-book handout.

use crate::report::RunReport;
use crate::work::WorkItem;
use flagsim_desim::{EventKind, SimTime};
use flagsim_grid::{render, CellId, Color, Grid};

/// One cell's completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCompletion {
    /// The cell.
    pub cell: CellId,
    /// Its color.
    pub color: Color,
    /// Which student colored it.
    pub student: usize,
    /// When the coloring stroke started (ms).
    pub started_ms: u64,
    /// When the coloring stroke finished (ms).
    pub finished_ms: u64,
}

/// A cell whose coloring stroke was still in flight when the bell cut
/// the run off: it started but never finished, so it must render as
/// in-progress — never as completed — in every frame at or after the
/// cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellInFlight {
    /// The cell.
    pub cell: CellId,
    /// The color being applied when the bell rang.
    pub color: Color,
    /// Which student was coloring it.
    pub student: usize,
    /// When the coloring stroke started (ms).
    pub started_ms: u64,
}

/// A reconstructed run timeline.
#[derive(Debug, Clone)]
pub struct Replay {
    width: u32,
    height: u32,
    completions: Vec<CellCompletion>,
    in_flight: Vec<CellInFlight>,
    end_ms: u64,
}

impl Replay {
    /// Build from a run report and the assignments it executed. The k-th
    /// work event of student i corresponds to `assignments[i][k]` — the
    /// engine polls work strictly in assignment order.
    pub fn new(report: &RunReport, assignments: &[Vec<WorkItem>]) -> Self {
        let mut completions = Vec::new();
        let mut in_flight = Vec::new();
        for (i, items) in assignments.iter().enumerate() {
            let mut k = 0usize;
            for e in report.trace.events.iter().filter(|e| e.proc.index() == i) {
                if let EventKind::WorkStart { dur } = e.kind {
                    let finished = e.time + dur;
                    if let Some(item) = items.get(k) {
                        if finished <= report.trace.end_time {
                            completions.push(CellCompletion {
                                cell: item.cell,
                                color: item.color,
                                student: i,
                                started_ms: e.time.millis(),
                                finished_ms: finished.millis(),
                            });
                        } else {
                            // The bell rang mid-stroke: the cell stays
                            // unfinished forever, not silently absent.
                            in_flight.push(CellInFlight {
                                cell: item.cell,
                                color: item.color,
                                student: i,
                                started_ms: e.time.millis(),
                            });
                        }
                    }
                    k += 1;
                }
            }
        }
        completions.sort_by_key(|c| c.finished_ms);
        in_flight.sort_by_key(|c| c.started_ms);
        Replay {
            width: report.grid.width(),
            height: report.grid.height(),
            completions,
            in_flight,
            end_ms: report.trace.end_time.millis(),
        }
    }

    /// Total runtime in milliseconds.
    pub fn end_ms(&self) -> u64 {
        self.end_ms
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// All completions in time order.
    pub fn completions(&self) -> &[CellCompletion] {
        &self.completions
    }

    /// Strokes the bell interrupted, in start order (empty unless the
    /// run was cut off).
    pub fn in_flight(&self) -> &[CellInFlight] {
        &self.in_flight
    }

    /// Whether the run was cut off with strokes still in flight.
    pub fn cut_off(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// The grid as it looked at time `t`.
    pub fn grid_at(&self, t: SimTime) -> Grid {
        let mut grid = Grid::new(self.width, self.height);
        for c in &self.completions {
            if c.finished_ms <= t.millis() {
                grid.paint(c.cell, c.color);
            }
        }
        grid
    }

    /// Cells finished by time `t`.
    pub fn progress_at(&self, t: SimTime) -> usize {
        self.completions
            .iter()
            .take_while(|c| c.finished_ms <= t.millis())
            .count()
    }

    /// Strokes in progress at time `t`: completions mid-stroke
    /// (`started <= t < finished`) plus every bell-interrupted stroke
    /// already started — the latter stay in progress in every frame at
    /// or after the cut-off, since their finish never comes.
    pub fn in_progress_at(&self, t: SimTime) -> Vec<(CellId, Color, usize)> {
        let ms = t.millis();
        let mut out: Vec<(CellId, Color, usize)> = self
            .completions
            .iter()
            .filter(|c| c.started_ms <= ms && ms < c.finished_ms)
            .map(|c| (c.cell, c.color, c.student))
            .collect();
        out.extend(
            self.in_flight
                .iter()
                .filter(|c| c.started_ms <= ms)
                .map(|c| (c.cell, c.color, c.student)),
        );
        out
    }

    /// ASCII frame of the grid at time `t`: finished cells show their
    /// color code, strokes in progress show the code lowercased (an
    /// unfinished cell is visibly different from both a blank and a
    /// completed one), blanks stay `.`.
    pub fn ascii_at(&self, t: SimTime) -> String {
        let mut art: Vec<Vec<char>> = render::to_ascii(&self.grid_at(t))
            .lines()
            .map(|l| l.chars().collect())
            .collect();
        for (cell, color, _) in self.in_progress_at(t) {
            let (x, y) = (cell.index() % self.width as usize, cell.index() / self.width as usize);
            if let Some(c) = art.get_mut(y).and_then(|row| row.get_mut(x)) {
                *c = color.code().to_ascii_lowercase();
            }
        }
        let mut out = String::with_capacity((self.width as usize + 1) * self.height as usize);
        for row in art {
            out.extend(row);
            out.push('\n');
        }
        out
    }

    /// Render `frames` evenly spaced ASCII frames (including the final
    /// state), each with a progress caption. In-flight strokes render
    /// lowercased; a cut-off run's final frame keeps them that way.
    pub fn ascii_frames(&self, frames: usize) -> Vec<String> {
        assert!(frames > 0, "need at least one frame");
        let total = self.completions.len() + self.in_flight.len();
        let total = total.max(1);
        (1..=frames)
            .map(|i| {
                let t = SimTime(self.end_ms * i as u64 / frames as u64);
                let done = self.progress_at(t);
                format!(
                    "t = {:>7.1}s  ({done}/{total} cells)\n{}",
                    t.as_secs_f64(),
                    self.ascii_at(t)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActivityConfig;
    use crate::partition::{CellOrder, PartitionStrategy};
    use crate::run_activity;
    use crate::work::PreparedFlag;
    use crate::TeamKit;
    use flagsim_agents::{ImplementKind, StudentProfile};
    use flagsim_flags::library;

    fn run() -> (RunReport, Vec<Vec<WorkItem>>, PreparedFlag) {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team: Vec<StudentProfile> = (1..=4)
            .map(|i| StudentProfile::new(format!("P{i}")).without_warmup())
            .collect();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = run_activity(
            "replay",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_seed(3),
        )
        .unwrap();
        (report, assignments, pf)
    }

    #[test]
    fn replay_reconstructs_every_cell() {
        let (report, assignments, pf) = run();
        let replay = Replay::new(&report, &assignments);
        assert_eq!(replay.completions().len(), 96);
        // Final frame equals the reference flag.
        let final_grid = replay.grid_at(SimTime(replay.end_ms()));
        assert!(flagsim_grid::diff(&final_grid, &pf.reference).is_identical());
        // Start frame is blank.
        assert_eq!(replay.grid_at(SimTime::ZERO).blank_cells(), 96);
    }

    #[test]
    fn progress_is_monotone() {
        let (report, assignments, _) = run();
        let replay = Replay::new(&report, &assignments);
        let mut last = 0;
        for i in 0..=20 {
            let t = SimTime(replay.end_ms() * i / 20);
            let p = replay.progress_at(t);
            assert!(p >= last, "progress went backwards at {t}");
            last = p;
        }
        assert_eq!(last, 96);
    }

    #[test]
    fn frames_render_with_captions() {
        let (report, assignments, _) = run();
        let replay = Replay::new(&report, &assignments);
        let frames = replay.ascii_frames(4);
        assert_eq!(frames.len(), 4);
        assert!(frames[0].contains("t ="));
        assert!(frames[3].contains("(96/96 cells)"));
        // Earlier frames have more blanks than later ones.
        let blanks = |f: &str| f.matches('.').count();
        assert!(blanks(&frames[0]) >= blanks(&frames[3]));
    }

    #[test]
    fn deadline_replays_stay_partial() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team = vec![StudentProfile::new("P1").without_warmup()];
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = run_activity(
            "bell",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_deadline_secs(60.0),
        )
        .unwrap();
        let replay = Replay::new(&report, &assignments);
        assert!(replay.completions().len() < 96);
        let final_grid = replay.grid_at(SimTime(replay.end_ms()));
        assert!(final_grid.blank_cells() > 0);
        // The replay's final grid matches the report's partial grid.
        assert!(flagsim_grid::diff(&final_grid, &report.grid).is_identical());
    }

    /// Regression: a stroke the bell interrupted must render as
    /// in-progress (lowercase) in every frame at or after the cut-off —
    /// never as completed, and never silently vanish.
    #[test]
    fn cut_off_strokes_render_in_progress_forever() {
        let pf = PreparedFlag::new(&library::mauritius());
        let assignments =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let mut team = vec![StudentProfile::new("P1").without_warmup()];
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &pf.colors_needed(&[]));
        let report = run_activity(
            "bell",
            &pf,
            &assignments,
            &mut team,
            &kit,
            &ActivityConfig::default().with_seed(3).with_deadline_secs(60.0),
        )
        .unwrap();
        let replay = Replay::new(&report, &assignments);
        assert!(replay.cut_off(), "the bell should interrupt a stroke mid-flight");
        let caught = replay.in_flight()[0];
        let lower = caught.color.code().to_ascii_lowercase();
        let end = replay.end_ms();
        // At and after the bell the interrupted cell is in progress.
        for t in [end, end + 1, end * 2] {
            let listed = replay.in_progress_at(SimTime(t));
            assert!(
                listed.iter().any(|&(c, _, _)| c == caught.cell),
                "in-flight cell absent at t={t}"
            );
            let frame = replay.ascii_at(SimTime(t));
            let (x, y) = (
                caught.cell.index() % replay.width() as usize,
                caught.cell.index() / replay.width() as usize,
            );
            let ch = frame.lines().nth(y).and_then(|l| l.chars().nth(x)).unwrap();
            assert_eq!(ch, lower, "cut-off cell must render lowercase at t={t}");
        }
        // It is not in the completed set, and the completed grid leaves
        // it blank.
        assert!(replay.completions().iter().all(|c| c.cell != caught.cell));
        assert_eq!(
            replay.grid_at(SimTime(end)).get(caught.cell),
            flagsim_grid::Color::Blank
        );
        // The final ascii_frames frame still shows it lowercased.
        let frames = replay.ascii_frames(4);
        let last = frames.last().unwrap();
        assert!(last.contains(lower), "final frame lost the in-flight cell: {last}");
    }
}
