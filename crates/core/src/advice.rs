//! The §IV practical advice, as an executable pre-flight check.
//!
//! "It is important for the instructor to complete a 'dry run' of the
//! activity … This also checks that the drawing implements are
//! appropriate (Are the markers dead? Will they bleed through the
//! paper?)". This module runs that dry run against a planned session:
//! kit completeness and condition, team sizing, slide availability, and
//! the crayon warning the survey comments earned.

use crate::config::{ActivityConfig, TeamKit};
use crate::scenario::Scenario;
use crate::work::PreparedFlag;
use flagsim_agents::{Condition, ImplementKind};
use std::fmt::Write as _;

/// Severity of a pre-flight finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// All good.
    Pass,
    /// Will work, but the paper's experience says you'll regret it.
    Warning,
    /// The activity cannot run as planned.
    Blocker,
}

/// One pre-flight finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// What was checked.
    pub check: String,
    /// How it went.
    pub severity: Severity,
    /// Detail for the instructor.
    pub detail: String,
}

/// Run the dry-run checklist for one planned scenario.
pub fn preflight(
    flag: &PreparedFlag,
    scenario: &Scenario,
    kit: &TeamKit,
    team_size: usize,
    config: &ActivityConfig,
) -> Vec<CheckResult> {
    let mut results = Vec::new();
    let needed = flag.colors_needed(&config.skip_colors);

    // 1. Kit completeness & condition ("Are the markers dead?").
    match kit.check(&needed) {
        Ok(()) => results.push(CheckResult {
            check: "implements present and usable".into(),
            severity: Severity::Pass,
            detail: format!("{} colors covered", needed.len()),
        }),
        Err(e) => results.push(CheckResult {
            check: "implements present and usable".into(),
            severity: Severity::Blocker,
            detail: e,
        }),
    }

    // 2. Worn implements slow everyone down — warn.
    let worn: Vec<String> = needed
        .iter()
        .filter_map(|&c| {
            kit.implement(c).and_then(|i| {
                (i.condition == Condition::Worn).then(|| format!("{c} {}", i.kind))
            })
        })
        .collect();
    results.push(if worn.is_empty() {
        CheckResult {
            check: "implement condition".into(),
            severity: Severity::Pass,
            detail: "no worn implements".into(),
        }
    } else {
        CheckResult {
            check: "implement condition".into(),
            severity: Severity::Warning,
            detail: format!("worn: {} (1.5x slower)", worn.join(", ")),
        }
    });

    // 3. Crayons drew complaints at the institution that used them.
    let crayons = needed
        .iter()
        .filter(|&&c| {
            kit.implement(c)
                .is_some_and(|i| i.kind == ImplementKind::Crayon)
        })
        .count();
    results.push(if crayons > 0 {
        CheckResult {
            check: "crayon warning".into(),
            severity: Severity::Warning,
            detail: format!(
                "{crayons} color(s) on crayons — expect breakage and survey complaints; \
                 the paper's students 'preferred markers to crayons'"
            ),
        }
    } else {
        CheckResult {
            check: "crayon warning".into(),
            severity: Severity::Pass,
            detail: "no crayons in the kit".into(),
        }
    });

    // 4. Team sizing for the scenario.
    let required = scenario.team_size(flag, config);
    results.push(if team_size >= required {
        CheckResult {
            check: "team size".into(),
            severity: Severity::Pass,
            detail: format!("{team_size} students for {required} coloring roles (+ timer)"),
        }
    } else {
        CheckResult {
            check: "team size".into(),
            severity: Severity::Blocker,
            detail: format!("\"{}\" needs {required} students, team has {team_size}", scenario.name),
        }
    });

    // 5. Slides: the decomposition must actually partition the flag.
    let assignments = scenario
        .strategy
        .assignments(flag, scenario.order, &config.skip_colors);
    results.push(
        match crate::partition::verify_assignments(flag, &assignments, &config.skip_colors) {
            Ok(()) => CheckResult {
                check: "scenario slides / decomposition".into(),
                severity: Severity::Pass,
                detail: format!(
                    "{} parts covering {} cells; numbered slides available",
                    assignments.len(),
                    flag.total_items(&config.skip_colors)
                ),
            },
            Err(e) => CheckResult {
                check: "scenario slides / decomposition".into(),
                severity: Severity::Blocker,
                detail: e,
            },
        },
    );

    // 6. Grid size sanity: enough cells per student to time meaningfully.
    let per_student = flag.total_items(&config.skip_colors) / assignments.len().max(1);
    results.push(if per_student >= 8 {
        CheckResult {
            check: "cells per student".into(),
            severity: Severity::Pass,
            detail: format!("{per_student} cells each"),
        }
    } else {
        CheckResult {
            check: "cells per student".into(),
            severity: Severity::Warning,
            detail: format!(
                "only {per_student} cells each — times will be noisy; use a larger grid"
            ),
        }
    });

    results
}

/// Worst severity across findings.
pub fn overall(results: &[CheckResult]) -> Severity {
    results
        .iter()
        .map(|r| r.severity)
        .max()
        .unwrap_or(Severity::Pass)
}

/// Render the checklist for printing.
pub fn render_checklist(results: &[CheckResult]) -> String {
    let mut out = String::from("Dry-run checklist (§IV):\n");
    for r in results {
        let mark = match r.severity {
            Severity::Pass => "ok",
            Severity::Warning => "WARN",
            Severity::Blocker => "BLOCK",
        };
        let _ = writeln!(out, "  [{mark:<5}] {:<36} {}", r.check, r.detail);
    }
    let _ = writeln!(out, "overall: {:?}", overall(results));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::Implement;
    use flagsim_flags::library;
    use flagsim_grid::Color;

    fn setup() -> (PreparedFlag, Scenario, ActivityConfig) {
        (
            PreparedFlag::new(&library::mauritius()),
            Scenario::fig1(4),
            ActivityConfig::default(),
        )
    }

    #[test]
    fn good_setup_passes() {
        let (flag, sc, cfg) = setup();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        assert_eq!(overall(&results), Severity::Pass, "{results:#?}");
        let text = render_checklist(&results);
        assert!(text.contains("overall: Pass"));
    }

    #[test]
    fn dead_marker_blocks() {
        let (flag, sc, cfg) = setup();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
            .with_implement(
                Color::Red,
                Implement {
                    kind: ImplementKind::ThickMarker,
                    condition: Condition::Dead,
                },
            );
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        assert_eq!(overall(&results), Severity::Blocker);
        assert!(render_checklist(&results).contains("dead"));
    }

    #[test]
    fn crayons_warn() {
        let (flag, sc, cfg) = setup();
        let kit = TeamKit::uniform(ImplementKind::Crayon, &Color::MAURITIUS);
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        assert_eq!(overall(&results), Severity::Warning);
        assert!(render_checklist(&results).contains("breakage"));
    }

    #[test]
    fn small_team_blocks() {
        let (flag, sc, cfg) = setup();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let results = preflight(&flag, &sc, &kit, 2, &cfg);
        assert_eq!(overall(&results), Severity::Blocker);
    }

    #[test]
    fn tiny_grid_warns_about_noisy_times() {
        let flag = PreparedFlag::at_size(&library::mauritius(), 4, 4);
        let sc = Scenario::fig1(3);
        let cfg = ActivityConfig::default();
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        assert!(results
            .iter()
            .any(|r| r.check == "cells per student" && r.severity == Severity::Warning));
    }

    #[test]
    fn worn_kit_warns() {
        let (flag, sc, cfg) = setup();
        let kit = Color::MAURITIUS.iter().fold(
            TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS),
            |k, &c| {
                k.with_implement(
                    c,
                    Implement {
                        kind: ImplementKind::ThickMarker,
                        condition: Condition::Worn,
                    },
                )
            },
        );
        let results = preflight(&flag, &sc, &kit, 5, &cfg);
        assert_eq!(overall(&results), Severity::Warning);
        assert!(render_checklist(&results).contains("1.5x slower"));
    }
}
