//! Repeated-run sweeps.
//!
//! One classroom run is a single noisy sample; every quantitative claim
//! in EXPERIMENTS.md comes from running a scenario across many seeds with
//! fresh teams. This module is that harness, public: give it a scenario
//! and a configuration, get summary statistics and the raw reports.

use crate::config::{ActivityConfig, TeamKit};
use crate::faults::FaultPlan;
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::work::PreparedFlag;
use flagsim_agents::StudentProfile;
use flagsim_metrics::RunStats;

/// One repetition of a sweep that failed to produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// Repetition index (0-based).
    pub rep: u64,
    /// What went wrong, as reported by the run.
    pub error: String,
}

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Completion-seconds statistics across repetitions.
    pub completion: RunStats,
    /// Total-waiting statistics across repetitions.
    pub waiting: RunStats,
    /// Every successful run, in repetition order.
    pub reports: Vec<RunReport>,
    /// Repetitions that failed (always empty from the panicking
    /// [`sweep`]; [`try_sweep`] records them and keeps going).
    pub failures: Vec<SweepFailure>,
}

impl SweepResult {
    /// The mean completion time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.completion.mean
    }
}

/// Run `scenario` `reps` times, each with a fresh team of `team_size`
/// students (warm-up enabled or not) and a seed derived from
/// `config.seed` and the repetition index. Panics if any run fails or
/// produces a wrong flag — a sweep is a measurement, not a fault drill.
pub fn sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
) -> SweepResult {
    assert!(reps > 0, "need at least one repetition");
    let result = try_sweep(
        scenario,
        flag,
        kit,
        config,
        team_size,
        warmup,
        reps,
        &FaultPlan::none(),
    )
    .expect("sweep run failed");
    if let Some(f) = result.failures.first() {
        // Preserve the historical contract: a measurement sweep panics on
        // the first failed repetition instead of soldiering on.
        std::panic::panic_any(format!("sweep run failed: rep {}: {}", f.rep, f.error));
    }
    assert!(
        result
            .reports
            .iter()
            .all(|r| r.correct || config.deadline_secs.is_some()),
        "sweep produced a wrong flag"
    );
    result
}

/// Fault-tolerant sweep: run `scenario` `reps` times under `plan`,
/// recording failed repetitions in [`SweepResult::failures`] instead of
/// panicking, so one bad seed cannot sink a whole measurement campaign.
///
/// Errors only when no statistics can be produced at all: zero
/// repetitions requested, or every repetition failed.
#[allow(clippy::too_many_arguments)]
pub fn try_sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
    plan: &FaultPlan,
) -> Result<SweepResult, String> {
    if reps == 0 {
        return Err("need at least one repetition".to_owned());
    }
    let mut reports = Vec::with_capacity(reps as usize);
    let mut failures = Vec::new();
    for rep in 0..reps {
        let mut team: Vec<StudentProfile> = (1..=team_size)
            .map(|i| {
                let s = StudentProfile::new(format!("P{i}"));
                if warmup {
                    s
                } else {
                    s.without_warmup()
                }
            })
            .collect();
        let cfg = ActivityConfig {
            seed: config.seed.wrapping_add(rep.wrapping_mul(0x9E37_79B9)),
            ..config.clone()
        };
        match scenario.run_with_faults(flag, &mut team, kit, &cfg, plan) {
            Ok(report) => reports.push(report),
            Err(error) => failures.push(SweepFailure { rep, error }),
        }
    }
    if reports.is_empty() {
        let first = failures.first().expect("reps > 0");
        return Err(format!(
            "all {reps} repetitions failed; first: rep {}: {}",
            first.rep, first.error
        ));
    }
    let completions: Vec<f64> = reports.iter().map(RunReport::completion_secs).collect();
    let waits: Vec<f64> = reports.iter().map(RunReport::total_wait_secs).collect();
    Ok(SweepResult {
        completion: RunStats::from_sample(&completions),
        waiting: RunStats::from_sample(&waits),
        reports,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_flags::library;
    use flagsim_metrics::clearly_different;

    #[test]
    fn sweep_statistics_separate_scenarios() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default();
        let s1 = sweep(&Scenario::fig1(1), &flag, &kit, &cfg, 1, false, 16);
        let s3 = sweep(&Scenario::fig1(3), &flag, &kit, &cfg, 4, false, 16);
        assert_eq!(s1.reports.len(), 16);
        assert!(s1.mean_secs() > s3.mean_secs());
        assert!(clearly_different(&s1.completion, &s3.completion));
        assert_eq!(s3.waiting.max, 0.0, "stripes never contend");
    }

    #[test]
    fn sweep_is_deterministic() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(9);
        let a = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        let b = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.waiting, b.waiting);
    }

    #[test]
    fn faulted_sweep_completes_all_32_seeds() {
        // Acceptance: a 32-seed sweep with a break-one-implement fault
        // plan completes every run with a ResilienceReport and zero
        // panics or lost repetitions.
        use flagsim_grid::Color;
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(7);
        let plan = crate::faults::FaultPlan::new("break one implement")
            .break_implement(Color::Blue, 15.0);
        let result = try_sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 32, &plan)
            .expect("faulted sweep must produce statistics");
        assert_eq!(result.reports.len(), 32);
        assert!(result.failures.is_empty(), "{:?}", result.failures);
        for r in &result.reports {
            let res = r.resilience.as_ref().expect("every run carries a report");
            assert_eq!(res.faults_planned, 1);
            assert!(!res.aborted);
            assert!(r.correct, "spare swap should always finish the flag");
        }
        // The fault actually bit in every run (blue is always used after 15s).
        assert!(result
            .reports
            .iter()
            .all(|r| !r.resilience.as_ref().unwrap().incidents.is_empty()));
    }

    #[test]
    fn try_sweep_zero_reps_is_an_error() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let err = try_sweep(
            &Scenario::fig1(1),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            0,
            &crate::faults::FaultPlan::none(),
        )
        .unwrap_err();
        assert!(err.contains("at least one repetition"));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let _ = sweep(
            &Scenario::fig1(1),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            0,
        );
    }
}
