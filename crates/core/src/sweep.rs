//! Repeated-run sweeps.
//!
//! One classroom run is a single noisy sample; every quantitative claim
//! in EXPERIMENTS.md comes from running a scenario across many seeds with
//! fresh teams. This module is that harness, public: give it a scenario
//! and a configuration, get summary statistics and the raw reports.

use crate::config::{ActivityConfig, TeamKit};
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::work::PreparedFlag;
use flagsim_agents::StudentProfile;
use flagsim_metrics::RunStats;

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Completion-seconds statistics across repetitions.
    pub completion: RunStats,
    /// Total-waiting statistics across repetitions.
    pub waiting: RunStats,
    /// Every run, in repetition order.
    pub reports: Vec<RunReport>,
}

impl SweepResult {
    /// The mean completion time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.completion.mean
    }
}

/// Run `scenario` `reps` times, each with a fresh team of `team_size`
/// students (warm-up enabled or not) and a seed derived from
/// `config.seed` and the repetition index. Panics if any run fails or
/// produces a wrong flag — a sweep is a measurement, not a fault drill.
pub fn sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
) -> SweepResult {
    assert!(reps > 0, "need at least one repetition");
    let mut reports = Vec::with_capacity(reps as usize);
    for rep in 0..reps {
        let mut team: Vec<StudentProfile> = (1..=team_size)
            .map(|i| {
                let s = StudentProfile::new(format!("P{i}"));
                if warmup {
                    s
                } else {
                    s.without_warmup()
                }
            })
            .collect();
        let cfg = ActivityConfig {
            seed: config.seed.wrapping_add(rep.wrapping_mul(0x9E37_79B9)),
            ..config.clone()
        };
        let report = scenario
            .run(flag, &mut team, kit, &cfg)
            .expect("sweep run failed");
        assert!(
            report.correct || cfg.deadline_secs.is_some(),
            "sweep produced a wrong flag"
        );
        reports.push(report);
    }
    let completions: Vec<f64> = reports.iter().map(RunReport::completion_secs).collect();
    let waits: Vec<f64> = reports.iter().map(RunReport::total_wait_secs).collect();
    SweepResult {
        completion: RunStats::from_sample(&completions),
        waiting: RunStats::from_sample(&waits),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_flags::library;
    use flagsim_metrics::clearly_different;

    #[test]
    fn sweep_statistics_separate_scenarios() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default();
        let s1 = sweep(&Scenario::fig1(1), &flag, &kit, &cfg, 1, false, 16);
        let s3 = sweep(&Scenario::fig1(3), &flag, &kit, &cfg, 4, false, 16);
        assert_eq!(s1.reports.len(), 16);
        assert!(s1.mean_secs() > s3.mean_secs());
        assert!(clearly_different(&s1.completion, &s3.completion));
        assert_eq!(s3.waiting.max, 0.0, "stripes never contend");
    }

    #[test]
    fn sweep_is_deterministic() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(9);
        let a = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        let b = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.waiting, b.waiting);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let _ = sweep(
            &Scenario::fig1(1),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            0,
        );
    }
}
