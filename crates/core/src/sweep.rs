//! Repeated-run sweeps, serial and parallel.
//!
//! One classroom run is a single noisy sample; every quantitative claim
//! in EXPERIMENTS.md comes from running a scenario across many seeds with
//! fresh teams. This module is that harness, public: give it a scenario
//! and a configuration, get summary statistics and the raw reports.
//!
//! The engine behind every entry point is [`SweepRunner`], which fans
//! repetitions across worker threads (`std::thread::scope` — the
//! workspace is offline, no rayon) while keeping the results
//! *bit-for-bit deterministic*: each repetition derives its seed from
//! `config.seed` and its index exactly as the serial loop always has,
//! workers pull indices from a shared counter, and a reorder buffer
//! merges outcomes back in repetition order before any statistic is
//! touched. `par_sweep` with any job count therefore produces a
//! [`SweepResult`] identical to the serial [`try_sweep`] for the same
//! configuration.
//!
//! For huge campaigns, [`SweepRunner::retain_reports`]`(false)` drops
//! each [`RunReport`] after extracting its two metrics and accumulates
//! them in O(1) memory with [`StreamingStats`]; a progress callback
//! ([`SweepRunner::on_progress`]) gives observability either way.

use crate::config::{ActivityConfig, TeamKit};
use crate::faults::FaultPlan;
use crate::report::RunReport;
use crate::scenario::{CompiledScenario, Scenario};
use crate::work::PreparedFlag;
use flagsim_agents::StudentProfile;
use flagsim_metrics::{RunStats, StreamingStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One repetition of a sweep that failed to produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// Repetition index (0-based).
    pub rep: u64,
    /// What went wrong, as reported by the run.
    pub error: String,
}

/// Why a sweep produced no statistics at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// Zero repetitions were requested.
    NoRepetitions,
    /// Every repetition failed; the first failure is carried for the
    /// error message and the panicking [`sweep`] wrapper.
    AllFailed {
        /// How many repetitions were attempted.
        reps: u64,
        /// The first (lowest-index) failure.
        first: SweepFailure,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::NoRepetitions => f.write_str("need at least one repetition"),
            SweepError::AllFailed { reps, first } => write!(
                f,
                "all {reps} repetitions failed; first: rep {}: {}",
                first.rep, first.error
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Completion-seconds statistics across repetitions.
    pub completion: RunStats,
    /// Total-waiting statistics across repetitions.
    pub waiting: RunStats,
    /// Every successful run, in repetition order. Empty when the sweep
    /// ran with [`SweepRunner::retain_reports`]`(false)` — the
    /// statistics above still cover every successful repetition.
    pub reports: Vec<RunReport>,
    /// Repetitions that failed (always empty from the panicking
    /// [`sweep`]; [`try_sweep`] records them and keeps going), in
    /// repetition order.
    pub failures: Vec<SweepFailure>,
}

impl SweepResult {
    /// The mean completion time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.completion.mean
    }
}

/// A progress snapshot handed to the [`SweepRunner::on_progress`]
/// callback each time repetitions are merged in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Repetitions finished so far (successes + failures), merged in
    /// repetition order.
    pub completed: u64,
    /// How many of those failed.
    pub failed: u64,
    /// Total repetitions requested.
    pub total: u64,
    /// Index of the worker that finished the repetition triggering this
    /// snapshot (0 on the serial path).
    pub worker: usize,
    /// The repetition that worker just finished (not necessarily the
    /// highest merged index — workers complete out of order).
    pub rep: u64,
}

type ProgressFn<'a> = dyn Fn(SweepProgress) + Send + Sync + 'a;

/// The sweep engine: a builder over everything [`try_sweep`] takes,
/// plus the parallel/streaming/observability knobs.
///
/// ```no_run
/// # use flagsim_core::sweep::SweepRunner;
/// # use flagsim_core::{ActivityConfig, Scenario, TeamKit};
/// # use flagsim_core::work::PreparedFlag;
/// # use flagsim_agents::ImplementKind;
/// # use flagsim_flags::library;
/// let flag = PreparedFlag::new(&library::mauritius());
/// let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
/// let cfg = ActivityConfig::default();
/// let scenario = Scenario::fig1(4);
/// let result = SweepRunner::new(&scenario, &flag, &kit, &cfg)
///     .team_size(4)
///     .reps(256)
///     .jobs(8)
///     .retain_reports(false) // O(1) memory: streaming statistics only
///     .on_progress(|p| eprintln!("{}/{} done", p.completed, p.total))
///     .run()
///     .expect("at least one repetition succeeded");
/// println!("{}", result.completion.display_secs());
/// ```
pub struct SweepRunner<'a> {
    scenario: &'a Scenario,
    flag: &'a PreparedFlag,
    kit: &'a TeamKit,
    config: &'a ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
    plan: FaultPlan,
    jobs: usize,
    retain_reports: bool,
    progress: Option<Box<ProgressFn<'a>>>,
    /// The scenario partitioned and verified once, shared by every rep
    /// (and every worker thread — the partition is seed-independent).
    compiled: OnceLock<Result<CompiledScenario, String>>,
}

impl<'a> SweepRunner<'a> {
    /// A runner with the serial defaults: team of
    /// [`Scenario::team_size`], no warm-up, 1 repetition, no faults,
    /// 1 job, reports retained, no progress callback.
    pub fn new(
        scenario: &'a Scenario,
        flag: &'a PreparedFlag,
        kit: &'a TeamKit,
        config: &'a ActivityConfig,
    ) -> Self {
        SweepRunner {
            scenario,
            flag,
            kit,
            config,
            team_size: scenario.team_size(flag, config),
            warmup: false,
            reps: 1,
            plan: FaultPlan::none(),
            jobs: 1,
            retain_reports: true,
            progress: None,
            compiled: OnceLock::new(),
        }
    }

    /// Students per repetition's fresh team.
    pub fn team_size(mut self, n: usize) -> Self {
        self.team_size = n;
        self
    }

    /// Whether each fresh team keeps the warm-up effect.
    pub fn warmup(mut self, warmup: bool) -> Self {
        self.warmup = warmup;
        self
    }

    /// Number of repetitions.
    pub fn reps(mut self, reps: u64) -> Self {
        self.reps = reps;
        self
    }

    /// Fault plan injected into every repetition.
    pub fn plan(mut self, plan: &FaultPlan) -> Self {
        self.plan = plan.clone();
        self
    }

    /// Worker threads to fan repetitions across (values ≤ 1 run the
    /// serial loop; the job count never changes the result, only the
    /// wall-clock time).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Keep every [`RunReport`] (the default), or drop each report
    /// after extracting its metrics and stream the statistics in O(1)
    /// memory — the only way a million-repetition sweep fits in RAM.
    pub fn retain_reports(mut self, retain: bool) -> Self {
        self.retain_reports = retain;
        self
    }

    /// Observe progress: called after each batch of repetitions merges,
    /// from whichever thread merged it, so the callback must be
    /// `Send + Sync`.
    pub fn on_progress(mut self, f: impl Fn(SweepProgress) + Send + Sync + 'a) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Run the sweep. Errors only when no statistics can be produced at
    /// all: zero repetitions requested, or every repetition failed.
    pub fn run(&self) -> Result<SweepResult, SweepError> {
        if self.reps == 0 {
            return Err(SweepError::NoRepetitions);
        }
        // The sweep span's args hold only values independent of the job
        // count (reps, scenario), and every rep span links to it as its
        // *logical* parent — so the canonical span tree is identical at
        // any `--jobs`, which prop_telemetry asserts. Job count and
        // thread placement are runtime detail: a gauge and the worker
        // spans' `"runtime"` category.
        let sweep_span = flagsim_telemetry::span("sim", "sweep")
            .arg("scenario", &self.scenario.name)
            .arg("reps", self.reps);
        let sweep_id = sweep_span.id();
        let mut collector = Collector::new(self.retain_reports, self.reps);
        let jobs = self.jobs.clamp(1, self.reps as usize);
        flagsim_telemetry::gauge_set("sweep.jobs", jobs as f64);
        if jobs == 1 {
            for rep in 0..self.reps {
                let rep_span =
                    flagsim_telemetry::span_linked("sim", "sweep.rep", sweep_id).arg("rep", rep);
                let outcome = self.run_rep(rep);
                drop(rep_span);
                collector.accept(rep, outcome);
                let mut p = collector.snapshot();
                p.rep = rep;
                self.emit(p);
            }
        } else {
            self.run_parallel(jobs, sweep_id, &mut collector);
        }
        let snap = collector.snapshot();
        flagsim_telemetry::count("sweep.reps_completed", snap.completed);
        flagsim_telemetry::count("sweep.failures", snap.failed);
        drop(sweep_span);
        collector.finish(self.reps)
    }

    /// One repetition: fresh team, derived seed — the exact recipe the
    /// serial sweep has always used, so seeds are independent of the
    /// job count. Public so out-of-process executors (the
    /// `flagsim-shard` worker) run the *same* repetition function the
    /// in-process sweep runs: a shard worker handed rep `i` produces the
    /// identical [`RunReport`] this runner would have produced for rep
    /// `i`, which is what keeps distributed sweeps bit-for-bit equal to
    /// serial ones.
    pub fn run_rep(&self, rep: u64) -> Result<RunReport, String> {
        let compiled = self
            .compiled
            .get_or_init(|| self.scenario.compile(self.flag, self.config))
            .as_ref()
            .map_err(Clone::clone)?;
        let mut team: Vec<StudentProfile> = (1..=self.team_size)
            .map(|i| {
                let s = StudentProfile::new(format!("P{i}"));
                if self.warmup {
                    s
                } else {
                    s.without_warmup()
                }
            })
            .collect();
        let mut cfg = ActivityConfig {
            seed: self.config.seed.wrapping_add(rep.wrapping_mul(0x9E37_79B9)),
            ..self.config.clone()
        };
        if !self.retain_reports {
            // Streaming mode drops each report after extracting its
            // aggregate metrics, so recording per-event traces is pure
            // waste; accounting is bit-identical with the sink off.
            cfg.trace_events = false;
        }
        compiled.run_with_faults(&mut team, self.kit, &cfg, &self.plan)
    }

    /// Fan repetitions across `jobs` scoped worker threads. Workers pull
    /// the next repetition index from a shared atomic counter and push
    /// outcomes into a reorder buffer; outcomes are drained into the
    /// collector strictly in repetition order, so the merged result is
    /// identical to the serial loop's no matter how threads interleave.
    /// The buffer holds at most ~`jobs` outcomes at a time, keeping the
    /// streaming path's memory bounded by the job count, not the
    /// repetition count.
    fn run_parallel(
        &self,
        jobs: usize,
        sweep_id: Option<flagsim_telemetry::SpanId>,
        collector: &mut Collector,
    ) {
        struct Reorder<'c> {
            pending: BTreeMap<u64, Result<RunReport, String>>,
            next_emit: u64,
            collector: &'c mut Collector,
        }
        let next_rep = AtomicU64::new(0);
        let shared = Mutex::new(Reorder {
            pending: BTreeMap::new(),
            next_emit: 0,
            collector,
        });
        std::thread::scope(|scope| {
            let next_rep = &next_rep;
            let shared = &shared;
            for w in 0..jobs {
                scope.spawn(move || {
                    flagsim_telemetry::set_thread_track(&format!("worker-{w}"));
                    let worker_span =
                        flagsim_telemetry::span_linked("runtime", "sweep.worker", sweep_id)
                            .arg("worker", w);
                    loop {
                        let rep = next_rep.fetch_add(1, Ordering::Relaxed);
                        if rep >= self.reps {
                            break;
                        }
                        let rep_span =
                            flagsim_telemetry::span_linked("sim", "sweep.rep", sweep_id)
                                .arg("rep", rep);
                        let outcome = self.run_rep(rep);
                        drop(rep_span);
                        let snapshot = {
                            let mut guard = shared.lock().expect("no worker panicked mid-merge");
                            let s = &mut *guard;
                            s.pending.insert(rep, outcome);
                            while let Some(ready) = s.pending.remove(&s.next_emit) {
                                s.collector.accept(s.next_emit, ready);
                                s.next_emit += 1;
                            }
                            let mut p = s.collector.snapshot();
                            p.worker = w;
                            p.rep = rep;
                            p
                        };
                        // Callback outside the lock: a slow observer must
                        // not serialize the workers.
                        self.emit(snapshot);
                    }
                    drop(worker_span);
                    flagsim_telemetry::flush_thread();
                });
            }
        });
    }

    fn emit(&self, progress: SweepProgress) {
        if let Some(cb) = &self.progress {
            cb(progress);
        }
    }
}

/// Order-respecting accumulator shared by the serial and parallel
/// paths. In retained mode it rebuilds exactly what the historical
/// serial sweep built; in streaming mode it keeps only the
/// [`StreamingStats`] accumulators.
struct Collector {
    retain: bool,
    reports: Vec<RunReport>,
    completions: Vec<f64>,
    waits: Vec<f64>,
    completion_stream: StreamingStats,
    waiting_stream: StreamingStats,
    failures: Vec<SweepFailure>,
    completed: u64,
    total: u64,
}

impl Collector {
    fn new(retain: bool, total: u64) -> Self {
        Collector {
            retain,
            reports: Vec::new(),
            completions: Vec::new(),
            waits: Vec::new(),
            completion_stream: StreamingStats::new(),
            waiting_stream: StreamingStats::new(),
            failures: Vec::new(),
            completed: 0,
            total,
        }
    }

    /// Fold in one repetition's outcome. Must be called in repetition
    /// order — the reorder buffer guarantees it on the parallel path.
    /// The streaming accumulators run even in retained mode: they are
    /// O(1) per repetition and feed the live `sweep.completion.*`
    /// gauges the dashboard reads mid-sweep.
    fn accept(&mut self, rep: u64, outcome: Result<RunReport, String>) {
        self.completed += 1;
        match outcome {
            Ok(report) => {
                let completion = report.completion_secs();
                let wait = report.total_wait_secs();
                self.completion_stream.push(completion);
                self.waiting_stream.push(wait);
                if self.retain {
                    self.completions.push(completion);
                    self.waits.push(wait);
                    self.reports.push(report);
                }
                if flagsim_telemetry::enabled() {
                    let stats = self.completion_stream.to_stats();
                    flagsim_telemetry::gauge_set("sweep.completion.mean_s", stats.mean);
                    flagsim_telemetry::gauge_set(
                        "sweep.completion.ci95_s",
                        stats.ci95_half_width(),
                    );
                    flagsim_telemetry::observe("sweep.completion_secs", completion);
                }
            }
            Err(error) => {
                flagsim_telemetry::log::warn(
                    "core.sweep",
                    "repetition failed",
                    &[("rep", rep.to_string()), ("error", error.clone())],
                );
                self.failures.push(SweepFailure { rep, error });
            }
        }
    }

    fn snapshot(&self) -> SweepProgress {
        SweepProgress {
            completed: self.completed,
            failed: self.failures.len() as u64,
            total: self.total,
            worker: 0,
            rep: self.completed.saturating_sub(1),
        }
    }

    fn finish(self, reps: u64) -> Result<SweepResult, SweepError> {
        let successes = if self.retain {
            self.completions.len() as u64
        } else {
            self.completion_stream.n()
        };
        if successes == 0 {
            let first = self.failures.into_iter().next().expect("reps > 0");
            return Err(SweepError::AllFailed { reps, first });
        }
        let (completion, waiting) = if self.retain {
            (
                RunStats::from_sample(&self.completions),
                RunStats::from_sample(&self.waits),
            )
        } else {
            (
                self.completion_stream.to_stats(),
                self.waiting_stream.to_stats(),
            )
        };
        Ok(SweepResult {
            completion,
            waiting,
            reports: self.reports,
            failures: self.failures,
        })
    }
}

/// The one formatted panic every [`sweep`] failure routes through.
fn fail_sweep(f: &SweepFailure) -> ! {
    std::panic::panic_any(format!("sweep run failed: rep {}: {}", f.rep, f.error))
}

/// Run `scenario` `reps` times, each with a fresh team of `team_size`
/// students (warm-up enabled or not) and a seed derived from
/// `config.seed` and the repetition index. Panics if any run fails or
/// produces a wrong flag — a sweep is a measurement, not a fault drill.
/// Every failed-run panic carries the documented
/// `"sweep run failed: rep N: ..."` message, whether one repetition
/// failed or all of them did.
pub fn sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
) -> SweepResult {
    let result = SweepRunner::new(scenario, flag, kit, config)
        .team_size(team_size)
        .warmup(warmup)
        .reps(reps)
        .run();
    match result {
        Ok(result) => {
            if let Some(f) = result.failures.first() {
                // Preserve the historical contract: a measurement sweep
                // panics on the first failed repetition instead of
                // soldiering on.
                fail_sweep(f);
            }
            assert!(
                result
                    .reports
                    .iter()
                    .all(|r| r.correct || config.deadline_secs.is_some()),
                "sweep produced a wrong flag"
            );
            result
        }
        Err(SweepError::AllFailed { first, .. }) => fail_sweep(&first),
        Err(e @ SweepError::NoRepetitions) => std::panic::panic_any(e.to_string()),
    }
}

/// Fault-tolerant sweep: run `scenario` `reps` times under `plan`,
/// recording failed repetitions in [`SweepResult::failures`] instead of
/// panicking, so one bad seed cannot sink a whole measurement campaign.
///
/// Errors only when no statistics can be produced at all: zero
/// repetitions requested, or every repetition failed.
#[allow(clippy::too_many_arguments)]
pub fn try_sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
    plan: &FaultPlan,
) -> Result<SweepResult, String> {
    SweepRunner::new(scenario, flag, kit, config)
        .team_size(team_size)
        .warmup(warmup)
        .reps(reps)
        .plan(plan)
        .run()
        .map_err(|e| e.to_string())
}

/// [`try_sweep`] fanned across `jobs` worker threads. Seeds, merge
/// order, and therefore the returned [`SweepResult`] are identical to
/// the serial sweep for the same configuration — the job count buys
/// wall-clock time, never different numbers.
#[allow(clippy::too_many_arguments)]
pub fn par_sweep(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    warmup: bool,
    reps: u64,
    plan: &FaultPlan,
    jobs: usize,
) -> Result<SweepResult, String> {
    SweepRunner::new(scenario, flag, kit, config)
        .team_size(team_size)
        .warmup(warmup)
        .reps(reps)
        .plan(plan)
        .jobs(jobs)
        .run()
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_flags::library;
    use flagsim_metrics::clearly_different;

    fn mauritius_setup() -> (PreparedFlag, TeamKit) {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        (flag, kit)
    }

    #[test]
    fn sweep_statistics_separate_scenarios() {
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default();
        let s1 = sweep(&Scenario::fig1(1), &flag, &kit, &cfg, 1, false, 16);
        let s3 = sweep(&Scenario::fig1(3), &flag, &kit, &cfg, 4, false, 16);
        assert_eq!(s1.reports.len(), 16);
        assert!(s1.mean_secs() > s3.mean_secs());
        assert!(clearly_different(&s1.completion, &s3.completion));
        assert_eq!(s3.waiting.max, 0.0, "stripes never contend");
    }

    #[test]
    fn sweep_is_deterministic() {
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(9);
        let a = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        let b = sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 8);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.waiting, b.waiting);
    }

    #[test]
    fn par_sweep_matches_serial_bit_for_bit() {
        // Acceptance: par_sweep with 4 jobs produces RunStats equal to
        // the serial sweep for the same seed.
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(41);
        let plan = FaultPlan::none();
        let serial =
            try_sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 24, &plan).unwrap();
        for jobs in [2, 4, 7] {
            let par = par_sweep(
                &Scenario::fig1(4),
                &flag,
                &kit,
                &cfg,
                4,
                false,
                24,
                &plan,
                jobs,
            )
            .unwrap();
            assert_eq!(par.completion, serial.completion, "jobs={jobs}");
            assert_eq!(par.waiting, serial.waiting, "jobs={jobs}");
            assert_eq!(par.reports.len(), serial.reports.len());
            // Reports come back in repetition order: completion times
            // line up pairwise, not just in aggregate.
            for (a, b) in par.reports.iter().zip(&serial.reports) {
                assert_eq!(a.completion_secs(), b.completion_secs());
            }
        }
    }

    #[test]
    fn streaming_sweep_matches_retained_statistics() {
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(5);
        let scenario = Scenario::fig1(4);
        let retained = SweepRunner::new(&scenario, &flag, &kit, &cfg)
            .team_size(4)
            .reps(32)
            .jobs(4)
            .run()
            .unwrap();
        let streamed = SweepRunner::new(&scenario, &flag, &kit, &cfg)
            .team_size(4)
            .reps(32)
            .jobs(4)
            .retain_reports(false)
            .run()
            .unwrap();
        assert!(streamed.reports.is_empty(), "streaming keeps no reports");
        assert_eq!(streamed.completion.n, retained.completion.n);
        // The streaming mean is bit-identical; stddev/min/max agree to
        // float accuracy (see flagsim_metrics::streaming for the exact
        // contract).
        assert_eq!(streamed.completion.mean, retained.completion.mean);
        assert_eq!(streamed.completion.min, retained.completion.min);
        assert_eq!(streamed.completion.max, retained.completion.max);
        assert!((streamed.completion.stddev - retained.completion.stddev).abs() < 1e-9);
        assert_eq!(streamed.waiting.mean, retained.waiting.mean);
    }

    #[test]
    fn progress_callback_sees_every_repetition() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(3);
        let scenario = Scenario::fig1(3);
        let peak = AtomicU64::new(0);
        let calls = AtomicU64::new(0);
        let result = SweepRunner::new(&scenario, &flag, &kit, &cfg)
            .team_size(4)
            .reps(12)
            .jobs(3)
            .on_progress(|p| {
                assert_eq!(p.total, 12);
                assert_eq!(p.failed, 0);
                peak.fetch_max(p.completed, Ordering::Relaxed);
                calls.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(result.reports.len(), 12);
        assert_eq!(peak.load(Ordering::Relaxed), 12, "final progress is total");
        assert!(calls.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn faulted_sweep_completes_all_32_seeds() {
        // Acceptance: a 32-seed sweep with a break-one-implement fault
        // plan completes every run with a ResilienceReport and zero
        // panics or lost repetitions.
        use flagsim_grid::Color;
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(7);
        let plan = crate::faults::FaultPlan::new("break one implement")
            .break_implement(Color::Blue, 15.0);
        let result = try_sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 32, &plan)
            .expect("faulted sweep must produce statistics");
        assert_eq!(result.reports.len(), 32);
        assert!(result.failures.is_empty(), "{:?}", result.failures);
        for r in &result.reports {
            let res = r.resilience.as_ref().expect("every run carries a report");
            assert_eq!(res.faults_planned, 1);
            assert!(!res.aborted);
            assert!(r.correct, "spare swap should always finish the flag");
        }
        // The fault actually bit in every run (blue is always used after 15s).
        assert!(result
            .reports
            .iter()
            .all(|r| !r.resilience.as_ref().unwrap().incidents.is_empty()));
    }

    #[test]
    fn faulted_parallel_sweep_loses_no_repetitions() {
        // Acceptance: the fault drill through the parallel path keeps
        // every repetition and matches the serial fault drill exactly.
        use flagsim_grid::Color;
        let (flag, kit) = mauritius_setup();
        let cfg = ActivityConfig::default().with_seed(7);
        let plan = crate::faults::FaultPlan::new("break one implement")
            .break_implement(Color::Blue, 15.0);
        let serial =
            try_sweep(&Scenario::fig1(4), &flag, &kit, &cfg, 4, false, 32, &plan).unwrap();
        let par = par_sweep(
            &Scenario::fig1(4),
            &flag,
            &kit,
            &cfg,
            4,
            false,
            32,
            &plan,
            4,
        )
        .unwrap();
        assert_eq!(par.reports.len(), 32, "no repetition lost");
        assert!(par.failures.is_empty(), "{:?}", par.failures);
        assert_eq!(par.completion, serial.completion);
        assert_eq!(par.waiting, serial.waiting);
        assert!(par
            .reports
            .iter()
            .all(|r| !r.resilience.as_ref().unwrap().incidents.is_empty()));
    }

    #[test]
    fn try_sweep_zero_reps_is_an_error() {
        let (flag, kit) = mauritius_setup();
        let err = try_sweep(
            &Scenario::fig1(1),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            0,
            &crate::faults::FaultPlan::none(),
        )
        .unwrap_err();
        assert!(err.contains("at least one repetition"));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let (flag, kit) = mauritius_setup();
        let _ = sweep(
            &Scenario::fig1(1),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "sweep run failed: rep 0: scenario 3")]
    fn all_failed_sweep_panics_with_the_documented_message() {
        // Regression: sweep() used to hit `.expect("sweep run failed")`
        // on the all-failed path, panicking with a Debug-formatted
        // message instead of the documented "sweep run failed: rep N:"
        // format. A team of 1 can never staff scenario 3's four stripes,
        // so every repetition fails.
        let (flag, kit) = mauritius_setup();
        let _ = sweep(
            &Scenario::fig1(3),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            4,
        );
    }

    #[test]
    fn all_failed_try_sweep_reports_the_first_failure() {
        let (flag, kit) = mauritius_setup();
        let err = try_sweep(
            &Scenario::fig1(3),
            &flag,
            &kit,
            &ActivityConfig::default(),
            1,
            false,
            4,
            &crate::faults::FaultPlan::none(),
        )
        .unwrap_err();
        assert!(err.contains("all 4 repetitions failed"), "{err}");
        assert!(err.contains("rep 0"), "{err}");
    }
}
