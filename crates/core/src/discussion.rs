//! The post-activity discussion, automated.
//!
//! After the scenarios, "the instructor leads a discussion about what the
//! class observed", steering students toward the lessons of §III-C. This
//! module is that instructor's cheat sheet: given the run reports of a
//! session, it detects which phenomena actually occurred — speedup,
//! warm-up, hardware differences, contention, pipelining — and emits each
//! as a [`Lesson`] with the supporting numbers, ready to project.

use crate::report::RunReport;
use flagsim_metrics::{efficiency, speedup};
use std::fmt::Write as _;

/// A PDC concept the activity can surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Concept {
    /// T₁/Tₚ fell as processors were added.
    Speedup,
    /// Speedup fell short of linear.
    SublinearEfficiency,
    /// A repeat run beat the first (system warm-up analogy).
    Warmup,
    /// Different implements gave different teams different times.
    HardwareDifferences,
    /// Students waited on shared implements.
    Contention,
    /// Processors idled before their first cell (pipeline fill).
    PipelineFill,
    /// Work was spread unevenly.
    LoadImbalance,
}

impl Concept {
    /// The classroom phrasing of the concept.
    pub fn name(self) -> &'static str {
        match self {
            Concept::Speedup => "speedup",
            Concept::SublinearEfficiency => "sublinear efficiency",
            Concept::Warmup => "system warm-up",
            Concept::HardwareDifferences => "hardware differences",
            Concept::Contention => "contention",
            Concept::PipelineFill => "pipeline fill time",
            Concept::LoadImbalance => "load imbalance",
        }
    }
}

/// One detected lesson: the concept plus the evidence sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Lesson {
    /// Which concept.
    pub concept: Concept,
    /// Evidence from the runs, with numbers.
    pub evidence: String,
}

/// Detect every lesson present in an ordered sequence of runs from one
/// team (the order the scenarios were executed). The first run is the
/// baseline; a run whose label contains "repeat" is compared to the run
/// before it for the warm-up lesson.
pub fn detect_lessons(runs: &[RunReport]) -> Vec<Lesson> {
    let mut lessons = Vec::new();
    if runs.is_empty() {
        return lessons;
    }
    let base = &runs[0];

    // Speedup: any later run materially faster than the baseline.
    if let Some(best) = runs[1..]
        .iter()
        .filter(|r| r.students.len() > 1)
        .min_by(|a, b| a.completion.cmp(&b.completion))
    {
        let s = best.speedup_vs(base);
        if s > 1.2 {
            lessons.push(Lesson {
                concept: Concept::Speedup,
                evidence: format!(
                    "\"{}\" took {:.1}s against the one-student {:.1}s — a speedup of {:.2}x",
                    best.label,
                    best.completion_secs(),
                    base.completion_secs(),
                    s
                ),
            });
            let p = best.students.len();
            let e = efficiency(base.completion_secs(), best.completion_secs(), p);
            if e < 0.95 {
                lessons.push(Lesson {
                    concept: Concept::SublinearEfficiency,
                    evidence: format!(
                        "with {p} students the speedup \"should\" be {p}x but was {:.2}x \
                         (efficiency {:.2}) — where did the rest go?",
                        s, e
                    ),
                });
            }
        }
    }

    // Warm-up: a "repeat" run beating its predecessor.
    for w in runs.windows(2) {
        if w[1].label.contains("repeat") && w[1].completion < w[0].completion {
            lessons.push(Lesson {
                concept: Concept::Warmup,
                evidence: format!(
                    "the repeat took {:.1}s against {:.1}s the first time ({:.0}% better) — \
                     like a program running faster after caches warm and the JIT kicks in",
                    w[1].completion_secs(),
                    w[0].completion_secs(),
                    100.0 * speedup(w[0].completion_secs(), w[1].completion_secs()) - 100.0
                ),
            });
        }
    }

    // Contention: meaningful waiting anywhere.
    for r in runs {
        let wait = r.total_wait_secs();
        if wait > r.completion_secs() * 0.1 {
            let hottest = r
                .contention
                .iter()
                .max_by(|a, b| a.stats.total_wait.cmp(&b.stats.total_wait));
            let mut evidence = format!(
                "in \"{}\" the team spent {wait:.1}s waiting for markers",
                r.label
            );
            if let Some(h) = hottest {
                let _ = write!(
                    evidence,
                    "; the {} marker alone cost {} across {} contended grabs",
                    h.color, h.stats.total_wait, h.stats.contended_acquisitions
                );
            }
            lessons.push(Lesson {
                concept: Concept::Contention,
                evidence,
            });
            // Pipeline fill: late first strokes in the same run.
            let fill = r.pipeline_fill_secs();
            if fill > r.completion_secs() * 0.1 {
                lessons.push(Lesson {
                    concept: Concept::PipelineFill,
                    evidence: format!(
                        "in \"{}\" the last student only started coloring at {fill:.1}s — \
                         the pipeline takes time to fill",
                        r.label
                    ),
                });
            }
            break; // one contention lesson is enough for the discussion
        }
    }

    // Load imbalance: busy times spread widely in any multi-student run.
    for r in runs {
        if r.students.len() > 1 {
            let busy = r.busy_secs_per_student();
            let li = flagsim_metrics::load_imbalance(&busy);
            if li > 0.25 {
                lessons.push(Lesson {
                    concept: Concept::LoadImbalance,
                    evidence: format!(
                        "in \"{}\" the busiest student colored {li:.0}% longer than average — \
                         the task wasn't divided evenly",
                        r.label,
                        li = li * 100.0
                    ),
                });
                break;
            }
        }
    }

    lessons
}

/// Detect the hardware-differences lesson across *teams*: same scenario,
/// different kits, different times. `team_runs` pairs a team name with
/// its report for one scenario.
pub fn detect_hardware_lesson(team_runs: &[(String, RunReport)]) -> Option<Lesson> {
    if team_runs.len() < 2 {
        return None;
    }
    let fastest = team_runs
        .iter()
        .min_by(|a, b| a.1.completion.cmp(&b.1.completion))?;
    let slowest = team_runs
        .iter()
        .max_by(|a, b| a.1.completion.cmp(&b.1.completion))?;
    let ratio = slowest.1.completion_secs() / fastest.1.completion_secs();
    (ratio > 1.2).then(|| Lesson {
        concept: Concept::HardwareDifferences,
        evidence: format!(
            "on the same scenario, {} finished in {:.1}s and {} needed {:.1}s ({:.1}x) — \
             you cannot compare times across different hardware",
            fastest.0,
            fastest.1.completion_secs(),
            slowest.0,
            slowest.1.completion_secs(),
            ratio
        ),
    })
}

/// Render lessons as the discussion handout.
pub fn discussion_handout(lessons: &[Lesson]) -> String {
    let mut out = String::from("What did we just see?\n");
    for (i, l) in lessons.iter().enumerate() {
        let _ = writeln!(out, "{}. {} — {}", i + 1, l.concept.name(), l.evidence);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActivityConfig;
    use crate::scenario::Scenario;
    use crate::work::PreparedFlag;
    use crate::TeamKit;
    use flagsim_agents::{ImplementKind, StudentProfile};
    use flagsim_flags::library;
    use flagsim_grid::Color;

    fn session_runs() -> Vec<RunReport> {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let cfg = ActivityConfig::default();
        let mut team: Vec<StudentProfile> =
            (1..=4).map(|i| StudentProfile::new(format!("P{i}"))).collect();
        let mut runs = Vec::new();
        let s1 = Scenario::fig1(1);
        runs.push(s1.run(&flag, &mut team, &kit, &cfg).unwrap());
        let mut repeat = s1.run(&flag, &mut team, &kit, &cfg).unwrap();
        repeat.label = "scenario 1 (repeat)".into();
        runs.push(repeat);
        for n in 2..=4 {
            runs.push(Scenario::fig1(n).run(&flag, &mut team, &kit, &cfg).unwrap());
        }
        runs
    }

    fn has(lessons: &[Lesson], c: Concept) -> bool {
        lessons.iter().any(|l| l.concept == c)
    }

    #[test]
    fn full_session_surfaces_the_core_lessons() {
        let lessons = detect_lessons(&session_runs());
        assert!(has(&lessons, Concept::Speedup), "{lessons:#?}");
        assert!(has(&lessons, Concept::SublinearEfficiency));
        assert!(has(&lessons, Concept::Warmup));
        assert!(has(&lessons, Concept::Contention));
        assert!(has(&lessons, Concept::PipelineFill));
    }

    #[test]
    fn solo_run_teaches_nothing_parallel() {
        let runs = vec![session_runs().remove(0)];
        let lessons = detect_lessons(&runs);
        assert!(lessons.is_empty(), "{lessons:#?}");
    }

    #[test]
    fn handout_renders_numbered_lines() {
        let lessons = detect_lessons(&session_runs());
        let text = discussion_handout(&lessons);
        assert!(text.starts_with("What did we just see?"));
        assert!(text.contains("1. speedup"));
        assert!(text.contains("x")); // numbers present
    }

    #[test]
    fn hardware_lesson_across_teams() {
        let flag = PreparedFlag::new(&library::mauritius());
        let cfg = ActivityConfig::default();
        let mut runs = Vec::new();
        for (name, kind) in [
            ("Daubers", ImplementKind::BingoDauber),
            ("Crayons", ImplementKind::Crayon),
        ] {
            let kit = TeamKit::uniform(kind, &Color::MAURITIUS);
            let mut team = vec![StudentProfile::new("P1").without_warmup()];
            let r = Scenario::fig1(1).run(&flag, &mut team, &kit, &cfg).unwrap();
            runs.push((name.to_owned(), r));
        }
        let lesson = detect_hardware_lesson(&runs).expect("kits differ a lot");
        assert_eq!(lesson.concept, Concept::HardwareDifferences);
        assert!(lesson.evidence.contains("Daubers"));
        assert!(lesson.evidence.contains("Crayons"));
        // Identical kits → no lesson.
        let same = vec![runs[0].clone(), runs[0].clone()];
        assert!(detect_hardware_lesson(&same).is_none());
        assert!(detect_hardware_lesson(&runs[..1]).is_none());
    }

    #[test]
    fn empty_input() {
        assert!(detect_lessons(&[]).is_empty());
    }
}
