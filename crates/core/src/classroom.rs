//! Whole-class sessions: multiple teams, scenario after scenario, times on
//! the board.
//!
//! The paper's protocol: split the class into teams, hand out kits (often
//! deliberately *different* kits — §IV argues the resulting unfairness
//! usefully shows "the effect of different hardware"), run each scenario
//! simultaneously across teams, and after each one "the instructor
//! collects the completion time from each group, posting it publicly".

use crate::config::{ActivityConfig, TeamKit};
use crate::faults::FaultPlan;
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::work::PreparedFlag;
use flagsim_agents::{ImplementKind, StudentProfile};
use flagsim_flags::FlagSpec;
use std::fmt::Write as _;

/// One team: students plus their kit.
#[derive(Debug, Clone)]
pub struct Team {
    /// Team name ("Team 1").
    pub name: String,
    /// The students (warm-up experience persists across scenarios).
    pub students: Vec<StudentProfile>,
    /// Their drawing kit.
    pub kit: TeamKit,
}

/// One line on the board.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardEntry {
    /// Team name.
    pub team: String,
    /// Scenario name.
    pub scenario: String,
    /// Completion time in seconds.
    pub secs: f64,
}

/// A team whose run failed outright (bad kit, engine stall, …). The
/// session records it and the class moves on — one team's mishap must not
/// end the lesson.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionIncident {
    /// Team name.
    pub team: String,
    /// Scenario name.
    pub scenario: String,
    /// What went wrong.
    pub error: String,
}

/// A class session on one flag.
#[derive(Debug, Clone)]
pub struct ClassroomSession {
    flag: PreparedFlag,
    config: ActivityConfig,
    teams: Vec<Team>,
    board: Vec<BoardEntry>,
    incidents: Vec<SessionIncident>,
    runs: u64,
}

impl ClassroomSession {
    /// Start a session on `flag` with the given execution config.
    pub fn new(flag: &FlagSpec, config: ActivityConfig) -> Self {
        ClassroomSession {
            flag: PreparedFlag::new(flag),
            config,
            teams: Vec::new(),
            board: Vec::new(),
            incidents: Vec::new(),
            runs: 0,
        }
    }

    /// Add a team of `size` students, all using implements of `kind`. The
    /// kit covers every color the flag needs. Student skills vary slightly
    /// and deterministically (seeded by team index).
    pub fn add_team(&mut self, name: impl Into<String>, size: usize, kind: ImplementKind) {
        let name = name.into();
        let idx = self.teams.len() as u64;
        let students = (1..=size)
            .map(|i| {
                // Small deterministic skill spread, no RNG needed.
                let jitter = (((idx * 7 + i as u64 * 13) % 9) as f64 - 4.0) / 40.0;
                StudentProfile::new(format!("{name}-P{i}")).with_skill(1.0 + jitter)
            })
            .collect();
        let colors = self.flag.colors_needed(&self.config.skip_colors);
        self.teams.push(Team {
            name,
            students,
            kit: TeamKit::uniform(kind, &colors),
        });
    }

    /// Add a team of `size` students with an explicit kit — the §IV
    /// "different hardware" setup, or a deliberately faulty kit for a
    /// resilience drill.
    pub fn add_team_with_kit(&mut self, name: impl Into<String>, size: usize, kit: TeamKit) {
        let name = name.into();
        let idx = self.teams.len() as u64;
        let students = (1..=size)
            .map(|i| {
                let jitter = (((idx * 7 + i as u64 * 13) % 9) as f64 - 4.0) / 40.0;
                StudentProfile::new(format!("{name}-P{i}")).with_skill(1.0 + jitter)
            })
            .collect();
        self.teams.push(Team { name, students, kit });
    }

    /// The prepared flag.
    pub fn flag(&self) -> &PreparedFlag {
        &self.flag
    }

    /// The teams.
    pub fn teams(&self) -> &[Team] {
        &self.teams
    }

    /// Run one scenario across every team ("starting all the teams …
    /// simultaneously"), posting each completion time to the board.
    /// Returns the reports of the teams that finished, in team order; a
    /// team whose run fails becomes a [`SessionIncident`] and the session
    /// continues with the rest of the class.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<Vec<RunReport>, String> {
        self.run_scenario_with_faults(scenario, &FaultPlan::none())
    }

    /// [`ClassroomSession::run_scenario`] under an injected [`FaultPlan`]
    /// applied to every team — the whole-class fault drill.
    pub fn run_scenario_with_faults(
        &mut self,
        scenario: &Scenario,
        plan: &FaultPlan,
    ) -> Result<Vec<RunReport>, String> {
        let mut reports = Vec::with_capacity(self.teams.len());
        for team in &mut self.teams {
            self.runs += 1;
            let cfg = ActivityConfig {
                seed: self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(self.runs),
                ..self.config.clone()
            };
            match scenario.run_with_faults(&self.flag, &mut team.students, &team.kit, &cfg, plan)
            {
                Ok(report) => {
                    self.board.push(BoardEntry {
                        team: team.name.clone(),
                        scenario: scenario.name.clone(),
                        secs: report.completion_secs(),
                    });
                    reports.push(report);
                }
                Err(error) => {
                    self.incidents.push(SessionIncident {
                        team: team.name.clone(),
                        scenario: scenario.name.clone(),
                        error,
                    });
                }
            }
        }
        Ok(reports)
    }

    /// Run the full core activity: scenario 1 (optionally twice — the
    /// warm-up demonstration), then scenarios 2, 3 and 4. Returns all
    /// reports grouped by scenario run.
    pub fn run_core_activity(&mut self, repeat_first: bool) -> Result<Vec<Vec<RunReport>>, String> {
        let mut all = Vec::new();
        let s1 = Scenario::fig1(1);
        all.push(self.run_scenario(&s1)?);
        if repeat_first {
            let again = Scenario::new(
                "scenario 1 (repeat)",
                s1.strategy.clone(),
                s1.order,
            );
            all.push(self.run_scenario(&again)?);
        }
        for n in 2..=4 {
            all.push(self.run_scenario(&Scenario::fig1(n))?);
        }
        Ok(all)
    }

    /// The board so far.
    pub fn board(&self) -> &[BoardEntry] {
        &self.board
    }

    /// Teams whose runs failed, in the order the failures happened.
    pub fn incidents(&self) -> &[SessionIncident] {
        &self.incidents
    }

    /// Export the board as CSV (`team,scenario,seconds`).
    pub fn board_csv(&self) -> String {
        let mut out = String::from("team,scenario,seconds\n");
        for e in &self.board {
            let _ = writeln!(out, "{},{},{:.3}", e.team, e.scenario, e.secs);
        }
        out
    }

    /// The board formatted as the instructor would write it: one row per
    /// scenario, one column per team.
    pub fn board_table(&self) -> String {
        let mut scenarios: Vec<&str> = Vec::new();
        for e in &self.board {
            if !scenarios.contains(&e.scenario.as_str()) {
                scenarios.push(&e.scenario);
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{:<44}", "scenario");
        for t in &self.teams {
            let _ = write!(out, "{:>12}", t.name);
        }
        out.push('\n');
        for sc in scenarios {
            let _ = write!(out, "{sc:<44}");
            for t in &self.teams {
                let entry = self
                    .board
                    .iter()
                    .find(|e| e.scenario == sc && e.team == t.name);
                match entry {
                    Some(e) => {
                        let _ = write!(out, "{:>11.1}s", e.secs);
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_flags::library;

    fn session() -> ClassroomSession {
        let mut s = ClassroomSession::new(&library::mauritius(), ActivityConfig::default());
        s.add_team("Team 1", 5, ImplementKind::BingoDauber);
        s.add_team("Team 2", 5, ImplementKind::ThickMarker);
        s.add_team("Team 3", 5, ImplementKind::ThinMarker);
        s
    }

    #[test]
    fn full_core_activity_posts_times() {
        let mut s = session();
        let all = s.run_core_activity(true).unwrap();
        // 5 scenario runs × 3 teams.
        assert_eq!(all.len(), 5);
        assert_eq!(s.board().len(), 15);
        let table = s.board_table();
        assert!(table.contains("scenario 1 (repeat)"));
        assert!(table.contains("Team 3"));
    }

    #[test]
    fn repeat_of_scenario_1_is_faster_for_every_team() {
        let mut s = session();
        let all = s.run_core_activity(true).unwrap();
        for (first, second) in all[0].iter().zip(&all[1]) {
            assert!(
                second.completion_secs() < first.completion_secs(),
                "warm-up: {} then {}",
                first.completion_secs(),
                second.completion_secs()
            );
        }
    }

    #[test]
    fn implement_quality_orders_team_times() {
        let mut s = session();
        let all = s.run_core_activity(false).unwrap();
        // Scenario 1: dauber team beats thick marker team beats thin.
        let times: Vec<f64> = all[0].iter().map(RunReport::completion_secs).collect();
        assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    }

    #[test]
    fn times_fall_through_scenario_3_then_rise_in_4() {
        let mut s = session();
        let all = s.run_core_activity(false).unwrap();
        for team_idx in 0..3 {
            let t: Vec<f64> = all.iter().map(|r| r[team_idx].completion_secs()).collect();
            assert!(t[1] < t[0], "scenario 2 faster than 1: {t:?}");
            assert!(t[2] < t[1], "scenario 3 faster than 2: {t:?}");
            assert!(t[3] > t[2], "scenario 4 slower than 3 (contention): {t:?}");
        }
    }

    #[test]
    fn board_csv_exports_every_entry() {
        let mut s = session();
        s.run_core_activity(false).unwrap();
        let csv = s.board_csv();
        assert!(csv.starts_with("team,scenario,seconds\n"));
        assert_eq!(csv.lines().count(), 1 + 12); // header + 4 scenarios × 3 teams
        assert!(csv.contains("Team 1,scenario 1: one student,"));
    }

    #[test]
    fn one_dead_kit_does_not_end_the_lesson() {
        use flagsim_agents::{Condition, Implement};
        use flagsim_grid::Color;
        let mut s = ClassroomSession::new(&library::mauritius(), ActivityConfig::default());
        s.add_team("Team 1", 5, ImplementKind::ThickMarker);
        let dead_kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
            .with_implement(
                Color::Yellow,
                Implement {
                    kind: ImplementKind::ThickMarker,
                    condition: Condition::Dead,
                },
            );
        s.add_team_with_kit("Team 2", 5, dead_kit);
        s.add_team("Team 3", 5, ImplementKind::ThickMarker);
        let reports = s.run_scenario(&Scenario::fig1(1)).unwrap();
        // Teams 1 and 3 finished; Team 2's dead marker became an incident.
        assert_eq!(reports.len(), 2);
        assert_eq!(s.board().len(), 2);
        assert_eq!(s.incidents().len(), 1);
        assert_eq!(s.incidents()[0].team, "Team 2");
        assert!(s.incidents()[0].error.contains("dead"));
        // The session keeps working afterwards.
        let again = s.run_scenario(&Scenario::fig1(3)).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(s.incidents().len(), 2);
    }

    #[test]
    fn whole_class_fault_drill_attaches_resilience() {
        use crate::faults::FaultPlan;
        use flagsim_grid::Color;
        let mut s = session();
        let plan = FaultPlan::new("drill").break_implement(Color::Red, 10.0);
        let reports = s.run_scenario_with_faults(&Scenario::fig1(3), &plan).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.correct);
            assert!(r.resilience.is_some());
        }
        assert!(s.incidents().is_empty());
    }

    #[test]
    fn deterministic_sessions() {
        let run = || {
            let mut s = session();
            let all = s.run_core_activity(true).unwrap();
            all.iter()
                .flat_map(|r| r.iter().map(RunReport::completion_secs))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
