//! Causal run explanation: orchestrates a deterministic run, the
//! `desim::causal` analysis, the taskgraph cross-check, and the
//! zero-warmup counterfactual, then renders the result as text (ANSI
//! gantt + blame table + what-if lines) or machine-readable JSON.
//!
//! The observed run goes through [`crate::sweep::SweepRunner`] with one
//! repetition, so `--jobs` is accepted for symmetry with `sweep` but can
//! never change the numbers: repetition 0 derives the same seed on any
//! job count, which is exactly what makes `flagsim explain --format
//! json` byte-identical across `--jobs` (a property test pins this).

use crate::config::{ActivityConfig, TeamKit};
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::sweep::SweepRunner;
use crate::work::PreparedFlag;
use flagsim_desim::causal::{self, CausalAnalysis, CriticalKind};
use flagsim_desim::{SegmentKind, SimDuration};
use flagsim_taskgraph::{analysis, TaskGraph};
use flagsim_telemetry::json::json_string;
use std::fmt::Write as _;

/// A fully analyzed run: the report, its causal analysis, the taskgraph
/// cross-check, and the zero-warmup counterfactual.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The observed run.
    pub report: RunReport,
    /// Causal analysis of the observed trace.
    pub analysis: CausalAnalysis,
    /// Makespan of a deterministic re-run with warm-up disabled — the
    /// "what if everyone was already warmed up" counterfactual.
    pub zero_warmup: SimDuration,
    /// Total work of the trace-derived task graph (sum of compute
    /// segments; equals the trace's total busy time).
    pub graph_work: SimDuration,
    /// Span of the trace-derived task graph: the longest per-process
    /// compute chain, i.e. the infinite-resource floor.
    pub graph_span: SimDuration,
    /// `taskgraph::analysis::makespan_lower_bound` at the observed team
    /// size: `max(⌈work/p⌉, span)`.
    pub graph_lower_bound: SimDuration,
    /// Seed the run used.
    pub seed: u64,
}

impl Explanation {
    /// The acceptance sandwich: the infinite-implement what-if bound
    /// must sit between the task-graph span (nothing can beat the
    /// longest compute chain) and the observed makespan (removing
    /// contention never slows a run down).
    pub fn bounds_hold(&self) -> bool {
        let w = &self.analysis.whatif;
        self.graph_span <= w.no_contention && w.no_contention <= w.observed
    }

    /// Render the explanation as human-facing text: summary, ANSI gantt
    /// with the critical path highlighted, the executed critical path,
    /// the blame table, and the what-if decomposition.
    pub fn render_text(&self, width: usize) -> String {
        let trace = &self.report.trace;
        let a = &self.analysis;
        let mut out = format!(
            "{} on {} — seed {}\n{}\n\n",
            self.report.label,
            self.report.flag_name,
            self.seed,
            trace.summary(),
        );
        out.push_str(&causal::critical_gantt(trace, a, width));
        out.push('\n');

        let _ = writeln!(
            out,
            "executed critical path ({} step(s)):",
            a.critical_path.len()
        );
        for seg in &a.critical_path {
            let who = trace
                .procs
                .get(seg.proc.index())
                .map(|p| p.name.as_str())
                .unwrap_or("?");
            let what = match seg.kind {
                CriticalKind::Compute => "compute".to_owned(),
                CriticalKind::Contention(r) => format!(
                    "contention on {}",
                    trace
                        .resources
                        .get(r.index())
                        .map(|res| res.label.as_str())
                        .unwrap_or("?")
                ),
                CriticalKind::Dependency => "dependency/idle wait".to_owned(),
            };
            let _ = writeln!(
                out,
                "  {:>8} .. {:>8}  {:<6} {}",
                seg.start.to_string(),
                seg.end.to_string(),
                who,
                what
            );
        }
        let (compute, contention, dependency) = a.critical_split();
        let _ = writeln!(
            out,
            "critical split: compute {compute} | contention {contention} | dependency {dependency}\n"
        );

        out.push_str("blame:\n");
        out.push_str(&causal::blame_table_text(trace, a));
        out.push('\n');

        let w = &a.whatif;
        let _ = writeln!(out, "what-if:");
        let _ = writeln!(out, "  observed makespan        {}", w.observed);
        let _ = writeln!(
            out,
            "  infinite implements      {}  (contention costs {})",
            w.no_contention, w.contention_cost
        );
        let _ = writeln!(
            out,
            "  zero warmup              {}  ({} vs observed)",
            self.zero_warmup,
            if self.zero_warmup <= w.observed {
                format!(
                    "saves {}",
                    SimDuration(w.observed.millis().saturating_sub(self.zero_warmup.millis()))
                )
            } else {
                format!(
                    "costs {}",
                    SimDuration(self.zero_warmup.millis().saturating_sub(w.observed.millis()))
                )
            }
        );
        let _ = writeln!(
            out,
            "  perfect balance          {}  (imbalance costs {})",
            w.ideal_balance, w.imbalance_cost
        );
        let _ = writeln!(
            out,
            "  cross-check: graph span {} <= infinite-implements {} <= observed {}  [{}]",
            self.graph_span,
            w.no_contention,
            w.observed,
            if self.bounds_hold() { "ok" } else { "VIOLATED" }
        );
        let _ = writeln!(
            out,
            "  graph lower bound (p={}): {}",
            self.report.students.len().max(1),
            self.graph_lower_bound
        );
        out
    }

    /// Render the explanation as JSON. All durations are integer
    /// milliseconds, so the output is deterministic byte-for-byte for a
    /// given seed (no float formatting in sight).
    pub fn to_json(&self) -> String {
        let trace = &self.report.trace;
        let a = &self.analysis;
        let pname = |idx: usize| {
            trace
                .procs
                .get(idx)
                .map(|p| p.name.as_str())
                .unwrap_or("?")
        };
        let rname = |idx: usize| {
            trace
                .resources
                .get(idx)
                .map(|r| r.label.as_str())
                .unwrap_or("?")
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.report.label));
        let _ = writeln!(out, "  \"flag\": {},", json_string(&self.report.flag_name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"correct\": {},", self.report.correct);
        let _ = writeln!(out, "  \"makespan_ms\": {},", trace.makespan().millis());
        let _ = writeln!(out, "  \"work_ms\": {},", trace.total_busy().millis());
        let _ = writeln!(out, "  \"waiting_ms\": {},", trace.total_waiting().millis());
        let _ = writeln!(out, "  \"idle_ms\": {},", trace.total_idle().millis());

        out.push_str("  \"critical_path\": [\n");
        for (i, seg) in a.critical_path.iter().enumerate() {
            let (kind, resource) = match seg.kind {
                CriticalKind::Compute => ("compute", None),
                CriticalKind::Contention(r) => ("contention", Some(rname(r.index()))),
                CriticalKind::Dependency => ("dependency", None),
            };
            let _ = write!(
                out,
                "    {{\"proc\": {}, \"start_ms\": {}, \"end_ms\": {}, \"kind\": {}{}}}",
                json_string(pname(seg.proc.index())),
                seg.start.millis(),
                seg.end.millis(),
                json_string(kind),
                match resource {
                    Some(r) => format!(", \"resource\": {}", json_string(r)),
                    None => String::new(),
                }
            );
            out.push_str(if i + 1 < a.critical_path.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");

        let (compute, contention, dependency) = a.critical_split();
        let _ = writeln!(
            out,
            "  \"critical_split\": {{\"compute_ms\": {}, \"contention_ms\": {}, \"dependency_ms\": {}}},",
            compute.millis(),
            contention.millis(),
            dependency.millis()
        );

        out.push_str("  \"blame\": [\n");
        for (i, b) in a.blame.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"resource\": {}, \"total_wait_ms\": {}, \"holders\": [",
                json_string(rname(b.resource.index())),
                b.total.millis()
            );
            for (j, h) in b.holders.iter().enumerate() {
                let victims: Vec<String> = h
                    .victims
                    .iter()
                    .map(|&v| json_string(pname(v.index())))
                    .collect();
                let _ = write!(
                    out,
                    "{}{{\"holder\": {}, \"wait_ms\": {}, \"victims\": [{}]}}",
                    if j > 0 { ", " } else { "" },
                    json_string(pname(h.holder.index())),
                    h.wait.millis(),
                    victims.join(", ")
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 < a.blame.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");

        let w = &a.whatif;
        let _ = writeln!(
            out,
            "  \"whatif\": {{\"observed_ms\": {}, \"no_contention_ms\": {}, \"zero_warmup_ms\": {}, \
             \"ideal_balance_ms\": {}, \"contention_cost_ms\": {}, \"imbalance_cost_ms\": {}}},",
            w.observed.millis(),
            w.no_contention.millis(),
            self.zero_warmup.millis(),
            w.ideal_balance.millis(),
            w.contention_cost.millis(),
            w.imbalance_cost.millis()
        );
        let _ = writeln!(
            out,
            "  \"crosscheck\": {{\"graph_work_ms\": {}, \"graph_span_ms\": {}, \
             \"graph_lower_bound_ms\": {}, \"bounds_hold\": {}}}",
            self.graph_work.millis(),
            self.graph_span.millis(),
            self.graph_lower_bound.millis(),
            self.bounds_hold()
        );
        out.push_str("}\n");
        out
    }
}

/// Build a task graph from the executed trace: each process's compute
/// segments become a dependency chain (what that student did, in order).
/// Hand-off waits are deliberately *not* edges — with infinite implement
/// copies they vanish, so the graph's span is the infinite-resource
/// floor the what-if bound must respect.
pub fn trace_taskgraph(analysis: &CausalAnalysis, report: &RunReport) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (pi, segs) in analysis.timelines.iter().enumerate() {
        let name = report
            .trace
            .procs
            .get(pi)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| format!("P{}", pi + 1));
        let mut prev = None;
        let mut chunk = 0usize;
        for seg in segs {
            if seg.kind != SegmentKind::Compute {
                continue;
            }
            let id = g.add_task(format!("{name}#{chunk}"), seg.duration().millis());
            if let Some(p) = prev {
                g.add_dep(p, id).expect("per-process chains are acyclic");
            }
            prev = Some(id);
            chunk += 1;
        }
    }
    g
}

/// Run `scenario` once, deterministically, and explain it. `jobs` is
/// plumbed into the sweep runner for interface symmetry; with a single
/// repetition it cannot change the outcome. The observed run keeps the
/// warm-up effect (matching `flagsim run`); the zero-warmup
/// counterfactual re-runs the identical configuration with warmed-up
/// students.
pub fn explain_scenario(
    scenario: &Scenario,
    flag: &PreparedFlag,
    kit: &TeamKit,
    config: &ActivityConfig,
    team_size: usize,
    jobs: usize,
) -> Result<Explanation, String> {
    let run_once = |warmup: bool| -> Result<RunReport, String> {
        let mut result = SweepRunner::new(scenario, flag, kit, config)
            .team_size(team_size)
            .warmup(warmup)
            .reps(1)
            .jobs(jobs)
            .run()
            .map_err(|e| e.to_string())?;
        result
            .reports
            .pop()
            .ok_or_else(|| "run produced no report".to_owned())
    };
    let report = run_once(true)?;
    let zero_warmup = run_once(false)?.completion;
    Ok(explain_report(report, zero_warmup, config.seed))
}

/// Explain an already-obtained run report (the non-orchestrating core of
/// [`explain_scenario`], usable on any report you have in hand).
pub fn explain_report(report: RunReport, zero_warmup: SimDuration, seed: u64) -> Explanation {
    let analysis = causal::analyze(&report.trace);
    let g = trace_taskgraph(&analysis, &report);
    let p = report.students.len().max(1);
    let graph_work = SimDuration(analysis::work(&g));
    let graph_span = SimDuration(analysis::span(&g));
    let graph_lower_bound = SimDuration(analysis::makespan_lower_bound(&g, p));
    Explanation {
        report,
        analysis,
        zero_warmup,
        graph_work,
        graph_span,
        graph_lower_bound,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_flags::library;

    fn explain_fig(n: u8, seed: u64) -> Explanation {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(seed);
        let scenario = Scenario::fig1(n);
        let team = scenario.team_size(&flag, &cfg);
        explain_scenario(&scenario, &flag, &kit, &cfg, team, 1).expect("scenario runs")
    }

    #[test]
    fn bounds_hold_on_all_fig1_scenarios() {
        for n in 1..=4 {
            let e = explain_fig(n, 7);
            assert!(e.bounds_hold(), "scenario {n}: {:?}", e.analysis.whatif);
            // Work accounting agrees between trace and graph.
            assert_eq!(e.graph_work, e.report.trace.total_busy(), "scenario {n}");
        }
    }

    #[test]
    fn scenario4_blames_the_contended_marker() {
        let e = explain_fig(4, 7);
        assert!(!e.analysis.blame.is_empty(), "vertical slices contend");
        assert_eq!(
            e.analysis.blame_total(),
            e.report.trace.total_waiting(),
            "blame accounts for every waited millisecond"
        );
        let text = e.render_text(60);
        assert!(text.contains("executed critical path"), "{text}");
        assert!(text.contains("blame:"), "{text}");
        assert!(text.contains("what-if:"), "{text}");
        assert!(text.contains("[ok]"), "{text}");
    }

    #[test]
    fn json_is_valid_and_job_count_invariant() {
        let flag = PreparedFlag::new(&library::mauritius());
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &flag.colors_needed(&[]));
        let cfg = ActivityConfig::default().with_seed(11);
        let scenario = Scenario::fig1(4);
        let team = scenario.team_size(&flag, &cfg);
        let a = explain_scenario(&scenario, &flag, &kit, &cfg, team, 1)
            .unwrap()
            .to_json();
        let b = explain_scenario(&scenario, &flag, &kit, &cfg, team, 4)
            .unwrap()
            .to_json();
        assert_eq!(a, b, "jobs must not change the explanation");
        let v = flagsim_telemetry::json::parse(&a).expect("valid json");
        assert!(v.get("makespan_ms").and_then(|m| m.as_f64()).unwrap() > 0.0);
        assert!(!v.get("critical_path").and_then(|c| c.as_array()).unwrap().is_empty());
    }

    #[test]
    fn zero_warmup_counterfactual_is_no_slower() {
        // Warm-up only ever slows early cells down, so removing it can
        // only help (same seed, same cost draws otherwise).
        let e = explain_fig(3, 5);
        assert!(e.zero_warmup <= e.analysis.whatif.observed);
    }
}
