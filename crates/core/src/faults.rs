//! Fault injection and recovery — the classroom drills nobody plans for.
//!
//! A real run of the activity survives mishaps: a crayon snaps, a marker
//! dries out, a student is called to the office, someone shows up late,
//! a hand-off is fumbled and the marker rolls under a desk, the bell
//! rings early. This module makes those mishaps *declarative*: a
//! [`FaultPlan`] lists timed [`FaultEvent`]s, a [`RecoveryPolicy`] says
//! how the team reacts, and every faulted run attaches a
//! [`ResilienceReport`] to its [`RunReport`](crate::report::RunReport)
//! recording what was injected, what actually bit, what recovery did,
//! and how much time it cost.
//!
//! Plans are plain data (build them with the fluent constructors, parse
//! them from the CLI mini-DSL with [`FaultPlan::parse`], or draw a random
//! one from a seed with [`FaultPlan::random`]) and are injected by
//! [`run_activity_with_faults`](crate::run::run_activity_with_faults).

use flagsim_grid::Color;
use std::fmt;
use std::fmt::Write as _;

/// Default seconds to fetch a spare implement when one fails mid-run.
pub const DEFAULT_REPLACEMENT_DELAY_SECS: f64 = 12.0;

/// One declarative mishap, scheduled in simulation seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The (single) implement of `color` snaps at `at_secs`; the next
    /// student to use it discovers the damage.
    ImplementBreaks {
        /// Which color's implement breaks.
        color: Color,
        /// When it breaks, in simulation seconds.
        at_secs: f64,
    },
    /// The implement of `color` dries out at `at_secs` — same effect as a
    /// break, different story for the debrief.
    ImplementDriesOut {
        /// Which color's implement dries out.
        color: Color,
        /// When it dries out, in simulation seconds.
        at_secs: f64,
    },
    /// Student `student` (0-based index into the coloring team) leaves at
    /// `at_secs`. They finish the cell under their hand, put any held
    /// implement back, and are gone; their remaining cells are orphaned.
    Dropout {
        /// 0-based index of the departing student.
        student: usize,
        /// When they leave, in simulation seconds.
        at_secs: f64,
    },
    /// Student `student` only arrives at `at_secs` instead of at the
    /// start — their whole work list waits for them.
    LateArrival {
        /// 0-based index of the late student.
        student: usize,
        /// When they arrive, in simulation seconds.
        at_secs: f64,
    },
    /// Every hand-off of `color`'s implement is fumbled — dropped, chased,
    /// picked back up — costing `extra_secs` on top of the normal hand-off
    /// latency.
    HandoffFumble {
        /// Which color's implement is butterfingered.
        color: Color,
        /// Extra seconds per hand-off.
        extra_secs: f64,
    },
    /// The class bell rings at `at_secs`: whatever is unfinished is lost
    /// (combines with any configured deadline — the earlier one wins).
    DeadlineBell {
        /// When the bell rings, in simulation seconds.
        at_secs: f64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::ImplementBreaks { color, at_secs } => {
                write!(f, "the {color} implement breaks at {at_secs:.1}s")
            }
            FaultEvent::ImplementDriesOut { color, at_secs } => {
                write!(f, "the {color} implement dries out at {at_secs:.1}s")
            }
            FaultEvent::Dropout { student, at_secs } => {
                write!(f, "student #{} drops out at {at_secs:.1}s", student + 1)
            }
            FaultEvent::LateArrival { student, at_secs } => {
                write!(f, "student #{} arrives {at_secs:.1}s late", student + 1)
            }
            FaultEvent::HandoffFumble { color, extra_secs } => {
                write!(f, "every {color} hand-off fumbles (+{extra_secs:.1}s)")
            }
            FaultEvent::DeadlineBell { at_secs } => {
                write!(f, "the bell rings at {at_secs:.1}s")
            }
        }
    }
}

/// How the team reacts when a fault bites.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryPolicy {
    /// Survivors absorb orphaned work as they free up, and failed
    /// implements are swapped for spares after the default delay
    /// ([`DEFAULT_REPLACEMENT_DELAY_SECS`]).
    #[default]
    Rebalance,
    /// Like [`RecoveryPolicy::Rebalance`], but the spare-swap delay is
    /// explicit — model a spare box across the room.
    SpareSwap {
        /// Seconds to fetch and unwrap the spare.
        replacement_delay_secs: f64,
    },
    /// Stop the whole run at the first fault and report what happened —
    /// the team that gives up and calls the instructor over.
    AbortAndReport,
}

impl RecoveryPolicy {
    /// Seconds a spare swap costs under this policy, or `None` if the
    /// policy aborts instead of recovering.
    pub fn spare_delay_secs(&self) -> Option<f64> {
        match self {
            RecoveryPolicy::Rebalance => Some(DEFAULT_REPLACEMENT_DELAY_SECS),
            RecoveryPolicy::SpareSwap {
                replacement_delay_secs,
            } => Some(*replacement_delay_secs),
            RecoveryPolicy::AbortAndReport => None,
        }
    }

    /// True when the first fault ends the run.
    pub fn aborts(&self) -> bool {
        matches!(self, RecoveryPolicy::AbortAndReport)
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::Rebalance => write!(f, "rebalance survivors"),
            RecoveryPolicy::SpareSwap {
                replacement_delay_secs,
            } => write!(f, "spare swap ({replacement_delay_secs:.1}s)"),
            RecoveryPolicy::AbortAndReport => write!(f, "abort and report"),
        }
    }
}

/// A named, declarative set of faults plus the recovery policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Label for reports ("marker drill week 2").
    pub label: String,
    /// The scheduled mishaps.
    pub events: Vec<FaultEvent>,
    /// How the team reacts.
    pub policy: RecoveryPolicy,
}

impl FaultPlan {
    /// The empty plan: nothing goes wrong.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A fresh, empty plan with a label.
    pub fn new(label: impl Into<String>) -> Self {
        FaultPlan {
            label: label.into(),
            ..FaultPlan::default()
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Set the recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Add: the `color` implement breaks at `at_secs`.
    pub fn break_implement(mut self, color: Color, at_secs: f64) -> Self {
        self.events.push(FaultEvent::ImplementBreaks { color, at_secs });
        self
    }

    /// Add: the `color` implement dries out at `at_secs`.
    pub fn dry_out(mut self, color: Color, at_secs: f64) -> Self {
        self.events
            .push(FaultEvent::ImplementDriesOut { color, at_secs });
        self
    }

    /// Add: student `student` (0-based) drops out at `at_secs`.
    pub fn dropout(mut self, student: usize, at_secs: f64) -> Self {
        self.events.push(FaultEvent::Dropout { student, at_secs });
        self
    }

    /// Add: student `student` (0-based) arrives at `at_secs`.
    pub fn late_arrival(mut self, student: usize, at_secs: f64) -> Self {
        self.events.push(FaultEvent::LateArrival { student, at_secs });
        self
    }

    /// Add: every `color` hand-off costs `extra_secs` more.
    pub fn fumble(mut self, color: Color, extra_secs: f64) -> Self {
        self.events
            .push(FaultEvent::HandoffFumble { color, extra_secs });
        self
    }

    /// Add: the bell rings at `at_secs`.
    pub fn bell(mut self, at_secs: f64) -> Self {
        self.events.push(FaultEvent::DeadlineBell { at_secs });
        self
    }

    /// Check the plan against a team of `team_size` coloring students:
    /// student indices must be in range, every time finite and
    /// non-negative.
    pub fn validate(&self, team_size: usize) -> Result<(), String> {
        for e in &self.events {
            let (t, who) = match e {
                FaultEvent::ImplementBreaks { at_secs, .. }
                | FaultEvent::ImplementDriesOut { at_secs, .. }
                | FaultEvent::DeadlineBell { at_secs } => (*at_secs, None),
                FaultEvent::Dropout { student, at_secs }
                | FaultEvent::LateArrival { student, at_secs } => (*at_secs, Some(*student)),
                FaultEvent::HandoffFumble { extra_secs, .. } => (*extra_secs, None),
            };
            if !t.is_finite() || t < 0.0 {
                return Err(format!("fault plan: bad time in \"{e}\""));
            }
            if let Some(s) = who {
                if s >= team_size {
                    return Err(format!(
                        "fault plan: \"{e}\" names student #{} but the team has {team_size}",
                        s + 1
                    ));
                }
            }
            if let FaultEvent::DeadlineBell { at_secs } = e {
                if *at_secs <= 0.0 {
                    return Err(format!("fault plan: bell at {at_secs}s must be after the start"));
                }
            }
        }
        Ok(())
    }

    /// A seeded random plan: one to three events drawn from the fault
    /// vocabulary, targeting the given team and colors. Same seed, same
    /// plan — sweeps and property tests stay reproducible.
    pub fn random(seed: u64, team_size: usize, colors: &[Color]) -> FaultPlan {
        // splitmix64 — tiny, deterministic, good enough for plan picking.
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            let mut z = s;
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new(format!("random plan (seed {seed})"));
        let n = 1 + (next() % 3) as usize;
        for _ in 0..n {
            let t = 5.0 + (next() % 120) as f64;
            let color = if colors.is_empty() {
                Color::Red
            } else {
                colors[(next() as usize) % colors.len()]
            };
            let student = if team_size == 0 {
                0
            } else {
                (next() as usize) % team_size
            };
            plan = match next() % 6 {
                0 => plan.break_implement(color, t),
                1 => plan.dry_out(color, t),
                2 if team_size > 1 => plan.dropout(student, t),
                3 => plan.late_arrival(student, t.min(30.0)),
                4 => plan.fumble(color, 1.0 + (next() % 5) as f64),
                _ => plan.bell(60.0 + t),
            };
        }
        plan
    }

    /// Parse the CLI mini-DSL: comma-separated events, e.g.
    /// `break:red@30,dropout:2@12,fumble:blue+3,bell@120`.
    ///
    /// Forms: `break:<color>@<t>`, `dryout:<color>@<t>`,
    /// `dropout:<i>@<t>`, `late:<i>@<t>` (1-based student numbers),
    /// `fumble:<color>+<secs>`, `bell@<t>`.
    pub fn parse(spec: &str, label: impl Into<String>) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(label);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            plan = plan.parse_one(part)?;
        }
        if plan.is_empty() {
            return Err(format!("fault plan {spec:?} contains no events"));
        }
        Ok(plan)
    }

    fn parse_one(self, part: &str) -> Result<FaultPlan, String> {
        let secs = |s: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|_| format!("bad seconds {s:?} in fault {part:?}"))
        };
        let student = |s: &str| -> Result<usize, String> {
            match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n - 1),
                _ => Err(format!("bad student number {s:?} in fault {part:?} (1-based)")),
            }
        };
        if let Some(t) = part.strip_prefix("bell@") {
            return Ok(self.bell(secs(t)?));
        }
        let Some((kind, rest)) = part.split_once(':') else {
            return Err(format!(
                "bad fault {part:?} (want break:, dryout:, dropout:, late:, fumble:, bell@)"
            ));
        };
        match kind {
            "break" | "dryout" => {
                let Some((color, t)) = rest.split_once('@') else {
                    return Err(format!("bad fault {part:?}, want {kind}:<color>@<t>"));
                };
                let color = parse_color(color)?;
                let t = secs(t)?;
                Ok(if kind == "break" {
                    self.break_implement(color, t)
                } else {
                    self.dry_out(color, t)
                })
            }
            "dropout" | "late" => {
                let Some((who, t)) = rest.split_once('@') else {
                    return Err(format!("bad fault {part:?}, want {kind}:<student>@<t>"));
                };
                let who = student(who)?;
                let t = secs(t)?;
                Ok(if kind == "dropout" {
                    self.dropout(who, t)
                } else {
                    self.late_arrival(who, t)
                })
            }
            "fumble" => {
                let Some((color, extra)) = rest.split_once('+') else {
                    return Err(format!("bad fault {part:?}, want fumble:<color>+<secs>"));
                };
                Ok(self.fumble(parse_color(color)?, secs(extra)?))
            }
            other => Err(format!("unknown fault kind {other:?} in {part:?}")),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} event(s), {})", self.label, self.events.len(), self.policy)
    }
}

/// Parse a color name used in the fault DSL.
pub fn parse_color(s: &str) -> Result<Color, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "red" => Color::Red,
        "blue" => Color::Blue,
        "yellow" => Color::Yellow,
        "green" => Color::Green,
        "white" => Color::White,
        "black" => Color::Black,
        "orange" => Color::Orange,
        other => return Err(format!("unknown color {other:?}")),
    })
}

/// A fault that actually bit during the run (a planned fault targeting an
/// unused color or an already-finished student never becomes an incident).
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// When it bit, in simulation seconds.
    pub at_secs: f64,
    /// What happened, human-readable.
    pub what: String,
}

/// One thing recovery did in response to an incident.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// A failed implement was swapped for a spare.
    SpareSwapped {
        /// The implement's color.
        color: Color,
        /// When the swap happened, in simulation seconds.
        at_secs: f64,
        /// Seconds the swap cost.
        delay_secs: f64,
    },
    /// A dropout's remaining cells were put back on the table for
    /// survivors to pick up.
    WorkRebalanced {
        /// 0-based index of the student who left.
        student: usize,
        /// Cells orphaned.
        cells: usize,
        /// When, in simulation seconds.
        at_secs: f64,
    },
    /// A survivor picked up orphaned cells after finishing their own.
    CellsAdopted {
        /// 0-based index of the adopting student.
        student: usize,
        /// Cells they took over.
        cells: usize,
    },
    /// The policy aborted the run at the first fault.
    Aborted {
        /// When, in simulation seconds.
        at_secs: f64,
    },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::SpareSwapped {
                color,
                at_secs,
                delay_secs,
            } => write!(
                f,
                "swapped in a spare {color} implement at {at_secs:.1}s ({delay_secs:.1}s lost)"
            ),
            RecoveryAction::WorkRebalanced {
                student,
                cells,
                at_secs,
            } => write!(
                f,
                "rebalanced {cells} cell(s) from student #{} at {at_secs:.1}s",
                student + 1
            ),
            RecoveryAction::CellsAdopted { student, cells } => {
                write!(f, "student #{} adopted {cells} orphaned cell(s)", student + 1)
            }
            RecoveryAction::Aborted { at_secs } => {
                write!(f, "aborted the run at {at_secs:.1}s")
            }
        }
    }
}

/// What a faulted run went through: the plan, the incidents that actually
/// happened, the recovery actions taken, and the recovery overhead paid.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Label of the injected plan.
    pub plan_label: String,
    /// The policy that was in force.
    pub policy: RecoveryPolicy,
    /// Events the plan scheduled (whether or not they bit).
    pub faults_planned: usize,
    /// Faults that actually bit, in time order.
    pub incidents: Vec<Incident>,
    /// What recovery did about them.
    pub actions: Vec<RecoveryAction>,
    /// Seconds of pure recovery overhead (spare fetches, fumble chases) —
    /// always non-negative; time lost to *reduced parallelism* shows up in
    /// the completion time instead.
    pub time_lost_secs: f64,
    /// True when the policy aborted the run.
    pub aborted: bool,
}

impl ResilienceReport {
    /// The machine-relevant one-glance part: the plan header and the
    /// recovery-overhead total. This is what belongs on stdout.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "resilience: plan \"{}\" ({} fault(s) planned, policy: {})\n",
            self.plan_label, self.faults_planned, self.policy
        );
        let _ = writeln!(
            out,
            "  recovery overhead: {:.1}s{}",
            self.time_lost_secs,
            if self.aborted { " (run aborted)" } else { "" }
        );
        out
    }

    /// The blow-by-blow incident log and recovery actions — diagnostic
    /// narration, which the CLI routes to stderr.
    pub fn narrative(&self) -> String {
        let mut out = String::new();
        if self.incidents.is_empty() {
            out.push_str("  no fault actually bit\n");
        }
        for i in &self.incidents {
            let _ = writeln!(out, "  [{:>6.1}s] {}", i.at_secs, i.what);
        }
        for a in &self.actions {
            let _ = writeln!(out, "  -> {a}");
        }
        out
    }

    /// Multi-line, human-readable rendering for the debrief:
    /// [`summary`](Self::summary) header, then the
    /// [`narrative`](Self::narrative), then the overhead footer.
    pub fn render(&self) -> String {
        let mut out = format!(
            "resilience: plan \"{}\" ({} fault(s) planned, policy: {})\n",
            self.plan_label, self.faults_planned, self.policy
        );
        out.push_str(&self.narrative());
        let _ = writeln!(
            out,
            "  recovery overhead: {:.1}s{}",
            self.time_lost_secs,
            if self.aborted { " (run aborted)" } else { "" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::new("drill")
            .break_implement(Color::Red, 30.0)
            .dropout(1, 12.0)
            .fumble(Color::Blue, 3.0)
            .bell(120.0)
            .with_policy(RecoveryPolicy::SpareSwap {
                replacement_delay_secs: 8.0,
            });
        assert_eq!(plan.events.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.policy.spare_delay_secs(), Some(8.0));
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_students_and_bad_times() {
        let plan = FaultPlan::new("bad").dropout(5, 10.0);
        assert!(plan.validate(4).unwrap_err().contains("student #6"));
        let plan = FaultPlan::new("bad").break_implement(Color::Red, -1.0);
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan::new("bad").bell(0.0);
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan::new("bad").late_arrival(0, f64::NAN);
        assert!(plan.validate(1).is_err());
    }

    #[test]
    fn dsl_round_trips_every_form() {
        let plan =
            FaultPlan::parse("break:red@30, dryout:green@45,dropout:2@12,late:1@5,fumble:blue+3,bell@120", "dsl")
                .unwrap();
        assert_eq!(plan.events.len(), 6);
        assert_eq!(
            plan.events[0],
            FaultEvent::ImplementBreaks {
                color: Color::Red,
                at_secs: 30.0
            }
        );
        assert_eq!(
            plan.events[2],
            FaultEvent::Dropout {
                student: 1,
                at_secs: 12.0
            }
        );
        assert_eq!(
            plan.events[3],
            FaultEvent::LateArrival {
                student: 0,
                at_secs: 5.0
            }
        );
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn dsl_rejects_nonsense() {
        assert!(FaultPlan::parse("", "x").is_err());
        assert!(FaultPlan::parse("explode:red@3", "x").is_err());
        assert!(FaultPlan::parse("break:mauve@3", "x").is_err());
        assert!(FaultPlan::parse("dropout:0@3", "x").is_err(), "students are 1-based");
        assert!(FaultPlan::parse("break:red@soon", "x").is_err());
        assert!(FaultPlan::parse("fumble:red@3", "x").is_err(), "fumble uses +");
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        let a = FaultPlan::random(7, 4, &Color::MAURITIUS);
        let b = FaultPlan::random(7, 4, &Color::MAURITIUS);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.events.len() <= 3);
        assert!(a.validate(4).is_ok());
        let c = FaultPlan::random(8, 4, &Color::MAURITIUS);
        assert_ne!(a, c, "different seeds should differ");
        // Degenerate inputs still produce valid plans.
        assert!(FaultPlan::random(3, 1, &[]).validate(1).is_ok());
    }

    #[test]
    fn resilience_report_renders_everything() {
        let r = ResilienceReport {
            plan_label: "drill".into(),
            policy: RecoveryPolicy::Rebalance,
            faults_planned: 2,
            incidents: vec![Incident {
                at_secs: 30.0,
                what: "the Red implement broke".into(),
            }],
            actions: vec![
                RecoveryAction::SpareSwapped {
                    color: Color::Red,
                    at_secs: 31.0,
                    delay_secs: 12.0,
                },
                RecoveryAction::CellsAdopted {
                    student: 2,
                    cells: 5,
                },
            ],
            time_lost_secs: 12.0,
            aborted: false,
        };
        let s = r.render();
        assert!(s.contains("drill"));
        assert!(s.contains("Red implement broke"));
        assert!(s.contains("spare"));
        assert!(s.contains("adopted 5"));
        assert!(s.contains("12.0s"));
    }

    #[test]
    fn event_display_is_descriptive() {
        assert!(FaultEvent::DeadlineBell { at_secs: 120.0 }
            .to_string()
            .contains("bell"));
        assert!(FaultEvent::Dropout {
            student: 1,
            at_secs: 12.0
        }
        .to_string()
        .contains("#2"));
    }
}
