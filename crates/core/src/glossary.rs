//! The activity's PDC vocabulary.
//!
//! A recurring improvement request in the survey was that "key vocabulary
//! be introduced during the activity". This module is that handout: every
//! term the activity teaches, defined in classroom language, tied to the
//! moment in the activity where students *see* it, and cross-referenced
//! to the experiment that measures it.

/// One glossary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// The vocabulary word.
    pub term: &'static str,
    /// A CS1-friendly definition.
    pub definition: &'static str,
    /// Where the activity makes it visible.
    pub seen_in_activity: &'static str,
    /// The experiment in EXPERIMENTS.md that measures it.
    pub experiment: &'static str,
}

/// All terms, in the order the activity surfaces them.
pub fn terms() -> &'static [Term] {
    &[
        Term {
            term: "task decomposition",
            definition: "breaking a big job into smaller pieces that can run at the \
                         same time",
            seen_in_activity: "the scenario slides divide the flag into stripes or slices",
            experiment: "E1",
        },
        Term {
            term: "processor / core",
            definition: "one worker that executes instructions; a multicore computer \
                         has several working simultaneously",
            seen_in_activity: "each coloring student is one processor",
            experiment: "E1",
        },
        Term {
            term: "speedup",
            definition: "how many times faster the team finishes than one worker: \
                         T1 / Tp",
            seen_in_activity: "the times on the board shrink as students are added",
            experiment: "E1",
        },
        Term {
            term: "linear speedup",
            definition: "the ideal: p workers finish p times faster",
            seen_in_activity: "asking what the speedup *should* be with 4 students",
            experiment: "E1",
        },
        Term {
            term: "efficiency",
            definition: "speedup divided by the number of workers — how much of each \
                         worker you actually used",
            seen_in_activity: "4 students rarely color 4 times faster",
            experiment: "E15",
        },
        Term {
            term: "system warm-up",
            definition: "the first run of anything is slower: caches are cold, \
                         workers unfamiliar",
            seen_in_activity: "repeating scenario 1 is suddenly much faster",
            experiment: "E2",
        },
        Term {
            term: "contention",
            definition: "workers competing for a shared resource only one can use \
                         at a time",
            seen_in_activity: "scenario 4: everyone needs the red marker first",
            experiment: "E1, E14",
        },
        Term {
            term: "dependency",
            definition: "a task that cannot start until another finishes",
            seen_in_activity: "layered flags: the background before the cross",
            experiment: "E5, E10",
        },
        Term {
            term: "pipelining",
            definition: "overlapping stages of work so every worker stays busy, like \
                         an assembly line",
            seen_in_activity: "passing the markers around so each student always has \
                              the right one",
            experiment: "E13",
        },
        Term {
            term: "pipeline fill",
            definition: "the start-up lag before every stage of a pipeline has work",
            seen_in_activity: "students idle until the first marker reaches them",
            experiment: "E13",
        },
        Term {
            term: "load balancing",
            definition: "dividing the work so everyone finishes at about the same \
                         time",
            seen_in_activity: "the maple leaf's slice takes far longer than the bars",
            experiment: "E4",
        },
        Term {
            term: "scalability",
            definition: "whether performance keeps growing as workers are added",
            seen_in_activity: "adding a 5th, 6th, … student helps less and less",
            experiment: "E15, E16",
        },
        Term {
            term: "data parallelism",
            definition: "the same operation applied to many data items at once",
            seen_in_activity: "the GPU paintball wall: one barrel per pixel, one shot",
            experiment: "E12",
        },
        Term {
            term: "heterogeneous hardware",
            definition: "different machines run at different speeds; timings only \
                         compare on identical hardware",
            seen_in_activity: "dauber teams demolish crayon teams every time",
            experiment: "E3",
        },
    ]
}

/// Look a term up (case-insensitive, prefix-tolerant).
pub fn lookup(word: &str) -> Option<&'static Term> {
    let w = word.trim().to_ascii_lowercase();
    terms()
        .iter()
        .find(|t| t.term == w)
        .or_else(|| terms().iter().find(|t| t.term.starts_with(&w)))
}

/// Render the handout.
pub fn render_glossary() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("PDC vocabulary (introduce these during the activity):\n\n");
    for t in terms() {
        let _ = writeln!(out, "{}", t.term);
        let _ = writeln!(out, "    what:  {}", t.definition);
        let _ = writeln!(out, "    where: {}", t.seen_in_activity);
        let _ = writeln!(out, "    measured in: {}\n", t.experiment);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_quiz_concepts_and_more() {
        let names: Vec<&str> = terms().iter().map(|t| t.term).collect();
        for required in [
            "task decomposition",
            "speedup",
            "contention",
            "scalability",
            "pipelining",
            "load balancing",
            "dependency",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert!(terms().len() >= 12);
    }

    #[test]
    fn every_entry_is_complete_and_cites_an_experiment() {
        for t in terms() {
            assert!(!t.definition.is_empty());
            assert!(!t.seen_in_activity.is_empty());
            assert!(t.experiment.starts_with('E'), "{}", t.term);
        }
    }

    #[test]
    fn lookup_is_forgiving() {
        assert_eq!(lookup("Speedup").unwrap().term, "speedup");
        assert_eq!(lookup("  pipeline fill ").unwrap().term, "pipeline fill");
        assert_eq!(lookup("pipel").unwrap().term, "pipelining");
        assert!(lookup("quantum").is_none());
    }

    #[test]
    fn handout_renders_every_term() {
        let text = render_glossary();
        for t in terms() {
            assert!(text.contains(t.term));
        }
    }
}
