//! Flag-aware work partitions — "the scenarios' task decompositions".
//!
//! Fig. 1's scenarios are specific partitions of the Mauritius grid: whole
//! flag (scenario 1), stripe pairs (scenario 2), one stripe each
//! (scenario 3), vertical slices (scenario 4). This module generalizes
//! them to any flag and team size and fixes the *cell order* within each
//! part, because the paper numbers cells precisely to convey that order.

use crate::work::{PreparedFlag, WorkItem};
use flagsim_grid::partition as geo;
use flagsim_grid::{Color, Region};

/// The order in which a student visits the cells of their part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellOrder {
    /// Row-major within the part: finish one stripe-row before the next —
    /// the coordinated order the scenario slides number. Minimizes color
    /// changes on stripe flags.
    #[default]
    RowMajor,
    /// Column-major within the part: march down each column, crossing
    /// every stripe — the naive order; on Mauritius it changes color every
    /// couple of cells and thrashes the markers.
    ColumnMajor,
}

/// How the flag is divided among the team.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionStrategy {
    /// One student colors everything (scenario 1).
    Solo,
    /// `n` horizontal bands of equal height; with `n = 2` on Mauritius
    /// this is scenario 2 (stripe pairs), with `n = 4` scenario 3 (one
    /// stripe each).
    HorizontalBands(u32),
    /// `n` vertical slices (scenario 4): every slice crosses every stripe,
    /// so everyone needs every color.
    VerticalSlices(u32),
    /// `cols × rows` rectangular blocks.
    Blocks(u32, u32),
    /// Row-major cells dealt round-robin to `n` students — a fine-grained
    /// cyclic distribution (great balance, terrible marker locality).
    Cyclic(u32),
    /// One part per *color*: student `i` colors every cell of color `i`
    /// (colors in first-appearance order). Mauritius with 4 students: one
    /// stripe each, same as scenario 3; on layered flags this is the
    /// "color specialist" strategy.
    ByColor,
    /// Explicit regions, one per student (must partition the colorable
    /// cells).
    Custom(Vec<Region>),
}

impl PartitionStrategy {
    /// Number of parts this strategy produces.
    pub fn parts(&self) -> usize {
        match self {
            PartitionStrategy::Solo => 1,
            PartitionStrategy::HorizontalBands(n) => *n as usize,
            PartitionStrategy::VerticalSlices(n) => *n as usize,
            PartitionStrategy::Blocks(c, r) => (*c * *r) as usize,
            PartitionStrategy::Cyclic(n) => *n as usize,
            PartitionStrategy::ByColor => 0, // depends on the flag
            PartitionStrategy::Custom(regions) => regions.len(),
        }
    }

    /// Split a prepared flag into per-student work lists. Cells whose
    /// color appears in `skip` are dropped (nobody colors the white that
    /// is already the paper). Every remaining colorable cell appears in
    /// exactly one list.
    pub fn assignments(
        &self,
        flag: &PreparedFlag,
        order: CellOrder,
        skip: &[Color],
    ) -> Vec<Vec<WorkItem>> {
        let (w, h) = (flag.width, flag.height);
        let full = geo::Rect::full(w, h);
        let regions: Vec<Region> = match self {
            PartitionStrategy::Solo => vec![ordered_region(full, w, order)],
            PartitionStrategy::HorizontalBands(n) => geo::horizontal_bands(full, *n)
                .into_iter()
                .map(|r| ordered_region(r, w, order))
                .collect(),
            PartitionStrategy::VerticalSlices(n) => geo::vertical_slices(full, *n)
                .into_iter()
                .map(|r| ordered_region(r, w, order))
                .collect(),
            PartitionStrategy::Blocks(c, r) => geo::blocks(full, *c, *r)
                .into_iter()
                .map(|b| ordered_region(b, w, order))
                .collect(),
            PartitionStrategy::Cyclic(n) => {
                geo::cyclic(w, h, *n as usize)
            }
            PartitionStrategy::ByColor => {
                let colors = flag.colors_needed(skip);
                colors
                    .iter()
                    .map(|&c| {
                        Region::from_ids(flag.reference.iter().filter_map(|(id, cc)| {
                            (cc == c).then_some(id)
                        }))
                    })
                    .collect()
            }
            PartitionStrategy::Custom(regions) => regions.clone(),
        };
        regions
            .iter()
            .map(|r| flag.items(r.iter(), skip).collect())
            .collect()
    }
}

/// The cells of a rect in the requested order.
fn ordered_region(rect: geo::Rect, grid_width: u32, order: CellOrder) -> Region {
    match order {
        CellOrder::RowMajor => rect.region(grid_width),
        CellOrder::ColumnMajor => rect.region_column_major(grid_width),
    }
}

/// Check that assignments cover every colorable cell exactly once.
pub fn verify_assignments(
    flag: &PreparedFlag,
    assignments: &[Vec<WorkItem>],
    skip: &[Color],
) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for (i, part) in assignments.iter().enumerate() {
        for item in part {
            if !seen.insert(item.cell) {
                return Err(format!("cell {} assigned twice", item.cell));
            }
            let expected = flag.reference.get(item.cell);
            if expected != item.color {
                return Err(format!(
                    "part {i}: cell {} assigned color {} but flag wants {}",
                    item.cell, item.color, expected
                ));
            }
        }
    }
    let expected = flag.total_items(skip);
    if seen.len() != expected {
        return Err(format!("covered {} of {expected} colorable cells", seen.len()));
    }
    Ok(())
}

/// Count color changes along one student's work list — each change means
/// putting down one marker and picking up (possibly waiting for) another.
pub fn color_changes(items: &[WorkItem]) -> usize {
    items
        .windows(2)
        .filter(|w| w[0].color != w[1].color)
        .count()
}

/// The execution-order region of an assignment (for rendering numbered
/// scenario slides with `flagsim_grid::render::to_numbered`).
pub fn assignment_region(items: &[WorkItem]) -> Region {
    Region::from_ids(items.iter().map(|it| it.cell))
}

/// Build the *pipelined* version of the vertical-slice partition: slice
/// `i` visits the flag's `bands` horizontal stripe-bands starting at band
/// `i` and wrapping around. At any instant each student is working in a
/// different band — so on a striped flag each needs a *different* color
/// and the single marker of each color circulates without anyone convoying
/// on it. This is §III-C's "effective coordination strategy … to pass the
/// drawing implements around so that each processor gets the right one at
/// any given moment", and like any pipeline it "takes time to fill" only
/// in the sense that the markers must make their first rotation.
pub fn pipelined_slices(flag: &PreparedFlag, slices: u32, bands: u32) -> Vec<Region> {
    let (w, h) = (flag.width, flag.height);
    let full = geo::Rect::full(w, h);
    let vslices = geo::vertical_slices(full, slices);
    let hbands = geo::horizontal_bands(full, bands);
    vslices
        .iter()
        .enumerate()
        .map(|(i, slice)| {
            let mut r = Region::new();
            for k in 0..bands as usize {
                let band = hbands[(i + k) % bands as usize];
                let block = geo::Rect::new(
                    slice.x0,
                    band.y0,
                    slice.x1,
                    band.y1,
                );
                for id in block.region(w).iter() {
                    r.push(id);
                }
            }
            r
        })
        .collect()
}

/// Failure injection: student `who` drops out after completing
/// `completed` of their cells (phone call, bathroom, gave up on the
/// crayons). The instructor rebalances by dealing the dropout's remaining
/// cells round-robin to the other students, appended after their own
/// work. Returns the rebalanced assignments; panics if `who` is out of
/// range or is the only student.
pub fn rebalance_dropout(
    assignments: &[Vec<WorkItem>],
    who: usize,
    completed: usize,
) -> Vec<Vec<WorkItem>> {
    assert!(who < assignments.len(), "unknown student {who}");
    assert!(
        assignments.len() > 1,
        "cannot rebalance a one-student team"
    );
    let completed = completed.min(assignments[who].len());
    let mut out: Vec<Vec<WorkItem>> = assignments.to_vec();
    let leftover: Vec<WorkItem> = out[who].split_off(completed);
    let survivors: Vec<usize> = (0..assignments.len()).filter(|&i| i != who).collect();
    for (k, item) in leftover.into_iter().enumerate() {
        out[survivors[k % survivors.len()]].push(item);
    }
    out
}

/// Convenience: the four Fig. 1 scenario partitions for a 4-stripe flag.
pub fn fig1_partitions() -> [(&'static str, PartitionStrategy, CellOrder); 4] {
    [
        ("scenario 1: one student", PartitionStrategy::Solo, CellOrder::RowMajor),
        (
            "scenario 2: stripe pairs",
            PartitionStrategy::HorizontalBands(2),
            CellOrder::RowMajor,
        ),
        (
            "scenario 3: one stripe each",
            PartitionStrategy::HorizontalBands(4),
            CellOrder::RowMajor,
        ),
        (
            "scenario 4: vertical slices",
            PartitionStrategy::VerticalSlices(4),
            CellOrder::RowMajor,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::PreparedFlag;
    use flagsim_flags::library;

    fn mauritius() -> PreparedFlag {
        PreparedFlag::new(&library::mauritius())
    }

    #[test]
    fn all_strategies_partition_exactly() {
        let pf = mauritius();
        let strategies = [
            PartitionStrategy::Solo,
            PartitionStrategy::HorizontalBands(2),
            PartitionStrategy::HorizontalBands(4),
            PartitionStrategy::VerticalSlices(4),
            PartitionStrategy::Blocks(2, 2),
            PartitionStrategy::Cyclic(3),
            PartitionStrategy::ByColor,
        ];
        for s in strategies {
            for order in [CellOrder::RowMajor, CellOrder::ColumnMajor] {
                let a = s.assignments(&pf, order, &[]);
                verify_assignments(&pf, &a, &[]).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            }
        }
    }

    #[test]
    fn scenario2_gives_each_student_two_colors() {
        let pf = mauritius();
        let a = PartitionStrategy::HorizontalBands(2).assignments(&pf, CellOrder::RowMajor, &[]);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].len(), 48);
        // P1: red then blue; one color change.
        assert_eq!(color_changes(&a[0]), 1);
        assert_eq!(a[0][0].color, Color::Red);
        assert_eq!(a[0][47].color, Color::Blue);
        assert_eq!(a[1][0].color, Color::Yellow);
    }

    #[test]
    fn scenario3_one_color_per_student() {
        let pf = mauritius();
        let a = PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        assert_eq!(a.len(), 4);
        for part in &a {
            assert_eq!(part.len(), 24);
            assert_eq!(color_changes(part), 0);
        }
    }

    #[test]
    fn scenario4_everyone_needs_every_color() {
        let pf = mauritius();
        let a = PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::RowMajor, &[]);
        assert_eq!(a.len(), 4);
        for part in &a {
            assert_eq!(part.len(), 24);
            // Row-major within slice: 3 color changes (R→B→Y→G).
            assert_eq!(color_changes(part), 3);
            assert_eq!(part[0].color, Color::Red); // everyone starts on red!
        }
    }

    #[test]
    fn column_major_order_thrashes_colors() {
        let pf = mauritius();
        let a =
            PartitionStrategy::VerticalSlices(4).assignments(&pf, CellOrder::ColumnMajor, &[]);
        // Column-major: every column crosses 4 stripes → 3 changes per
        // column × 3 columns + transitions between columns.
        for part in &a {
            assert!(
                color_changes(part) > 3 * 2,
                "expected thrashing, got {} changes",
                color_changes(part)
            );
        }
    }

    #[test]
    fn by_color_matches_stripes_on_mauritius() {
        let pf = mauritius();
        let by_color = PartitionStrategy::ByColor.assignments(&pf, CellOrder::RowMajor, &[]);
        let stripes =
            PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        assert_eq!(by_color, stripes);
    }

    #[test]
    fn skip_colors_removes_work() {
        let pf = PreparedFlag::new(&library::jordan());
        let all = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let skipped =
            PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[Color::White]);
        assert!(skipped[0].len() < all[0].len());
        verify_assignments(&pf, &skipped, &[Color::White]).unwrap();
    }

    #[test]
    fn fig1_partition_list() {
        let panels = fig1_partitions();
        assert_eq!(panels.len(), 4);
        assert_eq!(panels[0].1.parts(), 1);
        assert_eq!(panels[2].1.parts(), 4);
    }

    #[test]
    fn dropout_rebalancing_preserves_coverage() {
        let pf = mauritius();
        let a = PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let rebalanced = rebalance_dropout(&a, 2, 10);
        verify_assignments(&pf, &rebalanced, &[]).unwrap();
        assert_eq!(rebalanced[2].len(), 10);
        // The other three absorbed the 14 leftover cells.
        let absorbed: usize = [0usize, 1, 3]
            .iter()
            .map(|&i| rebalanced[i].len() - a[i].len())
            .sum();
        assert_eq!(absorbed, 14);
    }

    #[test]
    fn dropout_at_zero_and_past_end() {
        let pf = mauritius();
        let a = PartitionStrategy::HorizontalBands(2).assignments(&pf, CellOrder::RowMajor, &[]);
        // Dropping out before starting: everything redistributed.
        let all_gone = rebalance_dropout(&a, 0, 0);
        assert!(all_gone[0].is_empty());
        verify_assignments(&pf, &all_gone, &[]).unwrap();
        // "Dropping out" after finishing: nothing changes.
        let nothing = rebalance_dropout(&a, 0, usize::MAX);
        assert_eq!(nothing, a);
    }

    #[test]
    #[should_panic(expected = "one-student team")]
    fn dropout_needs_survivors() {
        let pf = mauritius();
        let a = PartitionStrategy::Solo.assignments(&pf, CellOrder::RowMajor, &[]);
        let _ = rebalance_dropout(&a, 0, 5);
    }

    #[test]
    fn numbered_slide_render() {
        let pf = mauritius();
        let a = PartitionStrategy::HorizontalBands(4).assignments(&pf, CellOrder::RowMajor, &[]);
        let region = assignment_region(&a[0]);
        let slide = flagsim_grid::render::to_numbered(&pf.reference, &region);
        // First cell of P1's stripe is numbered 1.
        assert!(slide.starts_with(" 1"));
    }
}
