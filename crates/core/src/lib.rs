//! # flagsim-core
//!
//! The paper's contribution, executable: the flag-coloring unplugged
//! activity as a discrete-event simulation.
//!
//! A [`scenario::Scenario`] describes who colors what in which order (the
//! four panels of Fig. 1, the Webster variation, or anything custom); an
//! [`config::ActivityConfig`] adds the team, their drawing implements and
//! the stochastic cost model; [`run::run_activity`] wires it all into the
//! [`flagsim_desim`] engine — students are processes, the team's one
//! marker of each color is an exclusive resource — and returns a
//! [`report::RunReport`] with the completion time the scenario's timer
//! student would have shouted out, plus everything the timer couldn't
//! see: per-student busy/wait/idle, per-marker contention, and the final
//! grid (verified against the flag's reference raster).
//!
//! [`classroom::ClassroomSession`] runs whole lesson plans — several teams,
//! scenario after scenario, with students' warm-up experience persisting
//! the way it does in a real classroom — and keeps the "times on the
//! board". [`layered`] covers the Knox follow-up: dependency graphs for
//! layered flags, scheduled with `flagsim_taskgraph`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod classroom;
pub mod config;
pub mod discussion;
pub mod explain;
pub mod faults;
pub mod glossary;
pub mod layered;
pub mod partition;
pub mod replay;
pub mod report;
pub mod run;
pub mod scenario;
pub mod slides;
pub mod sweep;
pub mod work;

pub use config::{ActivityConfig, ReleasePolicy, TeamKit};
pub use explain::{explain_report, explain_scenario, Explanation};
pub use faults::{FaultEvent, FaultPlan, RecoveryPolicy, ResilienceReport};
pub use partition::{CellOrder, PartitionStrategy};
pub use report::RunReport;
pub use run::{run_activity, run_activity_scheduled, run_activity_with_faults, ActivityOutcome};
pub use scenario::Scenario;
pub use work::WorkItem;
