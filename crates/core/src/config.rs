//! Team configuration: who holds what.

use flagsim_agents::{CostParams, Implement, ImplementKind};
use flagsim_grid::{Color, FillStyle};
use std::collections::BTreeMap;

/// When a student puts a marker back in the middle of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReleasePolicy {
    /// Hold the implement while consecutive cells share its color and
    /// release on a color change — the coordinated "pass the drawing
    /// implements around" strategy that produces the paper's pipelining
    /// observation.
    #[default]
    KeepUntilColorChange,
    /// Put the implement down after every single cell — maximally fair,
    /// maximally churny (every cell pays a potential hand-off).
    ReleaseEachCell,
}

/// The team's drawing kit: exactly one implement per color, as the paper
/// prescribes ("Each team gets one drawing implement of each color") —
/// which is precisely what makes scenario 4 contend.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamKit {
    implements: BTreeMap<Color, Implement>,
    counts: BTreeMap<Color, usize>,
}

impl TeamKit {
    /// A kit with one good implement of `kind` for each color in `colors`.
    pub fn uniform(kind: ImplementKind, colors: &[Color]) -> Self {
        TeamKit {
            implements: colors
                .iter()
                .map(|&c| (c, Implement::good(kind)))
                .collect(),
            counts: BTreeMap::new(),
        }
    }

    /// Replace (or add) the implement for one color — mixed kits, worn
    /// markers, failure injection.
    pub fn with_implement(mut self, color: Color, implement: Implement) -> Self {
        self.implements.insert(color, implement);
        self
    }

    /// Stock `n ≥ 1` interchangeable implements of one color — the
    /// paper's "extra resources would reduce the contention" extension.
    pub fn with_count(mut self, color: Color, n: usize) -> Self {
        assert!(n >= 1, "a kit needs at least one implement per color");
        self.counts.insert(color, n);
        self
    }

    /// Stock `n` implements of *every* color in the kit.
    pub fn with_count_all(mut self, n: usize) -> Self {
        assert!(n >= 1, "a kit needs at least one implement per color");
        let colors: Vec<Color> = self.implements.keys().copied().collect();
        for c in colors {
            self.counts.insert(c, n);
        }
        self
    }

    /// How many implements of this color the kit holds (default 1).
    pub fn count(&self, color: Color) -> usize {
        self.counts.get(&color).copied().unwrap_or(1)
    }

    /// The implement for a color, if the kit has one.
    pub fn implement(&self, color: Color) -> Option<Implement> {
        self.implements.get(&color).copied()
    }

    /// Colors this kit can color.
    pub fn colors(&self) -> impl Iterator<Item = Color> + '_ {
        self.implements.keys().copied()
    }

    /// Check the kit against the set of colors a run needs: every color
    /// must be present and usable (§IV's dry-run checklist).
    pub fn check(&self, needed: &[Color]) -> Result<(), String> {
        for &c in needed {
            match self.implement(c) {
                None => return Err(format!("kit has no {c} implement")),
                Some(i) if !i.is_usable() => {
                    return Err(format!("the {c} {} is dead — replace it", i.kind))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// Everything about how a run is executed (independent of the flag and
/// the partition).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityConfig {
    /// Fill quality (scales per-cell work).
    pub fill: FillStyle,
    /// Marker discipline.
    pub policy: ReleasePolicy,
    /// RNG seed for the cost model — equal seeds, equal runs.
    pub seed: u64,
    /// Cost model noise parameters.
    pub cost_params: CostParams,
    /// Colors nobody colors because the paper is already that color
    /// (white, usually).
    pub skip_colors: Vec<Color>,
    /// Optional class-period bell, in seconds: work not completed by then
    /// is cut off (the paper's first Knox section "had less time").
    pub deadline_secs: Option<f64>,
    /// Record the full per-event trace (default). Stats-only callers —
    /// streaming sweeps that never look at `RunReport::trace.events` —
    /// set this false to skip every event push; all aggregate accounting
    /// (busy, waiting, completed cells, contention stats, completion
    /// time, grid correctness) is bit-identical either way.
    pub trace_events: bool,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        ActivityConfig {
            fill: FillStyle::Scribble,
            policy: ReleasePolicy::KeepUntilColorChange,
            seed: 0xF1A6,
            cost_params: CostParams::default(),
            skip_colors: Vec::new(),
            deadline_secs: None,
            trace_events: true,
        }
    }
}

impl ActivityConfig {
    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the release policy.
    pub fn with_policy(mut self, policy: ReleasePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the fill style.
    pub fn with_fill(mut self, fill: FillStyle) -> Self {
        self.fill = fill;
        self
    }

    /// Skip cells of these colors (blank paper stands in for them).
    pub fn skipping(mut self, colors: &[Color]) -> Self {
        self.skip_colors = colors.to_vec();
        self
    }

    /// Ring the bell after `secs`: unfinished coloring is cut off.
    pub fn with_deadline_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "deadline must be positive");
        self.deadline_secs = Some(secs);
        self
    }

    /// Opt out of per-event trace recording (stats-only mode).
    pub fn with_trace_events(mut self, record: bool) -> Self {
        self.trace_events = record;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::Condition;

    #[test]
    fn uniform_kit_has_all_colors() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        for c in Color::MAURITIUS {
            assert_eq!(
                kit.implement(c).unwrap().kind,
                ImplementKind::ThickMarker
            );
        }
        assert!(kit.implement(Color::White).is_none());
        assert!(kit.check(&Color::MAURITIUS).is_ok());
    }

    #[test]
    fn check_catches_missing_and_dead() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &[Color::Red]);
        assert!(kit.check(&[Color::Red, Color::Blue]).is_err());
        let kit = kit.with_implement(
            Color::Red,
            Implement {
                kind: ImplementKind::ThickMarker,
                condition: Condition::Dead,
            },
        );
        let err = kit.check(&[Color::Red]).unwrap_err();
        assert!(err.contains("dead"), "{err}");
    }

    #[test]
    fn mixed_kit_overrides() {
        let kit = TeamKit::uniform(ImplementKind::Crayon, &Color::MAURITIUS)
            .with_implement(Color::Red, Implement::good(ImplementKind::BingoDauber));
        assert_eq!(
            kit.implement(Color::Red).unwrap().kind,
            ImplementKind::BingoDauber
        );
        assert_eq!(
            kit.implement(Color::Blue).unwrap().kind,
            ImplementKind::Crayon
        );
    }

    #[test]
    fn counts_default_to_one_and_can_be_stocked() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
            .with_count(Color::Red, 3);
        assert_eq!(kit.count(Color::Red), 3);
        assert_eq!(kit.count(Color::Blue), 1);
        let full = kit.with_count_all(2);
        assert_eq!(full.count(Color::Red), 2);
        assert_eq!(full.count(Color::Green), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_count_rejected() {
        let _ = TeamKit::uniform(ImplementKind::ThickMarker, &[Color::Red])
            .with_count(Color::Red, 0);
    }

    #[test]
    fn config_builders() {
        let c = ActivityConfig::default()
            .with_seed(7)
            .with_policy(ReleasePolicy::ReleaseEachCell)
            .with_fill(FillStyle::Full)
            .skipping(&[Color::White]);
        assert_eq!(c.seed, 7);
        assert_eq!(c.policy, ReleasePolicy::ReleaseEachCell);
        assert_eq!(c.fill, FillStyle::Full);
        assert_eq!(c.skip_colors, vec![Color::White]);
    }
}
