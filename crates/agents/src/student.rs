//! Student profiles: skill and warm-up.
//!
//! The warm-up curve is the paper's "system warmup" lesson in miniature:
//! the first run of scenario 1 "is likely slowed down by the students
//! being unfamiliar with the task", and a repeat is "significantly better
//! … attributable mainly to their getting used to the task and tools". We
//! model the per-cell slowdown as `1 + w·exp(−k/τ)` where `k` counts the
//! cells this student has colored so far (across scenarios — experience
//! persists within a class session, like a warm cache persists across
//! runs).

/// One student's characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct StudentProfile {
    /// Display name ("P1" … in the scenario figures).
    pub name: String,
    /// Baseline speed multiplier: 1.0 is average, lower is faster
    /// (0.85 = 15% faster than average). Kept in a sane band by
    /// [`StudentProfile::new`].
    pub skill: f64,
    /// Initial warm-up slowdown `w`: the very first cell takes
    /// `(1 + w)×` the steady-state time. Defaults to 0.8.
    pub warmup_amplitude: f64,
    /// Warm-up decay constant `τ` in cells. Defaults to 40.0 — a student
    /// is still warming up through most of their first Mauritius grid
    /// (96 cells), which is why the paper's repeat of scenario 1 lands
    /// "significantly better".
    pub warmup_tau: f64,
    /// Cells colored so far in this session (drives warm-up decay).
    pub cells_colored: u64,
    /// Fatigue growth per cell beyond [`StudentProfile::fatigue_onset`]:
    /// each extra cell adds this much slowdown, capped at +50%. Default 0
    /// (off) — coloring one classroom flag doesn't tire anyone, but long
    /// multi-flag sessions can.
    pub fatigue_rate: f64,
    /// Cells before fatigue starts accruing.
    pub fatigue_onset: u64,
}

impl StudentProfile {
    /// An average student.
    pub fn new(name: impl Into<String>) -> Self {
        StudentProfile {
            name: name.into(),
            skill: 1.0,
            warmup_amplitude: 0.8,
            warmup_tau: 40.0,
            cells_colored: 0,
            fatigue_rate: 0.0,
            fatigue_onset: 200,
        }
    }

    /// Set skill, clamped to a plausible classroom band `[0.6, 1.8]`.
    pub fn with_skill(mut self, skill: f64) -> Self {
        self.skill = skill.clamp(0.6, 1.8);
        self
    }

    /// Set the warm-up curve. Amplitude is clamped to `[0, 3]`, tau floored
    /// at a tenth of a cell.
    pub fn with_warmup(mut self, amplitude: f64, tau: f64) -> Self {
        self.warmup_amplitude = amplitude.clamp(0.0, 3.0);
        self.warmup_tau = tau.max(0.1);
        self
    }

    /// A student with no warm-up effect (for ablations).
    pub fn without_warmup(mut self) -> Self {
        self.warmup_amplitude = 0.0;
        self
    }

    /// Enable fatigue: `rate` slowdown per cell beyond `onset` cells.
    pub fn with_fatigue(mut self, rate: f64, onset: u64) -> Self {
        self.fatigue_rate = rate.clamp(0.0, 0.1);
        self.fatigue_onset = onset;
        self
    }

    /// Current warm-up multiplier, `≥ 1`, decaying toward 1 as the student
    /// colors more cells.
    pub fn warmup_multiplier(&self) -> f64 {
        1.0 + self.warmup_amplitude * (-(self.cells_colored as f64) / self.warmup_tau).exp()
    }

    /// Current fatigue multiplier, `≥ 1`, growing past the onset and
    /// capped at 1.5.
    pub fn fatigue_multiplier(&self) -> f64 {
        let over = self.cells_colored.saturating_sub(self.fatigue_onset) as f64;
        (1.0 + self.fatigue_rate * over).min(1.5)
    }

    /// Record that a cell was colored (advances the warm-up curve).
    pub fn record_cell(&mut self) {
        self.cells_colored += 1;
    }

    /// Reset session experience (a fresh class, not a repeat run).
    pub fn reset_experience(&mut self) {
        self.cells_colored = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_decays_toward_one() {
        let mut s = StudentProfile::new("P1");
        let first = s.warmup_multiplier();
        assert!((first - 1.8).abs() < 1e-12);
        for _ in 0..24 {
            s.record_cell();
        }
        let later = s.warmup_multiplier();
        assert!(later < first);
        assert!(later > 1.0);
        for _ in 0..1000 {
            s.record_cell();
        }
        assert!((s.warmup_multiplier() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn without_warmup_is_flat() {
        let s = StudentProfile::new("P1").without_warmup();
        assert_eq!(s.warmup_multiplier(), 1.0);
    }

    #[test]
    fn skill_clamped() {
        assert_eq!(StudentProfile::new("x").with_skill(0.1).skill, 0.6);
        assert_eq!(StudentProfile::new("x").with_skill(9.0).skill, 1.8);
        assert_eq!(StudentProfile::new("x").with_skill(1.1).skill, 1.1);
    }

    #[test]
    fn fatigue_off_by_default_and_capped() {
        let mut s = StudentProfile::new("P1");
        for _ in 0..10_000 {
            s.record_cell();
        }
        assert_eq!(s.fatigue_multiplier(), 1.0, "default is no fatigue");

        let mut tired = StudentProfile::new("P2").with_fatigue(0.002, 100);
        assert_eq!(tired.fatigue_multiplier(), 1.0);
        for _ in 0..150 {
            tired.record_cell();
        }
        let mid = tired.fatigue_multiplier();
        assert!(mid > 1.0 && mid < 1.5, "{mid}");
        for _ in 0..10_000 {
            tired.record_cell();
        }
        assert_eq!(tired.fatigue_multiplier(), 1.5, "capped");
    }

    #[test]
    fn reset_restores_cold_start() {
        let mut s = StudentProfile::new("P1");
        for _ in 0..50 {
            s.record_cell();
        }
        let warm = s.warmup_multiplier();
        s.reset_experience();
        assert!(s.warmup_multiplier() > warm);
        assert_eq!(s.cells_colored, 0);
    }
}
