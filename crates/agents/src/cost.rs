//! The stochastic per-cell cost model.
//!
//! Seconds to color one cell =
//! `implement_base × condition × skill × warmup × fill_style × cell_kind ×
//! lognormal_noise`. Every factor is an observable from the paper:
//! implements differ (§IV), students warm up (§III-C), fill styles differ
//! (§IV), and intricate boundary cells — the Canadian maple leaf — "slowed
//! progress" (§III-D). Noise is lognormal so times stay positive and
//! multiplicative, sampled from a seeded ChaCha8 RNG for reproducibility.

use crate::implement::Implement;
use crate::student::StudentProfile;
use flagsim_grid::FillStyle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Whether a cell is interior to its color region or on a boundary with
/// another color. Boundary cells need precision ("the intricate maple leaf
/// … slowed progress") and cost more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// Surrounded by same-color cells; color freely.
    #[default]
    Interior,
    /// Adjacent to a different color; careful edging required.
    Boundary,
}

impl CellKind {
    /// Time multiplier.
    pub fn multiplier(self) -> f64 {
        match self {
            CellKind::Interior => 1.0,
            CellKind::Boundary => 1.6,
        }
    }
}

/// Tunable model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Lognormal sigma for per-cell noise.
    pub noise_sigma: f64,
    /// Extra sigma added for [`FillStyle::Minimal`] (erratic dabs — the
    /// paper's scribble advice exists to get "uniformity of time per
    /// cell").
    pub minimal_extra_sigma: f64,
    /// Lognormal sigma for hand-off delays.
    pub handoff_sigma: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            noise_sigma: 0.12,
            minimal_extra_sigma: 0.25,
            handoff_sigma: 0.20,
        }
    }
}

/// A seeded sampler of cell-coloring times and hand-off delays.
#[derive(Debug, Clone)]
pub struct CostModel {
    rng: ChaCha8Rng,
    params: CostParams,
}

impl CostModel {
    /// Build with default parameters from a seed. Equal seeds ⇒ equal
    /// sample streams.
    pub fn new(seed: u64) -> Self {
        CostModel::with_params(seed, CostParams::default())
    }

    /// Build with explicit parameters.
    pub fn with_params(seed: u64, params: CostParams) -> Self {
        CostModel {
            rng: ChaCha8Rng::seed_from_u64(seed),
            params,
        }
    }

    /// A standard normal sample via Box–Muller (keeps us off external
    /// distribution crates).
    fn standard_normal(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 > f64::EPSILON {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// A lognormal multiplier with median 1.
    fn lognormal(&mut self, sigma: f64) -> f64 {
        (self.standard_normal() * sigma).exp()
    }

    /// The per-cell lognormal sigma implied by a fill style. RNG-free,
    /// so callers sampling many cells can hoist it out of the loop.
    pub fn cell_sigma(&self, fill: FillStyle) -> f64 {
        if fill.uniform_timing() {
            self.params.noise_sigma
        } else {
            self.params.noise_sigma + self.params.minimal_extra_sigma
        }
    }

    /// Seconds for `student` to color one cell with `implement`, advancing
    /// the student's warm-up curve. Panics if the implement is dead —
    /// detecting dead markers is the caller's failure-injection hook, not
    /// a time sample.
    pub fn sample_cell_secs(
        &mut self,
        student: &mut StudentProfile,
        implement: Implement,
        fill: FillStyle,
        kind: CellKind,
    ) -> f64 {
        assert!(
            implement.is_usable(),
            "cannot sample time for a dead implement"
        );
        let sigma = self.cell_sigma(fill);
        self.sample_cell_secs_resolved(
            student,
            implement.effective_base_secs() * student.skill,
            fill.work_factor(),
            sigma,
            kind,
        )
    }

    /// Pre-resolved fast path for [`CostModel::sample_cell_secs`]: callers
    /// hoist `implement.effective_base_secs() * student.skill` (constant
    /// per student/implement pair) and the fill-style factors (constant
    /// per run) out of their per-cell loop. Bit-for-bit identical to
    /// `sample_cell_secs` because `f64` multiplication chains evaluate
    /// left to right — `base_skill` is exactly the chain's first two
    /// factors — and the RNG draw order is unchanged.
    pub fn sample_cell_secs_resolved(
        &mut self,
        student: &mut StudentProfile,
        base_skill: f64,
        fill_factor: f64,
        sigma: f64,
        kind: CellKind,
    ) -> f64 {
        let secs = base_skill
            * student.warmup_multiplier()
            * student.fatigue_multiplier()
            * fill_factor
            * kind.multiplier()
            * self.lognormal(sigma);
        student.record_cell();
        secs
    }

    /// Seconds to hand `implement` from one student to another.
    pub fn sample_handoff_secs(&mut self, implement: Implement) -> f64 {
        implement.kind.handoff_secs() * self.lognormal(self.params.handoff_sigma)
    }

    /// Whether the implement breaks on this use (crayons only, see
    /// [`ImplementKind::breakage_prob`](crate::ImplementKind::breakage_prob)).
    pub fn sample_breakage(&mut self, implement: Implement) -> bool {
        let p = implement.kind.breakage_prob();
        p > 0.0 && self.rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implement::{Condition, ImplementKind};

    fn avg_cell_secs(kind: ImplementKind, n: usize, seed: u64) -> f64 {
        let mut model = CostModel::new(seed);
        let mut student = StudentProfile::new("avg").without_warmup();
        let implement = Implement::good(kind);
        (0..n)
            .map(|_| {
                model.sample_cell_secs(
                    &mut student,
                    implement,
                    FillStyle::Scribble,
                    CellKind::Interior,
                )
            })
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn implement_ordering_survives_noise() {
        let d = avg_cell_secs(ImplementKind::BingoDauber, 400, 1);
        let tk = avg_cell_secs(ImplementKind::ThickMarker, 400, 2);
        let tn = avg_cell_secs(ImplementKind::ThinMarker, 400, 3);
        let c = avg_cell_secs(ImplementKind::Crayon, 400, 4);
        assert!(d < tk && tk < tn && tn < c, "{d} {tk} {tn} {c}");
    }

    #[test]
    fn mean_close_to_base() {
        let avg = avg_cell_secs(ImplementKind::ThickMarker, 2000, 7);
        // Lognormal with sigma .12 has mean ≈ base × exp(σ²/2) ≈ 1.007×.
        assert!((avg - 2.0).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = |seed| {
            let mut m = CostModel::new(seed);
            let mut s = StudentProfile::new("s");
            (0..10)
                .map(|_| {
                    m.sample_cell_secs(
                        &mut s,
                        Implement::good(ImplementKind::ThickMarker),
                        FillStyle::Scribble,
                        CellKind::Interior,
                    )
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    fn warmup_makes_early_cells_slower() {
        let mut m = CostModel::with_params(
            5,
            CostParams {
                noise_sigma: 0.0,
                minimal_extra_sigma: 0.0,
                handoff_sigma: 0.0,
            },
        );
        let mut s = StudentProfile::new("s");
        let imp = Implement::good(ImplementKind::ThickMarker);
        let first = m.sample_cell_secs(&mut s, imp, FillStyle::Scribble, CellKind::Interior);
        for _ in 0..300 {
            let _ = m.sample_cell_secs(&mut s, imp, FillStyle::Scribble, CellKind::Interior);
        }
        let late = m.sample_cell_secs(&mut s, imp, FillStyle::Scribble, CellKind::Interior);
        assert!(first > late * 1.5, "first {first}, late {late}");
        assert!((late - 2.0).abs() < 0.05);
    }

    #[test]
    fn boundary_cells_cost_more() {
        let mut m = CostModel::with_params(
            5,
            CostParams {
                noise_sigma: 0.0,
                minimal_extra_sigma: 0.0,
                handoff_sigma: 0.0,
            },
        );
        let mut s = StudentProfile::new("s").without_warmup();
        let imp = Implement::good(ImplementKind::ThickMarker);
        let interior = m.sample_cell_secs(&mut s, imp, FillStyle::Scribble, CellKind::Interior);
        let boundary = m.sample_cell_secs(&mut s, imp, FillStyle::Scribble, CellKind::Boundary);
        assert!((boundary / interior - 1.6).abs() < 1e-9);
    }

    #[test]
    fn fill_style_scales_work() {
        let mut m = CostModel::with_params(
            5,
            CostParams {
                noise_sigma: 0.0,
                minimal_extra_sigma: 0.0,
                handoff_sigma: 0.0,
            },
        );
        let mut s = StudentProfile::new("s").without_warmup();
        let imp = Implement::good(ImplementKind::ThickMarker);
        let full = m.sample_cell_secs(&mut s, imp, FillStyle::Full, CellKind::Interior);
        let min = m.sample_cell_secs(&mut s, imp, FillStyle::Minimal, CellKind::Interior);
        assert!((full - 4.0).abs() < 1e-9);
        assert!((min - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dead implement")]
    fn dead_implement_panics() {
        let mut m = CostModel::new(1);
        let mut s = StudentProfile::new("s");
        let dead = Implement {
            kind: ImplementKind::ThickMarker,
            condition: Condition::Dead,
        };
        let _ = m.sample_cell_secs(&mut s, dead, FillStyle::Scribble, CellKind::Interior);
    }

    #[test]
    fn only_crayons_ever_break() {
        let mut m = CostModel::new(99);
        let mut crayon_breaks = 0;
        for _ in 0..5000 {
            if m.sample_breakage(Implement::good(ImplementKind::Crayon)) {
                crayon_breaks += 1;
            }
            assert!(!m.sample_breakage(Implement::good(ImplementKind::ThickMarker)));
        }
        assert!(crayon_breaks > 0, "crayons should break occasionally");
        assert!(crayon_breaks < 200, "but not constantly");
    }

    #[test]
    fn resolved_path_matches_classic_sampling_bitwise() {
        // The hot-path variant with hoisted factors must reproduce the
        // classic per-cell sampler exactly — same RNG stream, same f64
        // bit patterns — or trace determinism across the rewrite breaks.
        let imp = Implement::good(ImplementKind::Crayon);
        let fill = FillStyle::Minimal;
        let kinds = |i: usize| {
            if i.is_multiple_of(3) {
                CellKind::Boundary
            } else {
                CellKind::Interior
            }
        };
        let mut classic = CostModel::new(42);
        let mut s1 = StudentProfile::new("s");
        let a: Vec<u64> = (0..64)
            .map(|i| classic.sample_cell_secs(&mut s1, imp, fill, kinds(i)).to_bits())
            .collect();
        let mut fast = CostModel::new(42);
        let mut s2 = StudentProfile::new("s");
        let sigma = fast.cell_sigma(fill);
        let fill_factor = fill.work_factor();
        let base_skill = imp.effective_base_secs() * s2.skill;
        let b: Vec<u64> = (0..64)
            .map(|i| {
                fast.sample_cell_secs_resolved(&mut s2, base_skill, fill_factor, sigma, kinds(i))
                    .to_bits()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn handoff_positive_and_near_base() {
        let mut m = CostModel::new(11);
        let imp = Implement::good(ImplementKind::ThickMarker);
        let avg: f64 =
            (0..500).map(|_| m.sample_handoff_secs(imp)).sum::<f64>() / 500.0;
        assert!(avg > 0.9 && avg < 1.6, "avg {avg}");
    }
}
