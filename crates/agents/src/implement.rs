//! Drawing implements — the activity's "hardware".
//!
//! Section IV: "it is advantageous to provide students with a variety of
//! drawing implements … it does show the effect of different hardware",
//! and "the students preferred markers to crayons — the institution that
//! used crayons got many complaints". The calibrated base costs below
//! preserve the observed ordering dauber < thick marker < thin marker <
//! crayon; absolute seconds are free parameters chosen to land completion
//! times in the tens-of-seconds range of a real classroom grid.

use std::fmt;

/// The kinds of coloring tools handed out across the six institutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplementKind {
    /// Bingo dauber: one dab per cell — fastest.
    BingoDauber,
    /// Thick marker.
    ThickMarker,
    /// Thin marker.
    ThinMarker,
    /// Crayon: slow, and prone to breaking (students complained).
    Crayon,
}

impl ImplementKind {
    /// All kinds, fastest first.
    pub const ALL: [ImplementKind; 4] = [
        ImplementKind::BingoDauber,
        ImplementKind::ThickMarker,
        ImplementKind::ThinMarker,
        ImplementKind::Crayon,
    ];

    /// Calibrated base seconds to scribble-fill one cell with this
    /// implement in good condition, for a skill-1.0, fully warmed-up
    /// student.
    pub fn base_secs_per_cell(self) -> f64 {
        match self {
            ImplementKind::BingoDauber => 1.2,
            ImplementKind::ThickMarker => 2.0,
            ImplementKind::ThinMarker => 3.0,
            ImplementKind::Crayon => 4.2,
        }
    }

    /// Seconds to pass this implement between students (scenario 4's
    /// hand-off). Daubers are chunky and easy to hand over; crayons are
    /// small and fumbly.
    pub fn handoff_secs(self) -> f64 {
        match self {
            ImplementKind::BingoDauber => 1.0,
            ImplementKind::ThickMarker => 1.2,
            ImplementKind::ThinMarker => 1.2,
            ImplementKind::Crayon => 1.6,
        }
    }

    /// Per-cell probability of breaking/failing. Only crayons break in
    /// practice ("requested better quality crayons … to avoid breakage").
    pub fn breakage_prob(self) -> f64 {
        match self {
            ImplementKind::Crayon => 0.004,
            _ => 0.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ImplementKind::BingoDauber => "bingo dauber",
            ImplementKind::ThickMarker => "thick marker",
            ImplementKind::ThinMarker => "thin marker",
            ImplementKind::Crayon => "crayon",
        }
    }
}

impl fmt::Display for ImplementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical condition, for failure injection (§IV: do a dry run; check
/// whether "the markers \[are\] dead" and whether they "bleed through the
/// paper").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Condition {
    /// Works as calibrated.
    #[default]
    Good,
    /// Dried out / stubby: slower by half.
    Worn,
    /// Unusable; a run that needs it cannot proceed until it is replaced.
    Dead,
}

impl Condition {
    /// Time multiplier (Dead has none — it must be detected, not timed).
    pub fn slowdown(self) -> f64 {
        match self {
            Condition::Good => 1.0,
            Condition::Worn => 1.5,
            Condition::Dead => f64::INFINITY,
        }
    }
}

/// One physical implement: a kind plus its condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Implement {
    /// What it is.
    pub kind: ImplementKind,
    /// What shape it's in.
    pub condition: Condition,
}

impl Implement {
    /// A good implement of the given kind.
    pub fn good(kind: ImplementKind) -> Self {
        Implement {
            kind,
            condition: Condition::Good,
        }
    }

    /// Whether the implement can color at all.
    pub fn is_usable(self) -> bool {
        self.condition != Condition::Dead
    }

    /// Effective base seconds per cell (infinite for dead implements).
    pub fn effective_base_secs(self) -> f64 {
        self.kind.base_secs_per_cell() * self.condition.slowdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_ordering_matches_paper() {
        // "daubers were the fastest, followed by thick markers, and then
        // thin markers"; crayons were the complained-about worst.
        let secs: Vec<f64> = ImplementKind::ALL
            .iter()
            .map(|k| k.base_secs_per_cell())
            .collect();
        assert!(secs.windows(2).all(|w| w[0] < w[1]), "{secs:?}");
    }

    #[test]
    fn only_crayons_break() {
        for k in ImplementKind::ALL {
            if k == ImplementKind::Crayon {
                assert!(k.breakage_prob() > 0.0);
            } else {
                assert_eq!(k.breakage_prob(), 0.0);
            }
        }
    }

    #[test]
    fn condition_slowdowns() {
        assert_eq!(Condition::Good.slowdown(), 1.0);
        assert_eq!(Condition::Worn.slowdown(), 1.5);
        assert!(Condition::Dead.slowdown().is_infinite());
    }

    #[test]
    fn dead_implement_unusable() {
        let dead = Implement {
            kind: ImplementKind::ThickMarker,
            condition: Condition::Dead,
        };
        assert!(!dead.is_usable());
        assert!(dead.effective_base_secs().is_infinite());
        assert!(Implement::good(ImplementKind::ThickMarker).is_usable());
    }

    #[test]
    fn handoff_times_positive() {
        for k in ImplementKind::ALL {
            assert!(k.handoff_secs() > 0.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ImplementKind::BingoDauber.to_string(), "bingo dauber");
        assert_eq!(ImplementKind::Crayon.to_string(), "crayon");
    }
}
