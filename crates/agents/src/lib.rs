//! # flagsim-agents
//!
//! The human side of the activity, as a calibrated stochastic model:
//!
//! * [`ImplementKind`] — bingo daubers, thick/thin markers, crayons, with
//!   per-cell base costs ordered as the paper observed ("daubers were the
//!   fastest, followed by thick markers, and then thin markers"; crayons
//!   drew complaints) and condition states for failure injection (the §IV
//!   dry-run advice: "Are the markers dead?").
//! * [`StudentProfile`] — skill multipliers and a warm-up curve: early
//!   cells are slow and speed approaches steady state as the student gets
//!   "used to the task and tools", which is what makes a repeat of
//!   scenario 1 "significantly better than in the first trial" and powers
//!   the paper's system-warmup analogy (caching, power-saving exit, JIT).
//! * [`CostModel`] — seeded, deterministic sampling of per-cell coloring
//!   times and marker hand-off delays (lognormal noise via Box–Muller; no
//!   external distribution crates).
//!
//! All times are `f64` seconds here; the simulation layer converts to
//! integer [`SimDuration`](https://docs.rs/flagsim-desim)s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod implement;
pub mod student;

pub use cost::{CellKind, CostModel, CostParams};
pub use implement::{Condition, Implement, ImplementKind};
pub use student::StudentProfile;
