//! Integration tests for the shard layer's two headline guarantees:
//!
//! 1. the lease/retry state machine walks the full failure arc —
//!    heartbeat miss → timeout → (backoff) → reassignment — correctly
//!    under every `RecoveryPolicy`, on a deterministic fake clock;
//! 2. a campaign killed at *any* checkpoint boundary resumes to final
//!    statistics bit-identical to an uninterrupted run.

use flagsim_core::faults::RecoveryPolicy;
use flagsim_metrics::RunStats;
use flagsim_shard::{
    run_sweep, Checkpoint, CoordinatorConfig, JobSpec, LeaseConfig, LeaseGrant, LeaseTable,
    ShardOutcome,
};

fn job(reps: u64) -> JobSpec {
    JobSpec {
        scenario: "4".into(),
        flag: "Mauritius".into(),
        kind: "dauber".into(),
        seed: 0xF1A6,
        reps,
        team: 4,
        warmup: false,
    }
}

fn assert_bits_equal(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    for (name, x, y) in [
        ("mean", a.mean, b.mean),
        ("stddev", a.stddev, b.stddev),
        ("min", a.min, b.min),
        ("max", a.max, b.max),
        ("median", a.median, b.median),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {name} differs bit-wise");
    }
}

fn completed(outcome: ShardOutcome) -> (RunStats, RunStats) {
    match outcome {
        ShardOutcome::Completed(r) => (r.completion, r.waiting),
        other => panic!("expected completion, got {other:?}"),
    }
}

/// The full failure arc on a fake clock, for each recovery policy:
/// grant → partial progress → silence → deadline kill → what happens to
/// the orphaned reps.
#[test]
fn lease_failure_arc_under_each_policy() {
    let base = LeaseConfig {
        chunk: 5,
        heartbeat_timeout_ms: 100,
        backoff_base_ms: 10,
        backoff_cap_ms: 80,
        max_connect_attempts: 3,
        policy: RecoveryPolicy::Rebalance,
    };

    // Rebalance: the survivor inherits the orphaned range immediately.
    let mut t = LeaseTable::new(10, base.clone());
    let a = t.add_worker("a");
    let b = t.add_worker("b");
    t.on_connected(a, 0);
    t.on_connected(b, 0);
    assert_eq!(t.request_lease(a, 0), LeaseGrant::Range { start: 0, end: 5 });
    assert_eq!(t.request_lease(b, 0), LeaseGrant::Range { start: 5, end: 10 });
    t.on_rep_done(a, 0, 40);
    t.on_rep_done(a, 1, 80); // a's last sign of life: t=80
    for (rep, now) in [(5, 50), (6, 100), (7, 150), (8, 181)] {
        t.on_rep_done(b, rep, now);
    }
    assert_eq!(t.check_deadlines(180), vec![], "a is 100ms quiet at 180 — alive");
    assert_eq!(t.check_deadlines(181), vec![a], "101ms of silence kills a");
    t.on_rep_done(b, 9, 185); // b finishes its own lease...
    assert_eq!(
        t.request_lease(b, 186),
        LeaseGrant::Range { start: 2, end: 5 },
        "…and immediately inherits a's unfinished reps"
    );

    // SpareSwap: the orphaned range is embargoed for the replacement
    // delay, then grantable.
    let mut t = LeaseTable::new(5, LeaseConfig {
        policy: RecoveryPolicy::SpareSwap { replacement_delay_secs: 2.0 },
        ..base.clone()
    });
    let a = t.add_worker("a");
    let b = t.add_worker("b");
    t.on_connected(a, 0);
    t.on_connected(b, 0);
    assert_eq!(t.request_lease(a, 0), LeaseGrant::Range { start: 0, end: 5 });
    assert_eq!(t.check_deadlines(101), vec![a]);
    assert_eq!(t.request_lease(b, 102), LeaseGrant::Wait, "embargo holds");
    assert_eq!(t.request_lease(b, 2100), LeaseGrant::Wait, "still holds at 2.0s-ε");
    assert_eq!(
        t.request_lease(b, 2101),
        LeaseGrant::Range { start: 0, end: 5 },
        "replacement delay elapsed"
    );

    // AbortAndReport: the campaign stops granting and carries a reason.
    let mut t = LeaseTable::new(5, LeaseConfig {
        policy: RecoveryPolicy::AbortAndReport,
        ..base
    });
    let a = t.add_worker("a");
    let b = t.add_worker("b");
    t.on_connected(a, 0);
    t.on_connected(b, 0);
    assert!(matches!(t.request_lease(a, 0), LeaseGrant::Range { .. }));
    assert_eq!(t.check_deadlines(101), vec![a]);
    let reason = t.abort_reason().expect("abort recorded");
    assert!(reason.contains("heartbeat timeout"), "{reason}");
    assert_eq!(t.request_lease(b, 102), LeaseGrant::Finished);
}

/// Backoff between reconnect attempts is exponential, capped, and
/// budget-limited — on the same fake clock.
#[test]
fn reconnect_backoff_schedule_is_deterministic() {
    let mut t = LeaseTable::new(1, LeaseConfig {
        chunk: 1,
        heartbeat_timeout_ms: 100,
        backoff_base_ms: 7,
        backoff_cap_ms: 20,
        max_connect_attempts: 5,
        policy: RecoveryPolicy::Rebalance,
    });
    let w = t.add_worker("w");
    let mut now = 0;
    let mut delays = Vec::new();
    for _ in 0..5 {
        assert!(t.may_connect(w, now));
        t.on_connect_failed(w, now);
        if let Some(at) = t.next_attempt_at(w) {
            delays.push(at - now);
            now = at;
        }
    }
    assert_eq!(delays, vec![7, 14, 20, 20], "base, doubled, then capped twice");
    assert!(t.is_dead(w), "fifth failure exhausts the budget");
    assert!(!t.may_connect(w, now + 1000));
}

/// The headline durability gate: kill the campaign after merging k reps
/// — for every k — resume from the checkpoint on disk, and demand final
/// statistics bit-identical to a never-interrupted run.
#[test]
fn crash_at_every_checkpoint_boundary_resumes_bit_identically() {
    let reps = 8;
    let j = job(reps);
    let (fresh_c, fresh_w) = completed(
        run_sweep(&j, &CoordinatorConfig::default()).expect("uninterrupted sweep"),
    );
    let dir = std::env::temp_dir().join(format!("flagsim-killpoints-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    for kill_after in 1..reps {
        let ckpt = dir.join(format!("kill-{kill_after}.ckpt"));
        let halted = run_sweep(
            &j,
            &CoordinatorConfig {
                checkpoint_path: Some(ckpt.clone()),
                checkpoint_every: 1,
                halt_after_reps: Some(kill_after),
                // Serial local path: the merge watermark advances one rep
                // at a time, so the kill lands exactly at `kill_after`.
                local_jobs: 1,
                ..CoordinatorConfig::default()
            },
        )
        .expect("halted sweep");
        match halted {
            ShardOutcome::Halted { merged } => assert!(merged >= kill_after),
            other => panic!("kill point {kill_after}: expected halt, got {other:?}"),
        }
        let ck = Checkpoint::load(&ckpt).expect("checkpoint loads");
        assert!(
            ck.watermark >= 1,
            "kill point {kill_after}: watermark {} should show progress",
            ck.watermark
        );
        let (c, w) = completed(
            run_sweep(
                &j,
                &CoordinatorConfig { resume: Some(ck), ..CoordinatorConfig::default() },
            )
            .unwrap_or_else(|e| panic!("resume from kill point {kill_after}: {e}")),
        );
        assert_bits_equal(&c, &fresh_c, &format!("completion after kill at {kill_after}"));
        assert_bits_equal(&w, &fresh_w, &format!("waiting after kill at {kill_after}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume composes: kill a resumed campaign again, resume again.
#[test]
fn double_kill_double_resume_still_bit_identical() {
    let j = job(9);
    let (fresh_c, _) = completed(
        run_sweep(&j, &CoordinatorConfig::default()).expect("uninterrupted sweep"),
    );
    let dir = std::env::temp_dir().join(format!("flagsim-doublekill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let ckpt = dir.join("sweep.ckpt");
    let base = CoordinatorConfig {
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 1,
        ..CoordinatorConfig::default()
    };
    let first = run_sweep(
        &j,
        &CoordinatorConfig { halt_after_reps: Some(3), ..base.clone() },
    )
    .expect("first kill");
    assert!(matches!(first, ShardOutcome::Halted { .. }));
    let second = run_sweep(
        &j,
        &CoordinatorConfig {
            resume: Some(Checkpoint::load(&ckpt).expect("first checkpoint")),
            halt_after_reps: Some(6),
            ..base.clone()
        },
    )
    .expect("second kill");
    assert!(matches!(second, ShardOutcome::Halted { .. }));
    let (c, _) = completed(
        run_sweep(
            &j,
            &CoordinatorConfig {
                resume: Some(Checkpoint::load(&ckpt).expect("second checkpoint")),
                ..base
            },
        )
        .expect("final resume"),
    );
    assert_bits_equal(&c, &fresh_c, "completion after two kills");
    std::fs::remove_dir_all(&dir).ok();
}
