//! Property tests for the shard wire protocol: every frame must survive
//! `encode` → `decode` exactly, including the observability family
//! (telemetry batches, trace configs, lease grant ids) added alongside
//! the original lease frames.
//!
//! Interned fields (`category`, `name`, arg keys) are drawn from a small
//! fixed vocabulary: the decoder's bounded interner is a deliberate leak
//! cap, and unbounded random names would exhaust it across cases.

use flagsim_shard::{JobSpec, Message, TelemetryBatch, TraceConfig};
use flagsim_telemetry::{FlowRecord, Level, LogRecord, SpanRecord};
use proptest::prelude::*;

/// Short strings over a palette that exercises the JSON escaper: quotes,
/// backslashes, braces, control characters, and multi-byte unicode.
fn small_string() -> impl Strategy<Value = String> {
    const PALETTE: [char; 20] = [
        ' ', 'a', 'Z', '0', '9', '_', '.', '"', '\\', '/', '{', '}', '[', ']', ':', ',', '\n',
        '\t', 'ü', '⚑',
    ];
    proptest::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

fn static_name() -> impl Strategy<Value = &'static str> {
    const NAMES: [&str; 6] = ["sim", "shard", "runtime", "sweep.rep", "lease", "merge"];
    (0usize..NAMES.len()).prop_map(|i| NAMES[i])
}

fn level() -> impl Strategy<Value = Level> {
    (0u8..5).prop_map(|l| match l {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    })
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn span() -> impl Strategy<Value = SpanRecord> {
    (
        (any::<u64>(), opt_u64(), opt_u64()),
        (static_name(), static_name(), small_string()),
        (any::<u64>(), any::<u64>()),
        proptest::collection::vec((static_name(), small_string()), 0..4),
    )
        .prop_map(
            |((id, parent, link), (category, name, track), (start_ns, end_ns), args)| {
                SpanRecord {
                    id,
                    parent,
                    link,
                    category,
                    name,
                    track,
                    // Process labels are never on the wire: the
                    // coordinator stamps them after decode, so a
                    // round-tripped record carries "".
                    process: String::new(),
                    start_ns,
                    end_ns,
                    args,
                }
            },
        )
}

fn log_record() -> impl Strategy<Value = LogRecord> {
    (
        any::<u64>(),
        level(),
        small_string(),
        small_string(),
        proptest::collection::vec((small_string(), small_string()), 0..4),
        small_string(),
    )
        .prop_map(|(ts_ns, level, target, message, fields, track)| LogRecord {
            ts_ns,
            level,
            target,
            message,
            fields,
            track,
            process: String::new(),
        })
}

fn flow() -> impl Strategy<Value = FlowRecord> {
    (any::<u64>(), static_name(), any::<u64>(), small_string(), any::<bool>()).prop_map(
        |(id, name, ts_ns, track, start)| FlowRecord {
            id,
            name,
            ts_ns,
            track,
            process: String::new(),
            start,
        },
    )
}

fn batch() -> impl Strategy<Value = TelemetryBatch> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(span(), 0..5),
        proptest::collection::vec(log_record(), 0..4),
        proptest::collection::vec(flow(), 0..4),
        proptest::collection::vec((small_string(), any::<u64>()), 0..3),
    )
        .prop_map(|(seq, dropped, spans, logs, flows, counters)| TelemetryBatch {
            seq,
            dropped,
            spans,
            logs,
            flows,
            counters,
        })
}

fn trace_config() -> impl Strategy<Value = Option<TraceConfig>> {
    (any::<bool>(), small_string(), level(), any::<bool>(), any::<u64>()).prop_map(
        |(some, campaign, level, spans, sample)| {
            some.then_some(TraceConfig { campaign, level, spans, sample })
        },
    )
}

fn round_trips(msg: &Message) {
    let encoded = msg.encode();
    let decoded = Message::decode(&encoded)
        .unwrap_or_else(|e| panic!("decode failed: {e} for {encoded}"));
    assert_eq!(&decoded, msg, "wire round-trip changed the frame: {encoded}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Telemetry frames round-trip bit-exactly for arbitrary contents.
    #[test]
    fn telemetry_frames_round_trip(b in batch()) {
        round_trips(&Message::Telemetry(b));
    }

    /// Hello frames round-trip with and without a trace context.
    /// (Protocol versions ride as bare JSON numbers through the
    /// f64-based parser, so stay inside exactly-representable range.)
    #[test]
    fn hello_trace_config_round_trips(trace in trace_config(), protocol in 0u64..1_000_000) {
        let job = JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "dauber".into(),
            seed: 7,
            reps: 3,
            team: 4,
            warmup: false,
        };
        round_trips(&Message::Hello { protocol, job, trace });
    }

    /// Lease and lease-done frames round-trip for arbitrary ranges and
    /// grant ids (these ride as decimal strings: full u64 precision).
    #[test]
    fn lease_frames_round_trip(start in any::<u64>(), len in any::<u32>(), grant in any::<u64>()) {
        let end = start.saturating_add(u64::from(len));
        round_trips(&Message::Lease { start, end, grant });
        round_trips(&Message::LeaseDone { start, end });
    }
}
