//! Rep-indexed reorder merging — the determinism heart of the shard.
//!
//! Workers finish repetitions in whatever order the cluster happens to
//! schedule, but [`StreamingStats`] is order-sensitive (its exact sum,
//! Welford recurrence, and P² markers all round differently under
//! reordering). [`MergeState`] is the same reorder-buffer idea
//! `core::sweep`'s parallel path uses, lifted out so the coordinator,
//! the checkpoint format, and the resume path all share it: outcomes
//! arrive keyed by repetition index, park in a buffer, and fold into the
//! accumulators strictly in repetition order — so the final statistics
//! are bit-for-bit what a serial sweep would have produced, at any
//! worker count, with any failure/reassignment history.
//!
//! Duplicate deliveries (a rep re-run because its first worker died
//! after reporting it, or replayed from a checkpoint's pending set) are
//! dropped: merging is idempotent per repetition index.

use flagsim_core::sweep::SweepFailure;
use flagsim_metrics::{RunStats, StreamingStats};
use std::collections::BTreeMap;

/// One repetition's outcome, reduced to what statistics need.
#[derive(Debug, Clone, PartialEq)]
pub enum RepOutcome {
    /// The run succeeded; the two swept metrics, bit-exact.
    Ok {
        /// Completion time in seconds.
        completion: f64,
        /// Total waiting time in seconds.
        waiting: f64,
    },
    /// The run failed (recorded, like `try_sweep`, not fatal).
    Failed {
        /// The error string the run reported.
        error: String,
    },
}

/// Order-restoring accumulator over per-rep outcomes.
#[derive(Debug, Clone)]
pub struct MergeState {
    total: u64,
    next_emit: u64,
    pending: BTreeMap<u64, RepOutcome>,
    completion: StreamingStats,
    waiting: StreamingStats,
    failures: Vec<SweepFailure>,
}

impl MergeState {
    /// An empty merge over `total` repetitions.
    pub fn new(total: u64) -> Self {
        MergeState {
            total,
            next_emit: 0,
            pending: BTreeMap::new(),
            completion: StreamingStats::new(),
            waiting: StreamingStats::new(),
            failures: Vec::new(),
        }
    }

    /// Rebuild a merge mid-campaign: accumulators and failures restored
    /// from a checkpoint, watermark at `next_emit`, plus any
    /// completed-but-unmerged outcomes (they re-enter the reorder
    /// buffer and merge as soon as the gap before them closes).
    pub fn restore(
        total: u64,
        next_emit: u64,
        completion: StreamingStats,
        waiting: StreamingStats,
        failures: Vec<SweepFailure>,
        pending: Vec<(u64, RepOutcome)>,
    ) -> Self {
        let mut m = MergeState {
            total,
            next_emit,
            pending: BTreeMap::new(),
            completion,
            waiting,
            failures,
        };
        for (rep, outcome) in pending {
            m.accept(rep, outcome);
        }
        m
    }

    /// Fold in one repetition's outcome. Outcomes for already-merged or
    /// already-buffered reps are ignored (idempotent). Returns how many
    /// repetitions were *merged* (drained in order) by this call.
    pub fn accept(&mut self, rep: u64, outcome: RepOutcome) -> u64 {
        if rep < self.next_emit || rep >= self.total {
            return 0;
        }
        self.pending.entry(rep).or_insert(outcome);
        let mut merged = 0;
        while let Some(ready) = self.pending.remove(&self.next_emit) {
            match ready {
                RepOutcome::Ok { completion, waiting } => {
                    self.completion.push(completion);
                    self.waiting.push(waiting);
                    if flagsim_telemetry::enabled() {
                        flagsim_telemetry::observe("shard.completion_secs", completion);
                    }
                }
                RepOutcome::Failed { error } => {
                    self.failures.push(SweepFailure { rep: self.next_emit, error });
                }
            }
            self.next_emit += 1;
            merged += 1;
        }
        if merged > 0 && flagsim_telemetry::enabled() {
            flagsim_telemetry::gauge_set("shard.merged", self.next_emit as f64);
        }
        merged
    }

    /// Repetitions merged so far — the checkpoint watermark: every rep
    /// below it is folded into the accumulators, every rep at or above
    /// it is either buffered in [`MergeState::pending_outcomes`] or
    /// still owed.
    pub fn merged(&self) -> u64 {
        self.next_emit
    }

    /// Total repetitions in the campaign.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether every repetition has merged.
    pub fn is_complete(&self) -> bool {
        self.next_emit == self.total
    }

    /// The completed-but-unmerged outcomes (reps above the watermark
    /// with gaps before them), for checkpointing.
    pub fn pending_outcomes(&self) -> Vec<(u64, RepOutcome)> {
        self.pending.iter().map(|(r, o)| (*r, o.clone())).collect()
    }

    /// The repetition indices in `[merged(), total())` that are *not*
    /// sitting in the reorder buffer — the work a resumed campaign still
    /// owes. Returned as maximal contiguous ranges.
    pub fn missing_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = self.next_emit;
        for (&rep, _) in self.pending.iter() {
            if rep > cursor {
                out.push((cursor, rep));
            }
            cursor = rep + 1;
        }
        if cursor < self.total {
            out.push((cursor, self.total));
        }
        out
    }

    /// Borrow the accumulators (for checkpointing).
    pub fn accumulators(&self) -> (&StreamingStats, &StreamingStats) {
        (&self.completion, &self.waiting)
    }

    /// Recorded per-rep failures, in repetition order.
    pub fn failures(&self) -> &[SweepFailure] {
        &self.failures
    }

    /// Freeze into summary statistics. Errors when no repetition
    /// succeeded (mirroring `SweepError::AllFailed`).
    pub fn finish(&self) -> Result<(RunStats, RunStats), String> {
        if self.completion.n() == 0 {
            return match self.failures.first() {
                Some(f) => Err(format!(
                    "all {} repetition(s) failed; first: rep {}: {}",
                    self.total, f.rep, f.error
                )),
                None => Err("no repetitions merged".into()),
            };
        }
        Ok((self.completion.to_stats(), self.waiting.to_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(x: f64) -> RepOutcome {
        RepOutcome::Ok { completion: x, waiting: x / 2.0 }
    }

    #[test]
    fn out_of_order_delivery_matches_in_order() {
        let xs: Vec<f64> = (0..40).map(|i| (i * 37 % 23) as f64 + 0.25).collect();
        let mut serial = MergeState::new(40);
        for (i, &x) in xs.iter().enumerate() {
            serial.accept(i as u64, ok(x));
        }
        // A scrambled order (deterministic permutation).
        let mut scrambled = MergeState::new(40);
        let mut order: Vec<u64> = (0..40).collect();
        order.reverse();
        order.swap(3, 31);
        order.swap(0, 17);
        for &i in &order {
            scrambled.accept(i, ok(xs[i as usize]));
        }
        assert!(serial.is_complete() && scrambled.is_complete());
        let (a, _) = serial.finish().unwrap();
        let (b, _) = scrambled.finish().unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.stddev.to_bits(), b.stddev.to_bits());
        assert_eq!(a.median.to_bits(), b.median.to_bits());
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut m = MergeState::new(3);
        m.accept(0, ok(1.0));
        m.accept(0, ok(999.0)); // late duplicate of a merged rep
        m.accept(2, ok(3.0));
        m.accept(2, ok(888.0)); // duplicate of a buffered rep
        m.accept(1, ok(2.0));
        let (stats, _) = m.finish().unwrap();
        assert_eq!(stats.n, 3);
        assert_eq!(stats.max, 3.0, "duplicates must not leak into stats");
    }

    #[test]
    fn missing_ranges_account_for_buffered_reps() {
        let mut m = MergeState::new(10);
        m.accept(0, ok(1.0));
        m.accept(4, ok(1.0));
        m.accept(5, ok(1.0));
        m.accept(8, ok(1.0));
        assert_eq!(m.merged(), 1);
        assert_eq!(m.missing_ranges(), vec![(1, 4), (6, 8), (9, 10)]);
        assert_eq!(m.pending_outcomes().len(), 3);
    }

    #[test]
    fn failures_record_without_sinking_stats() {
        let mut m = MergeState::new(3);
        m.accept(0, ok(1.0));
        m.accept(1, RepOutcome::Failed { error: "rope snapped".into() });
        m.accept(2, ok(2.0));
        let (stats, _) = m.finish().unwrap();
        assert_eq!(stats.n, 2);
        assert_eq!(m.failures().len(), 1);
        assert_eq!(m.failures()[0].rep, 1);
    }

    #[test]
    fn all_failed_is_an_error() {
        let mut m = MergeState::new(2);
        m.accept(0, RepOutcome::Failed { error: "a".into() });
        m.accept(1, RepOutcome::Failed { error: "b".into() });
        let err = m.finish().unwrap_err();
        assert!(err.contains("all 2 repetition(s) failed"), "{err}");
        assert!(err.contains("rep 0"), "{err}");
    }

    #[test]
    fn restore_replays_pending_into_the_buffer() {
        let mut whole = MergeState::new(6);
        for i in 0..6 {
            whole.accept(i, ok(i as f64));
        }
        // Simulate a checkpoint at watermark 2 with reps 4,5 pending.
        let mut head = MergeState::new(6);
        head.accept(0, ok(0.0));
        head.accept(1, ok(1.0));
        head.accept(4, ok(4.0));
        head.accept(5, ok(5.0));
        let (c, w) = head.accumulators();
        let restored = MergeState::restore(
            6,
            head.merged(),
            c.clone(),
            w.clone(),
            head.failures().to_vec(),
            head.pending_outcomes(),
        );
        let mut resumed = restored;
        assert_eq!(resumed.missing_ranges(), vec![(2, 4)]);
        resumed.accept(2, ok(2.0));
        resumed.accept(3, ok(3.0));
        assert!(resumed.is_complete());
        let (a, aw) = resumed.finish().unwrap();
        let (b, bw) = whole.finish().unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.stddev.to_bits(), b.stddev.to_bits());
        assert_eq!(aw.mean.to_bits(), bw.mean.to_bits());
    }
}
