//! The coordinator: shard a sweep across worker processes, survive
//! their deaths, and land the exact serial answer.
//!
//! One OS thread per endpoint runs the connect → hello → lease loop,
//! feeding every reported repetition through the shared [`MergeState`];
//! the main thread supervises heartbeat deadlines, the wall-clock
//! budget, and the checkpoint cadence. Failure handling is layered:
//!
//! 1. connect failures back off exponentially with an attempt budget;
//! 2. a session that errors or goes silent past the heartbeat timeout
//!    marks its worker dead, and the unfinished part of its lease is
//!    redistributed per the campaign's `RecoveryPolicy`;
//! 3. a dead session's endpoint thread re-registers and reconnects
//!    (bounded by the same attempt budget);
//! 4. when every endpoint thread has given up and work remains, the
//!    coordinator degrades to running the missing repetitions
//!    in-process — same [`run_rep`], same answer, no cluster.
//!
//! [`run_rep`]: flagsim_core::sweep::SweepRunner::run_rep
//!
//! The same code path runs pure in-process sweeps (no endpoints), which
//! is how `--checkpoint`/`--resume`/`--max-wall-secs` work without any
//! workers at all.

use crate::checkpoint::Checkpoint;
use crate::fleet::ObsHub;
use crate::job::{JobSpec, MaterializedJob};
use crate::lease::{LeaseConfig, LeaseGrant, LeaseTable, WorkerId};
use crate::merge::{MergeState, RepOutcome};
use crate::wire::{self, Message, TelemetryBatch, TraceConfig, PROTOCOL_VERSION};
use flagsim_core::sweep::SweepFailure;
use flagsim_metrics::RunStats;
use flagsim_telemetry::log;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Everything that shapes a sharded campaign besides the job itself.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker endpoints (`host:port`). Empty means run in-process.
    pub endpoints: Vec<String>,
    /// Threads for the in-process path (and the degradation path).
    pub local_jobs: usize,
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint whenever this many new reps have merged since the
    /// last save.
    pub checkpoint_every: u64,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume: Option<Checkpoint>,
    /// Soft wall-clock budget: on expiry the coordinator checkpoints
    /// and reports [`ShardOutcome::DeadlineExpired`].
    pub max_wall: Option<Duration>,
    /// Lease sizing, heartbeat/backoff tuning, and the recovery policy.
    pub lease: LeaseConfig,
    /// Test/bench hook: stop abruptly (no final checkpoint — simulating
    /// a kill) once this many reps have merged.
    pub halt_after_reps: Option<u64>,
    /// Suppress stderr progress notes.
    pub quiet: bool,
    /// Fleet-observability hub the coordinator publishes worker state
    /// into (dashboard / `--obs-out`); `None` disables fleet tracking.
    pub obs: Option<ObsHub>,
    /// Rep-sampling stride propagated in the hello trace context:
    /// workers instrument every `trace_sample`-th repetition. 0 picks
    /// automatically (about 256 sampled reps per campaign) so shipping
    /// cost stays bounded no matter how large the sweep; 1 means full
    /// fidelity.
    pub trace_sample: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            endpoints: Vec::new(),
            local_jobs: 1,
            checkpoint_path: None,
            checkpoint_every: 64,
            resume: None,
            max_wall: None,
            lease: LeaseConfig::default(),
            halt_after_reps: None,
            quiet: true,
            obs: None,
            trace_sample: 0,
        }
    }
}

/// Resolve the rep-sampling stride for a campaign: an explicit setting
/// wins; auto (0) aims for about 256 instrumented reps per campaign so
/// per-rep spans never dominate a large sweep's wall clock.
fn resolve_sample(cfg: &CoordinatorConfig, reps: u64) -> u64 {
    if cfg.trace_sample > 0 { cfg.trace_sample } else { (reps / 256).max(1) }
}

/// The campaign's trace id: the hex job fingerprint, identical on every
/// process that materializes the same job.
pub fn campaign_id(job: &JobSpec) -> String {
    job.fingerprint()
}

/// Summary statistics of a completed campaign — bit-identical to what
/// the serial streaming sweep would report.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Completion-time statistics.
    pub completion: RunStats,
    /// Waiting-time statistics.
    pub waiting: RunStats,
    /// Per-rep failures (recorded, not fatal).
    pub failures: Vec<SweepFailure>,
    /// Total repetitions merged (equals the job's rep count).
    pub reps: u64,
}

/// How a campaign ended.
#[derive(Debug)]
pub enum ShardOutcome {
    /// Every repetition merged.
    Completed(ShardResult),
    /// The wall-clock budget expired first; a checkpoint (if configured)
    /// holds the progress.
    DeadlineExpired {
        /// Reps merged before expiry.
        merged: u64,
        /// Total reps in the campaign.
        total: u64,
        /// The checkpoint written on expiry, if checkpointing was on.
        checkpoint: Option<PathBuf>,
    },
    /// `halt_after_reps` tripped (test/bench kill simulation): stopped
    /// abruptly with no final checkpoint.
    Halted {
        /// Reps merged before the simulated kill.
        merged: u64,
    },
}

struct Shared {
    table: LeaseTable,
    merge: MergeState,
    last_ckpt: u64,
    halted: bool,
    deadline_hit: bool,
    fatal: Option<String>,
}

fn now_ms(start: Instant) -> u64 {
    start.elapsed().as_millis() as u64
}

fn lock(shared: &Mutex<Shared>) -> std::sync::MutexGuard<'_, Shared> {
    shared.lock().expect("shard state lock poisoned")
}

/// Fold one outcome into the merge, honoring checkpoint cadence and the
/// halt hook. Call with the state lock held.
fn record(sh: &mut Shared, job: &JobSpec, cfg: &CoordinatorConfig, rep: u64, outcome: RepOutcome) {
    sh.merge.accept(rep, outcome);
    if let (Some(path), true) = (&cfg.checkpoint_path, cfg.checkpoint_every > 0) {
        if sh.merge.merged().saturating_sub(sh.last_ckpt) >= cfg.checkpoint_every {
            match Checkpoint::from_merge(job, &sh.merge).save(path) {
                Ok(()) => sh.last_ckpt = sh.merge.merged(),
                Err(e) => sh.fatal = Some(format!("checkpoint save failed: {e}")),
            }
        }
    }
    if let Some(n) = cfg.halt_after_reps {
        if sh.merge.merged() >= n && !sh.merge.is_complete() {
            sh.halted = true;
        }
    }
}

fn stop_requested(sh: &Shared) -> bool {
    sh.halted || sh.deadline_hit || sh.fatal.is_some()
}

/// Run `job` under `cfg`. Statistics in [`ShardOutcome::Completed`] are
/// bit-for-bit those of the serial streaming sweep, regardless of
/// worker count, failures, or resume history.
pub fn run_sweep(job: &JobSpec, cfg: &CoordinatorConfig) -> Result<ShardOutcome, String> {
    let _span = flagsim_telemetry::span("shard", "coordinate");
    let mat = job.materialize()?;
    let merge = match &cfg.resume {
        Some(ck) => {
            if ck.job.fingerprint() != job.fingerprint() {
                return Err(format!(
                    "resume: checkpoint is for a different campaign \
                     (checkpoint {}, requested {})",
                    ck.job.fingerprint(),
                    job.fingerprint()
                ));
            }
            ck.clone().into_merge()
        }
        None => MergeState::new(job.reps),
    };
    if flagsim_telemetry::enabled() {
        flagsim_telemetry::gauge_set("shard.total_reps", job.reps as f64);
        flagsim_telemetry::gauge_set("shard.endpoints", cfg.endpoints.len() as f64);
    }
    if let Some(hub) = &cfg.obs {
        hub.with(|fv| fv.reset(campaign_id(job), job.reps));
    }
    let start = Instant::now();
    let table = LeaseTable::with_missing(job.reps, &merge.missing_ranges(), cfg.lease.clone());
    let shared = Mutex::new(Shared {
        table,
        merge,
        last_ckpt: cfg.resume.as_ref().map(|c| c.watermark).unwrap_or(0),
        halted: false,
        deadline_hit: false,
        fatal: None,
    });

    if !lock(&shared).merge.is_complete() {
        if cfg.endpoints.is_empty() {
            run_local(&mat, job, cfg, &shared, start);
        } else {
            run_remote(&mat, job, cfg, &shared, start);
        }
    }

    // Everything has stopped; freeze the outcome.
    let sh = shared.into_inner().expect("shard state lock poisoned");
    if let Some(hub) = &cfg.obs {
        let merged = sh.merge.merged();
        hub.with(|fv| fv.merged = merged);
    }
    if let Some(fatal) = sh.fatal {
        return Err(fatal);
    }
    if let Some(reason) = sh.table.abort_reason() {
        return Err(reason.to_owned());
    }
    if sh.halted {
        return Ok(ShardOutcome::Halted { merged: sh.merge.merged() });
    }
    if sh.deadline_hit && !sh.merge.is_complete() {
        let checkpoint = match &cfg.checkpoint_path {
            Some(path) => {
                Checkpoint::from_merge(job, &sh.merge)
                    .save(path)
                    .map_err(|e| format!("checkpoint save on deadline: {e}"))?;
                Some(path.clone())
            }
            None => None,
        };
        return Ok(ShardOutcome::DeadlineExpired {
            merged: sh.merge.merged(),
            total: sh.merge.total(),
            checkpoint,
        });
    }
    if !sh.merge.is_complete() {
        return Err(format!(
            "campaign stalled at {}/{} reps with no workers left",
            sh.merge.merged(),
            sh.merge.total()
        ));
    }
    if let Some(path) = &cfg.checkpoint_path {
        // Final checkpoint: resuming a finished campaign is a no-op.
        Checkpoint::from_merge(job, &sh.merge)
            .save(path)
            .map_err(|e| format!("final checkpoint save: {e}"))?;
    }
    let (completion, waiting) = sh
        .merge
        .finish()
        .map_err(|e| format!("sweep failed: {e}"))?;
    Ok(ShardOutcome::Completed(ShardResult {
        completion,
        waiting,
        failures: sh.merge.failures().to_vec(),
        reps: sh.merge.total(),
    }))
}

/// In-process execution of whatever the merge still owes. Also the
/// degradation path when the cluster is gone.
fn run_local(
    mat: &MaterializedJob,
    job: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    start: Instant,
) {
    let queue: Mutex<Vec<(u64, u64)>> = Mutex::new(lock(shared).merge.missing_ranges());
    let pop = || -> Option<u64> {
        let mut q = queue.lock().expect("rep queue lock poisoned");
        let first = q.first_mut()?;
        let rep = first.0;
        first.0 += 1;
        if first.0 >= first.1 {
            q.remove(0);
        }
        Some(rep)
    };
    let stop = AtomicBool::new(false);
    let jobs = cfg.local_jobs.max(1);
    thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let runner = mat.runner();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(budget) = cfg.max_wall {
                        if start.elapsed() >= budget {
                            lock(shared).deadline_hit = true;
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                    let Some(rep) = pop() else { return };
                    let outcome = match runner.run_rep(rep) {
                        Ok(report) => RepOutcome::Ok {
                            completion: report.completion_secs(),
                            waiting: report.total_wait_secs(),
                        },
                        Err(error) => RepOutcome::Failed { error },
                    };
                    let mut sh = lock(shared);
                    record(&mut sh, job, cfg, rep, outcome);
                    if stop_requested(&sh) {
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
}

/// Drive the endpoint sessions plus the supervisor loop; returns once
/// every thread has stopped and a terminal condition holds.
fn run_remote(
    mat: &MaterializedJob,
    job: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    start: Instant,
) {
    let done = AtomicBool::new(false);
    let threads_alive = AtomicUsize::new(cfg.endpoints.len());
    thread::scope(|s| {
        for endpoint in &cfg.endpoints {
            let done = &done;
            let threads_alive = &threads_alive;
            s.spawn(move || {
                endpoint_sessions(endpoint, job, cfg, shared, done, start);
                threads_alive.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // Supervisor.
        loop {
            thread::sleep(Duration::from_millis(5));
            let now = now_ms(start);
            let mut sh = lock(shared);
            sh.table.check_deadlines(now);
            if let Some(budget) = cfg.max_wall {
                if start.elapsed() >= budget && !sh.merge.is_complete() {
                    sh.deadline_hit = true;
                }
            }
            if let Some(hub) = &cfg.obs {
                let merged = sh.merge.merged();
                hub.with(|fv| {
                    fv.merged = merged;
                    if fv.sample(now) {
                        fv.publish_gauges(now);
                    }
                });
            }
            let terminal = sh.merge.is_complete()
                || stop_requested(&sh)
                || sh.table.abort_reason().is_some();
            if terminal {
                done.store(true, Ordering::Relaxed);
                break;
            }
            let cluster_gone = threads_alive.load(Ordering::Relaxed) == 0;
            if cluster_gone {
                if !cfg.quiet {
                    log::warn(
                        "shard.coordinator",
                        "no workers reachable; degrading to in-process execution",
                        &[
                            ("remaining", (sh.merge.total() - sh.merge.merged()).to_string()),
                            ("total", sh.merge.total().to_string()),
                        ],
                    );
                }
                drop(sh);
                run_local(mat, job, cfg, shared, start);
                done.store(true, Ordering::Relaxed);
                break;
            }
        }
        // Scope exit joins the endpoint threads (they observe `done`).
    });
}

/// One endpoint's lifetime: connect (with backoff), serve sessions,
/// re-register on death, give up when the attempt budget is spent.
fn endpoint_sessions(
    endpoint: &str,
    job: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    done: &AtomicBool,
    start: Instant,
) {
    let Ok(addr) = endpoint.parse::<SocketAddr>() else {
        let mut sh = lock(shared);
        let w = sh.table.add_worker(endpoint);
        sh.table.mark_dead(w, "unparseable endpoint address", now_ms(start));
        return;
    };
    let mut sessions: u32 = 0;
    while !done.load(Ordering::Relaxed) && sessions < cfg.lease.max_connect_attempts.max(1) {
        sessions += 1;
        let w = lock(shared).table.add_worker(endpoint);
        let Some(stream) = connect_with_backoff(addr, w, cfg, shared, done, start) else {
            return; // attempt budget exhausted (slot marked dead) or done
        };
        // A broken session falls through and the loop re-registers.
        let _ = drive_session(stream, w, job, cfg, shared, done, start);
        if lock(shared).merge.is_complete() || !lock(shared).table.is_dead(w) {
            return; // clean shutdown path already ran
        }
    }
}

fn connect_with_backoff(
    addr: SocketAddr,
    w: WorkerId,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    done: &AtomicBool,
    start: Instant,
) -> Option<TcpStream> {
    loop {
        if done.load(Ordering::Relaxed) {
            return None;
        }
        let now = now_ms(start);
        let (may, scheduled) = {
            let sh = lock(shared);
            (sh.table.may_connect(w, now), sh.table.next_attempt_at(w))
        };
        if may {
            match TcpStream::connect_timeout(
                &addr,
                Duration::from_millis(cfg.lease.heartbeat_timeout_ms.max(1)),
            ) {
                Ok(stream) => {
                    lock(shared).table.on_connected(w, now_ms(start));
                    return Some(stream);
                }
                Err(_) => {
                    let mut sh = lock(shared);
                    sh.table.on_connect_failed(w, now_ms(start));
                    if flagsim_telemetry::enabled() {
                        flagsim_telemetry::count("shard.connect_failures", 1);
                    }
                }
            }
        } else if scheduled.is_none() {
            return None; // budget exhausted; slot is dead
        } else {
            thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Grant ids pairing a lease's flow-arrow halves across the trace;
/// process-global so concurrent sessions never collide.
static NEXT_GRANT: AtomicU64 = AtomicU64::new(1);

fn map_id(remap: &mut BTreeMap<u64, u64>, old: u64) -> u64 {
    // A parent/link may reference a span that arrives in a *later*
    // batch (children complete first); reserving its id on first sight
    // keeps cross-batch edges intact.
    *remap
        .entry(old)
        .or_insert_with(|| flagsim_telemetry::alloc_span_ids(1))
}

/// Merge one worker telemetry batch into the coordinator's collector
/// and fleet view: remap span ids into this process's space, stamp
/// every record with the worker's process label, and fold counter
/// deltas in. Strictly observational — nothing here calls [`record`] or
/// touches the merge, which is the determinism argument for shipping
/// being on, off, or lossy.
fn absorb_telemetry(
    batch: TelemetryBatch,
    worker_name: &str,
    remap: &mut BTreeMap<u64, u64>,
    obs: Option<&ObsHub>,
    now: u64,
) {
    if let Some(hub) = obs {
        hub.with(|fv| fv.on_telemetry(worker_name, batch.dropped, now));
    }
    if !flagsim_telemetry::enabled() {
        return;
    }
    flagsim_telemetry::count("shard.telemetry_frames", 1);
    if batch.dropped > 0 {
        flagsim_telemetry::count("shard.telemetry_dropped_records", batch.dropped);
    }
    let spans: Vec<_> = batch
        .spans
        .into_iter()
        .map(|mut s| {
            s.id = map_id(remap, s.id);
            s.parent = s.parent.map(|p| map_id(remap, p));
            s.link = s.link.map(|l| map_id(remap, l));
            s.process = worker_name.to_owned();
            s
        })
        .collect();
    if !spans.is_empty() {
        flagsim_telemetry::submit_spans(spans);
    }
    for mut l in batch.logs {
        l.process = worker_name.to_owned();
        flagsim_telemetry::submit_log(l);
    }
    for mut f in batch.flows {
        f.process = worker_name.to_owned();
        flagsim_telemetry::submit_flow(f);
    }
    for (name, delta) in batch.counters {
        flagsim_telemetry::count(&name, delta);
    }
}

/// After `shutdown`, drain the worker's final telemetry frames until
/// `bye` (or EOF/error). Best-effort: the session is ending either way.
fn drain_goodbye(
    reader: &mut impl std::io::Read,
    worker_name: &str,
    remap: &mut BTreeMap<u64, u64>,
    obs: Option<&ObsHub>,
    now: u64,
) {
    loop {
        match wire::recv(reader) {
            Ok(Some(Message::Telemetry(batch))) => {
                absorb_telemetry(batch, worker_name, remap, obs, now);
            }
            _ => return, // bye, EOF, or anything else: done
        }
    }
}

/// Serve one established session until the campaign finishes, the
/// session breaks (worker marked dead), or `done` is raised.
fn drive_session(
    stream: TcpStream,
    w: WorkerId,
    job: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    done: &AtomicBool,
    start: Instant,
) -> Result<(), ()> {
    let dead = |reason: &str| {
        lock(shared).table.mark_dead(w, reason, now_ms(start));
    };
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(cfg.lease.heartbeat_timeout_ms.max(1))))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        dead("could not clone stream");
        return Err(());
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // Propagate trace context only while this process is collecting;
    // otherwise the worker stays in its disabled fast path.
    let trace = if flagsim_telemetry::enabled() {
        Some(TraceConfig {
            campaign: campaign_id(job),
            level: log::max_level(),
            spans: true,
            sample: resolve_sample(cfg, job.reps),
        })
    } else {
        None
    };
    if wire::send(
        &mut writer,
        &Message::Hello { protocol: PROTOCOL_VERSION, job: job.clone(), trace },
    )
    .is_err()
    {
        dead("hello write failed");
        return Err(());
    }
    let worker_name = match wire::recv(&mut reader) {
        Ok(Some(Message::HelloOk { worker })) => worker,
        Ok(Some(Message::Error { message })) => {
            dead(&format!("worker refused session: {message}"));
            return Err(());
        }
        _ => {
            dead("no hello_ok");
            return Err(());
        }
    };
    let obs = cfg.obs.as_ref();
    if let Some(hub) = obs {
        hub.with(|fv| fv.on_connected(&worker_name, now_ms(start)));
    }
    log::debug(
        "shard.coordinator",
        "session established",
        &[("worker", worker_name.clone())],
    );
    // Worker-local span ids → this process's id space, for the session.
    let mut remap: BTreeMap<u64, u64> = BTreeMap::new();

    let result = drive_leases(
        &mut reader,
        &mut writer,
        w,
        &worker_name,
        &mut remap,
        job,
        cfg,
        shared,
        done,
        start,
    );
    if let Some(hub) = obs {
        hub.with(|fv| fv.on_disconnected(&worker_name));
    }
    result
}

/// The lease grant/report loop of an established session.
#[allow(clippy::too_many_arguments)]
fn drive_leases(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    w: WorkerId,
    worker_name: &str,
    remap: &mut BTreeMap<u64, u64>,
    job: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &Mutex<Shared>,
    done: &AtomicBool,
    start: Instant,
) -> Result<(), ()> {
    let dead = |reason: &str| {
        lock(shared).table.mark_dead(w, reason, now_ms(start));
    };
    let obs = cfg.obs.as_ref();
    loop {
        if done.load(Ordering::Relaxed) {
            // Best-effort goodbye; the worker survives for other sweeps.
            let _ = wire::send(writer, &Message::Shutdown);
            drain_goodbye(reader, worker_name, remap, obs, now_ms(start));
            return Ok(());
        }
        let grant = {
            let mut sh = lock(shared);
            if sh.table.is_dead(w) {
                return Err(()); // supervisor timed us out while idle
            }
            sh.table.request_lease(w, now_ms(start))
        };
        match grant {
            LeaseGrant::Finished => {
                let _ = wire::send(writer, &Message::Shutdown);
                drain_goodbye(reader, worker_name, remap, obs, now_ms(start));
                return Ok(());
            }
            LeaseGrant::Wait => {
                thread::sleep(Duration::from_millis(2));
            }
            LeaseGrant::Range { start: s, end: e } => {
                let grant_id = if flagsim_telemetry::enabled() {
                    let id = NEXT_GRANT.fetch_add(1, Ordering::Relaxed);
                    // Start half of the grant arrow; the worker records
                    // the finish half when it picks the lease up.
                    flagsim_telemetry::flow("lease", id, true);
                    id
                } else {
                    0
                };
                if wire::send(writer, &Message::Lease { start: s, end: e, grant: grant_id })
                    .is_err()
                {
                    dead("lease write failed");
                    return Err(());
                }
                if let Some(hub) = obs {
                    hub.with(|fv| fv.on_lease(worker_name, now_ms(start)));
                }
                if flagsim_telemetry::enabled() {
                    flagsim_telemetry::count("shard.leases_granted", 1);
                }
                loop {
                    match wire::recv(reader) {
                        Ok(Some(Message::Rep { rep, outcome })) => {
                            let now = now_ms(start);
                            if let Some(hub) = obs {
                                hub.with(|fv| fv.on_rep(worker_name, now));
                            }
                            let mut sh = lock(shared);
                            sh.table.on_rep_done(w, rep, now);
                            record(&mut sh, job, cfg, rep, outcome);
                            if stop_requested(&sh) {
                                done.store(true, Ordering::Relaxed);
                            }
                        }
                        Ok(Some(Message::LeaseDone { .. })) => {
                            let now = now_ms(start);
                            if let Some(hub) = obs {
                                hub.with(|fv| fv.on_lease_done(worker_name, now));
                            }
                            lock(shared).table.on_lease_done(w, now);
                            break;
                        }
                        Ok(Some(Message::Telemetry(batch))) => {
                            // Observational only; doubles as a heartbeat
                            // like every other worker frame.
                            let now = now_ms(start);
                            lock(shared).table.on_heartbeat(w, now);
                            absorb_telemetry(batch, worker_name, remap, obs, now);
                        }
                        Ok(Some(Message::Heartbeat)) => {
                            let now = now_ms(start);
                            if let Some(hub) = obs {
                                hub.with(|fv| fv.on_heard(worker_name, now));
                            }
                            lock(shared).table.on_heartbeat(w, now);
                        }
                        Ok(Some(Message::Error { message })) => {
                            dead(&format!("worker error: {message}"));
                            return Err(());
                        }
                        Ok(Some(other)) => {
                            dead(&format!("unexpected frame {other:?}"));
                            return Err(());
                        }
                        Ok(None) => {
                            dead("connection closed mid-lease");
                            return Err(());
                        }
                        Err(_) => {
                            // Read timeout or transport error: the lease
                            // supervisor's verdict, delivered locally.
                            dead("heartbeat timeout");
                            return Err(());
                        }
                    }
                    if done.load(Ordering::Relaxed) {
                        let _ = wire::send(writer, &Message::Shutdown);
                        drain_goodbye(reader, worker_name, remap, obs, now_ms(start));
                        return Ok(());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{serve, WorkerOptions};
    use flagsim_core::sweep::SweepRunner;
    use std::net::TcpListener;

    fn job(reps: u64) -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "dauber".into(),
            seed: 20260808,
            reps,
            team: 4,
            warmup: false,
        }
    }

    fn serial_stats(job: &JobSpec) -> (RunStats, RunStats) {
        let mat = job.materialize().expect("job materializes");
        let result = mat.runner().run().expect("serial sweep runs");
        (result.completion, result.waiting)
    }

    fn spawn_workers(n: usize) -> (Vec<String>, Vec<thread::JoinHandle<()>>) {
        spawn_workers_dropping(n, 0)
    }

    fn spawn_workers_dropping(
        n: usize,
        drop_telemetry_every: u64,
    ) -> (Vec<String>, Vec<thread::JoinHandle<()>>) {
        let mut endpoints = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            endpoints.push(listener.local_addr().expect("addr").to_string());
            handles.push(thread::spawn(move || {
                let opts = WorkerOptions {
                    once: true,
                    name: format!("w{i}"),
                    quiet: true,
                    drop_telemetry_every,
                };
                serve(&listener, &opts).ok();
            }));
        }
        (endpoints, handles)
    }

    fn assert_stats_bits_equal(a: &RunStats, b: &RunStats) {
        assert_eq!(a.n, b.n);
        for (x, y) in [
            (a.mean, b.mean),
            (a.stddev, b.stddev),
            (a.min, b.min),
            (a.max, b.max),
            (a.median, b.median),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "stats differ: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn local_path_matches_serial_sweep() {
        let j = job(16);
        let (serial_c, serial_w) = serial_stats(&j);
        for jobs in [1usize, 3] {
            let cfg = CoordinatorConfig { local_jobs: jobs, ..CoordinatorConfig::default() };
            match run_sweep(&j, &cfg).expect("local sweep") {
                ShardOutcome::Completed(r) => {
                    assert_stats_bits_equal(&r.completion, &serial_c);
                    assert_stats_bits_equal(&r.waiting, &serial_w);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_worker_sweep_is_bit_identical_to_serial() {
        let j = job(20);
        let (serial_c, serial_w) = serial_stats(&j);
        let (endpoints, handles) = spawn_workers(3);
        let cfg = CoordinatorConfig {
            endpoints,
            lease: LeaseConfig { chunk: 3, ..LeaseConfig::default() },
            ..CoordinatorConfig::default()
        };
        match run_sweep(&j, &cfg).expect("sharded sweep") {
            ShardOutcome::Completed(r) => {
                assert_stats_bits_equal(&r.completion, &serial_c);
                assert_stats_bits_equal(&r.waiting, &serial_w);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        for h in handles {
            h.join().expect("worker thread");
        }
    }

    #[test]
    fn telemetry_shipping_on_off_or_lossy_never_moves_stats() {
        let j = job(24);
        let (serial_c, serial_w) = serial_stats(&j);
        // Shipping off, shipping on, and shipping with forced
        // whole-batch drops must all merge to bit-identical statistics:
        // telemetry frames are observational and never reach the merge.
        for drop_every in [None, Some(0u64), Some(2)] {
            let collector = drop_every.map(|_| flagsim_telemetry::Collector::install());
            let (endpoints, handles) = spawn_workers_dropping(2, drop_every.unwrap_or(0));
            let hub = ObsHub::new();
            let cfg = CoordinatorConfig {
                endpoints,
                lease: LeaseConfig { chunk: 4, ..LeaseConfig::default() },
                obs: Some(hub.clone()),
                ..CoordinatorConfig::default()
            };
            match run_sweep(&j, &cfg).expect("sharded sweep") {
                ShardOutcome::Completed(r) => {
                    assert_stats_bits_equal(&r.completion, &serial_c);
                    assert_stats_bits_equal(&r.waiting, &serial_w);
                }
                other => panic!("expected completion, got {other:?}"),
            }
            for h in handles {
                h.join().expect("worker thread");
            }
            // Fleet view saw both worker sessions regardless of mode.
            let snap = hub.snapshot_json(1_000);
            assert!(snap.contains("\"w0\""), "fleet snapshot missing w0: {snap}");
            assert!(snap.contains("\"w1\""), "fleet snapshot missing w1: {snap}");
            assert!(snap.contains(&format!("\"campaign\": \"{}\"", campaign_id(&j))));
            if let Some(col) = collector {
                let _ = col.finish();
            }
        }
    }

    #[test]
    fn unreachable_workers_degrade_to_local_and_still_match_serial() {
        let j = job(8);
        let (serial_c, _) = serial_stats(&j);
        let cfg = CoordinatorConfig {
            // Nothing listens here; connect_timeout + backoff burn the
            // attempt budget fast.
            endpoints: vec!["127.0.0.1:9".into()],
            local_jobs: 2,
            lease: LeaseConfig {
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
                max_connect_attempts: 2,
                heartbeat_timeout_ms: 200,
                ..LeaseConfig::default()
            },
            ..CoordinatorConfig::default()
        };
        match run_sweep(&j, &cfg).expect("degraded sweep") {
            ShardOutcome::Completed(r) => assert_stats_bits_equal(&r.completion, &serial_c),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn worker_death_mid_sweep_reassigns_and_stays_bit_identical() {
        let j = job(18);
        let (serial_c, _) = serial_stats(&j);
        // One real worker, one endpoint that accepts the connection and
        // then drops it after the handshake (a worker that dies holding
        // its first lease).
        let (mut endpoints, handles) = spawn_workers(1);
        let flaky = TcpListener::bind("127.0.0.1:0").expect("bind flaky");
        endpoints.push(flaky.local_addr().expect("addr").to_string());
        let flaky_thread = thread::spawn(move || {
            // Accept, answer the hello, then vanish mid-lease.
            let (stream, _) = flaky.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            if let Ok(Some(Message::Hello { .. })) = wire::recv(&mut reader) {
                wire::send(&mut writer, &Message::HelloOk { worker: "flaky".into() }).ok();
                // Take the lease and hang up without reporting a rep.
                let _ = wire::recv(&mut reader);
            }
            // Dropping the streams closes the connection.
        });
        let cfg = CoordinatorConfig {
            endpoints,
            lease: LeaseConfig {
                chunk: 4,
                heartbeat_timeout_ms: 300,
                backoff_base_ms: 1,
                backoff_cap_ms: 8,
                max_connect_attempts: 2,
                ..LeaseConfig::default()
            },
            ..CoordinatorConfig::default()
        };
        match run_sweep(&j, &cfg).expect("sweep with a dying worker") {
            ShardOutcome::Completed(r) => assert_stats_bits_equal(&r.completion, &serial_c),
            other => panic!("expected completion, got {other:?}"),
        }
        flaky_thread.join().expect("flaky thread");
        for h in handles {
            h.join().expect("worker thread");
        }
    }

    #[test]
    fn halt_then_resume_is_bit_identical_to_uninterrupted() {
        let j = job(14);
        let (serial_c, serial_w) = serial_stats(&j);
        let dir = std::env::temp_dir().join(format!("flagsim-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("halt.ckpt");
        let halted = run_sweep(
            &j,
            &CoordinatorConfig {
                checkpoint_path: Some(ckpt.clone()),
                checkpoint_every: 1,
                halt_after_reps: Some(5),
                ..CoordinatorConfig::default()
            },
        )
        .expect("halted sweep");
        assert!(matches!(halted, ShardOutcome::Halted { merged } if merged >= 5));
        let resume = Checkpoint::load(&ckpt).expect("load checkpoint");
        assert!(resume.watermark >= 1 && resume.watermark < 14, "mid-campaign checkpoint");
        let jr = resume.job.clone();
        let outcome = run_sweep(
            &jr,
            &CoordinatorConfig {
                resume: Some(resume),
                ..CoordinatorConfig::default()
            },
        )
        .expect("resumed sweep");
        match outcome {
            ShardOutcome::Completed(r) => {
                assert_stats_bits_equal(&r.completion, &serial_c);
                assert_stats_bits_equal(&r.waiting, &serial_w);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_deadline_expires_immediately_with_a_checkpoint() {
        let dir = std::env::temp_dir().join(format!("flagsim-shard-dl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("deadline.ckpt");
        let j = job(10);
        let outcome = run_sweep(
            &j,
            &CoordinatorConfig {
                checkpoint_path: Some(ckpt.clone()),
                max_wall: Some(Duration::from_secs(0)),
                ..CoordinatorConfig::default()
            },
        )
        .expect("deadline sweep");
        match outcome {
            ShardOutcome::DeadlineExpired { merged, total, checkpoint } => {
                assert_eq!(total, 10);
                assert!(merged < 10);
                let path = checkpoint.expect("checkpoint written");
                let ck = Checkpoint::load(&path).expect("checkpoint loads");
                assert_eq!(ck.watermark, merged);
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_different_campaign() {
        let mut m = MergeState::new(5);
        m.accept(0, RepOutcome::Ok { completion: 1.0, waiting: 0.5 });
        let ck = Checkpoint::from_merge(&job(5), &m);
        let other = job(7); // different rep count → different fingerprint
        let err = run_sweep(
            &other,
            &CoordinatorConfig { resume: Some(ck), ..CoordinatorConfig::default() },
        )
        .unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
    }

    #[test]
    fn sweep_runner_serial_equals_streaming_serial() {
        // The anchor for every bit-for-bit claim above: the runner's
        // retained serial stats vs its streaming stats path — our gates
        // compare against the streaming path, which run() uses when
        // reports are not retained.
        let j = job(12);
        let mat = j.materialize().expect("materialize");
        let streaming = mat.runner().run().expect("streaming run");
        let retained = SweepRunner::new(&mat.scenario, &mat.flag, &mat.kit, &mat.config)
            .team_size(mat.team)
            .warmup(mat.warmup)
            .reps(mat.reps)
            .retain_reports(true)
            .run()
            .expect("retained run");
        assert_eq!(streaming.completion.n, retained.completion.n);
        assert_eq!(
            streaming.completion.mean.to_bits(),
            retained.completion.mean.to_bits()
        );
    }
}
