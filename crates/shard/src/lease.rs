//! Rep-range leases with heartbeats, deadlines, and recovery.
//!
//! The supervision brain of the shard, kept as a *pure* state machine:
//! time is a `u64` millisecond counter supplied by the caller, never
//! read from a wall clock, so every failure interleaving — heartbeat
//! miss, backoff schedule, reassignment under each policy — is testable
//! deterministically with a fake clock.
//!
//! A worker's life: `Connecting` (with exponential backoff between
//! attempts) → `Active` (holding at most one contiguous rep-range
//! lease) → `Dead` (deadline miss, connection exhaustion, or explicit
//! error). Any protocol frame from the worker refreshes its heartbeat.
//! When a worker dies mid-lease the *unfinished* part of its range —
//! the worker runs reps in ascending order and reports each, so the
//! table advances the lease start on every `on_rep_done` — goes back
//! to the pool under the campaign's
//! [`RecoveryPolicy`](flagsim_core::faults::RecoveryPolicy):
//!
//! * `Rebalance` — returned ranges are immediately grantable to
//!   survivors.
//! * `SpareSwap { replacement_delay_secs }` — returned ranges are
//!   embargoed for the replacement delay (modelling a spare being
//!   fetched) before anyone may claim them.
//! * `AbortAndReport` — the campaign stops granting and reports.

use flagsim_core::faults::RecoveryPolicy;

/// Handle for one worker slot in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerId(pub usize);

/// Tuning for lease granting and failure detection.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// Reps per lease grant.
    pub chunk: u64,
    /// Silence longer than this (ms) declares a worker dead.
    pub heartbeat_timeout_ms: u64,
    /// First reconnect delay (ms); doubles each failed attempt.
    pub backoff_base_ms: u64,
    /// Ceiling on the reconnect delay (ms).
    pub backoff_cap_ms: u64,
    /// Connection attempts before a worker slot is given up on.
    pub max_connect_attempts: u32,
    /// What to do with a dead worker's unfinished lease.
    pub policy: RecoveryPolicy,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            chunk: 8,
            heartbeat_timeout_ms: 2_000,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            max_connect_attempts: 5,
            policy: RecoveryPolicy::Rebalance,
        }
    }
}

/// What the table says when a worker asks for work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseGrant {
    /// Run reps `start..end` (half-open), in ascending order.
    Range {
        /// First rep of the lease.
        start: u64,
        /// One past the last rep.
        end: u64,
    },
    /// No grantable range right now (embargoed returns, or all work is
    /// out on other leases) — ask again later.
    Wait,
    /// Every rep has been leased out and completed or is owed by live
    /// leases; nothing will ever be granted again.
    Finished,
}

#[derive(Debug, Clone)]
enum WorkerState {
    Connecting { attempt: u32, next_try_at: u64 },
    Active { lease: Option<(u64, u64)>, last_seen: u64 },
    Dead { reason: String },
}

#[derive(Debug, Clone)]
struct WorkerSlot {
    name: String,
    state: WorkerState,
}

/// The coordinator-side ledger of who owes which repetitions.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    cfg: LeaseConfig,
    /// Frontier of never-leased work: everything in `next_fresh..total`
    /// has never been granted.
    next_fresh: u64,
    total: u64,
    /// Ranges returned by dead workers, grantable once `embargo_until`.
    returned: Vec<(u64, u64)>,
    embargo_until: u64,
    workers: Vec<WorkerSlot>,
    aborted: Option<String>,
}

impl LeaseTable {
    /// A table over reps `0..total`.
    pub fn new(total: u64, cfg: LeaseConfig) -> Self {
        LeaseTable {
            cfg,
            next_fresh: 0,
            total,
            returned: Vec::new(),
            embargo_until: 0,
            workers: Vec::new(),
            aborted: None,
        }
    }

    /// A table resuming a campaign: `ranges` are the still-owed rep
    /// ranges (from [`MergeState::missing_ranges`]); everything else is
    /// treated as done.
    ///
    /// [`MergeState::missing_ranges`]: crate::merge::MergeState::missing_ranges
    pub fn with_missing(total: u64, ranges: &[(u64, u64)], cfg: LeaseConfig) -> Self {
        let mut t = LeaseTable::new(total, cfg);
        t.next_fresh = total; // nothing is "fresh"; all work flows from `returned`
        t.returned = ranges.to_vec();
        t
    }

    /// Register a worker slot (begins `Connecting`, eligible to try at
    /// time 0).
    pub fn add_worker(&mut self, name: &str) -> WorkerId {
        self.workers.push(WorkerSlot {
            name: name.to_owned(),
            state: WorkerState::Connecting { attempt: 0, next_try_at: 0 },
        });
        WorkerId(self.workers.len() - 1)
    }

    /// Worker display name.
    pub fn name(&self, w: WorkerId) -> &str {
        &self.workers[w.0].name
    }

    /// Whether `w` may attempt a connection at `now` (backoff elapsed,
    /// attempts not exhausted, still `Connecting`).
    pub fn may_connect(&self, w: WorkerId, now: u64) -> bool {
        match &self.workers[w.0].state {
            WorkerState::Connecting { attempt, next_try_at } => {
                *attempt < self.cfg.max_connect_attempts && now >= *next_try_at
            }
            _ => false,
        }
    }

    /// Record a failed connection attempt; schedules the next try with
    /// exponential backoff (`base << attempt`, capped). Exhausting the
    /// attempt budget kills the slot — quietly, not via the recovery
    /// policy: a worker that never connected never held work.
    pub fn on_connect_failed(&mut self, w: WorkerId, now: u64) {
        let slot = &mut self.workers[w.0];
        if let WorkerState::Connecting { attempt, next_try_at } = &mut slot.state {
            *attempt += 1;
            if *attempt >= self.cfg.max_connect_attempts {
                slot.state = WorkerState::Dead {
                    reason: format!("gave up after {attempt} connection attempts"),
                };
                return;
            }
            let shift = (*attempt - 1).min(31);
            let delay = self
                .cfg
                .backoff_base_ms
                .saturating_mul(1u64 << shift)
                .min(self.cfg.backoff_cap_ms);
            *next_try_at = now + delay;
        }
    }

    /// The next scheduled connection attempt time, if `w` is waiting to
    /// reconnect.
    pub fn next_attempt_at(&self, w: WorkerId) -> Option<u64> {
        match &self.workers[w.0].state {
            WorkerState::Connecting { attempt, next_try_at }
                if *attempt < self.cfg.max_connect_attempts =>
            {
                Some(*next_try_at)
            }
            _ => None,
        }
    }

    /// The worker connected and completed its hello handshake.
    pub fn on_connected(&mut self, w: WorkerId, now: u64) {
        self.workers[w.0].state = WorkerState::Active { lease: None, last_seen: now };
    }

    /// Any frame from the worker counts as a heartbeat.
    pub fn on_heartbeat(&mut self, w: WorkerId, now: u64) {
        if let WorkerState::Active { last_seen, .. } = &mut self.workers[w.0].state {
            *last_seen = now;
        }
    }

    /// Grant `w` a lease. Returned (recovered) ranges are preferred over
    /// fresh frontier work once their embargo lapses.
    pub fn request_lease(&mut self, w: WorkerId, now: u64) -> LeaseGrant {
        if self.aborted.is_some() {
            return LeaseGrant::Finished;
        }
        match &self.workers[w.0].state {
            WorkerState::Active { lease: None, .. } => {}
            _ => return LeaseGrant::Wait,
        }
        let grant = if !self.returned.is_empty() && now >= self.embargo_until {
            let (start, orig_end) = self.returned.remove(0);
            let end = orig_end.min(start + self.cfg.chunk.max(1));
            if end < orig_end {
                // Re-queue the tail of an oversized recovered range.
                self.returned.insert(0, (end, orig_end));
            }
            Some((start, end))
        } else if self.next_fresh < self.total {
            let start = self.next_fresh;
            let end = (start + self.cfg.chunk.max(1)).min(self.total);
            self.next_fresh = end;
            Some((start, end))
        } else {
            None
        };
        match grant {
            Some((start, end)) => {
                if let WorkerState::Active { lease, last_seen } = &mut self.workers[w.0].state {
                    *lease = Some((start, end));
                    *last_seen = now;
                }
                LeaseGrant::Range { start, end }
            }
            None if !self.returned.is_empty() => LeaseGrant::Wait,
            None if self.any_outstanding_lease() => LeaseGrant::Wait,
            None => LeaseGrant::Finished,
        }
    }

    /// The worker reported rep `rep` done; advance its lease start so a
    /// later death only returns genuinely unfinished work.
    pub fn on_rep_done(&mut self, w: WorkerId, rep: u64, now: u64) {
        if let WorkerState::Active { lease, last_seen } = &mut self.workers[w.0].state {
            *last_seen = now;
            if let Some((start, end)) = lease {
                if rep + 1 >= *end {
                    *lease = None;
                } else if rep >= *start {
                    *start = rep + 1;
                }
            }
        }
    }

    /// The worker reported its whole lease complete.
    pub fn on_lease_done(&mut self, w: WorkerId, now: u64) {
        if let WorkerState::Active { lease, last_seen } = &mut self.workers[w.0].state {
            *last_seen = now;
            *lease = None;
        }
    }

    /// Declare `w` dead (connection dropped, protocol error, …),
    /// applying the recovery policy to its unfinished lease.
    pub fn mark_dead(&mut self, w: WorkerId, reason: &str, now: u64) {
        let slot = &mut self.workers[w.0];
        let lease = match &slot.state {
            WorkerState::Active { lease, .. } => *lease,
            WorkerState::Dead { .. } => return,
            WorkerState::Connecting { .. } => None,
        };
        slot.state = WorkerState::Dead { reason: reason.to_owned() };
        if flagsim_telemetry::enabled() {
            flagsim_telemetry::count("shard.worker_deaths", 1);
        }
        if let Some((start, end)) = lease {
            if start < end {
                match self.cfg.policy {
                    RecoveryPolicy::Rebalance => self.returned.push((start, end)),
                    RecoveryPolicy::SpareSwap { replacement_delay_secs } => {
                        self.returned.push((start, end));
                        let delay_ms = (replacement_delay_secs.max(0.0) * 1000.0) as u64;
                        self.embargo_until = self.embargo_until.max(now + delay_ms);
                    }
                    RecoveryPolicy::AbortAndReport => {
                        self.returned.push((start, end));
                        self.aborted = Some(format!(
                            "worker {} died ({reason}) holding reps {start}..{end}; policy is abort",
                            slot.name
                        ));
                    }
                }
            }
        }
    }

    /// Sweep heartbeats against `now`; returns the workers newly
    /// declared dead this call. Only workers *holding a lease* are
    /// subject to the timeout: a leased worker streams one frame per
    /// repetition so silence means death, while an idle worker is
    /// silent simply because the coordinator drives the protocol.
    pub fn check_deadlines(&mut self, now: u64) -> Vec<WorkerId> {
        let timeout = self.cfg.heartbeat_timeout_ms;
        let stale: Vec<WorkerId> = self
            .workers
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.state {
                WorkerState::Active { lease: Some(_), last_seen }
                    if now.saturating_sub(*last_seen) > timeout =>
                {
                    Some(WorkerId(i))
                }
                _ => None,
            })
            .collect();
        for &w in &stale {
            self.mark_dead(w, "heartbeat timeout", now);
        }
        stale
    }

    /// Workers currently `Active`.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|s| matches!(s.state, WorkerState::Active { .. }))
            .count()
    }

    /// Whether `w` has been declared dead.
    pub fn is_dead(&self, w: WorkerId) -> bool {
        matches!(self.workers[w.0].state, WorkerState::Dead { .. })
    }

    /// Why `w` was declared dead, if it was.
    pub fn dead_reason(&self, w: WorkerId) -> Option<&str> {
        match &self.workers[w.0].state {
            WorkerState::Dead { reason } => Some(reason),
            _ => None,
        }
    }

    /// Whether every registered worker slot is dead.
    pub fn all_dead(&self) -> bool {
        !self.workers.is_empty()
            && self
                .workers
                .iter()
                .all(|s| matches!(s.state, WorkerState::Dead { .. }))
    }

    /// The abort reason, if the recovery policy stopped the campaign.
    pub fn abort_reason(&self) -> Option<&str> {
        self.aborted.as_deref()
    }

    /// Whether any active worker still holds a lease.
    fn any_outstanding_lease(&self) -> bool {
        self.workers.iter().any(|s| {
            matches!(s.state, WorkerState::Active { lease: Some(_), .. })
        })
    }

    /// Un-granted work remaining (fresh frontier plus returned ranges),
    /// in reps.
    pub fn ungranted_reps(&self) -> u64 {
        let fresh = self.total - self.next_fresh;
        let returned: u64 = self.returned.iter().map(|(s, e)| e - s).sum();
        fresh + returned
    }

    /// Drain every un-granted range (fresh and returned, embargo
    /// ignored) — the in-process degradation path claims all remaining
    /// work at once when the cluster is gone.
    pub fn drain_for_local(&mut self) -> Vec<(u64, u64)> {
        let mut out = std::mem::take(&mut self.returned);
        if self.next_fresh < self.total {
            out.push((self.next_fresh, self.total));
            self.next_fresh = self.total;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            chunk: 4,
            heartbeat_timeout_ms: 100,
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            max_connect_attempts: 4,
            policy: RecoveryPolicy::Rebalance,
        }
    }

    #[test]
    fn leases_cover_the_range_exactly_once() {
        let mut t = LeaseTable::new(10, cfg());
        let a = t.add_worker("a");
        let b = t.add_worker("b");
        t.on_connected(a, 0);
        t.on_connected(b, 0);
        let mut seen = Vec::new();
        loop {
            let mut granted = false;
            for &w in &[a, b] {
                match t.request_lease(w, 1) {
                    LeaseGrant::Range { start, end } => {
                        for r in start..end {
                            seen.push(r);
                            t.on_rep_done(w, r, 1);
                        }
                        granted = true;
                    }
                    LeaseGrant::Wait => {}
                    LeaseGrant::Finished => {}
                }
            }
            if !granted {
                break;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(t.request_lease(a, 2), LeaseGrant::Finished);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut t = LeaseTable::new(1, cfg());
        let w = t.add_worker("w");
        assert!(t.may_connect(w, 0));
        t.on_connect_failed(w, 0); // attempt 1 → delay 10
        assert_eq!(t.next_attempt_at(w), Some(10));
        assert!(!t.may_connect(w, 9));
        assert!(t.may_connect(w, 10));
        t.on_connect_failed(w, 10); // attempt 2 → delay 20
        assert_eq!(t.next_attempt_at(w), Some(30));
        t.on_connect_failed(w, 30); // attempt 3 → delay 40
        assert_eq!(t.next_attempt_at(w), Some(70));
        t.on_connect_failed(w, 70); // attempt 4 = budget → dead
        assert_eq!(t.next_attempt_at(w), None);
        assert!(t.all_dead() && t.is_dead(w));
        let reason = t.dead_reason(w).expect("dead slots have a reason");
        assert!(reason.contains("connection attempts"), "{reason}");
        assert!(t.abort_reason().is_none(), "connect exhaustion is not an abort");
    }

    #[test]
    fn heartbeat_timeout_returns_unfinished_reps_under_rebalance() {
        let mut t = LeaseTable::new(8, cfg());
        let a = t.add_worker("a");
        let b = t.add_worker("b");
        t.on_connected(a, 0);
        t.on_connected(b, 0);
        let LeaseGrant::Range { start, end } = t.request_lease(a, 0) else {
            panic!("expected a lease");
        };
        assert_eq!((start, end), (0, 4));
        t.on_rep_done(a, 0, 10); // a finishes rep 0, then goes silent
        t.on_heartbeat(b, 150);
        let dead = t.check_deadlines(150);
        assert_eq!(dead, vec![a]);
        // b inherits the unfinished tail 1..4 before fresh work.
        assert_eq!(t.request_lease(b, 151), LeaseGrant::Range { start: 1, end: 4 });
    }

    #[test]
    fn spare_policy_embargoes_recovered_work() {
        let mut t = LeaseTable::new(8, LeaseConfig {
            policy: RecoveryPolicy::SpareSwap { replacement_delay_secs: 1.0 },
            ..cfg()
        });
        let a = t.add_worker("a");
        let b = t.add_worker("b");
        t.on_connected(a, 0);
        t.on_connected(b, 0);
        assert!(matches!(t.request_lease(a, 0), LeaseGrant::Range { .. }));
        let _ = t.check_deadlines(200); // a dies; 0..4 embargoed until 1200
        // b gets fresh work while the recovered range is embargoed...
        assert_eq!(t.request_lease(b, 300), LeaseGrant::Range { start: 4, end: 8 });
        t.on_lease_done(b, 400);
        // ...must Wait during the embargo even though work exists...
        assert_eq!(t.request_lease(b, 500), LeaseGrant::Wait);
        // ...and claims it once the replacement delay lapses.
        assert_eq!(t.request_lease(b, 1200), LeaseGrant::Range { start: 0, end: 4 });
    }

    #[test]
    fn abort_policy_stops_granting() {
        let mut t = LeaseTable::new(8, LeaseConfig {
            policy: RecoveryPolicy::AbortAndReport,
            ..cfg()
        });
        let a = t.add_worker("a");
        let b = t.add_worker("b");
        t.on_connected(a, 0);
        t.on_connected(b, 0);
        assert!(matches!(t.request_lease(a, 0), LeaseGrant::Range { .. }));
        t.mark_dead(a, "socket reset", 50);
        let reason = t.abort_reason().expect("abort recorded");
        assert!(reason.contains("socket reset"), "{reason}");
        assert_eq!(t.request_lease(b, 60), LeaseGrant::Finished);
    }

    #[test]
    fn rep_done_shrinks_the_returned_range() {
        let mut t = LeaseTable::new(4, cfg());
        let a = t.add_worker("a");
        t.on_connected(a, 0);
        assert_eq!(t.request_lease(a, 0), LeaseGrant::Range { start: 0, end: 4 });
        t.on_rep_done(a, 0, 1);
        t.on_rep_done(a, 1, 2);
        t.mark_dead(a, "killed", 3);
        let b = t.add_worker("b");
        t.on_connected(b, 3);
        // Only 2..4 comes back — reps 0 and 1 were acknowledged.
        assert_eq!(t.request_lease(b, 4), LeaseGrant::Range { start: 2, end: 4 });
    }

    #[test]
    fn finishing_the_last_rep_of_a_lease_releases_it() {
        let mut t = LeaseTable::new(4, cfg());
        let a = t.add_worker("a");
        t.on_connected(a, 0);
        assert!(matches!(t.request_lease(a, 0), LeaseGrant::Range { .. }));
        for r in 0..4 {
            t.on_rep_done(a, r, 1);
        }
        t.mark_dead(a, "late death", 2);
        let b = t.add_worker("b");
        t.on_connected(b, 2);
        // Nothing to recover: the lease was fully acknowledged.
        assert_eq!(t.request_lease(b, 3), LeaseGrant::Finished);
    }

    #[test]
    fn with_missing_serves_only_the_gaps() {
        let mut t = LeaseTable::new(10, LeaseConfig { chunk: 16, ..cfg() });
        // Resume: reps 3..5 and 8..10 still owed.
        let mut t2 = LeaseTable::with_missing(10, &[(3, 5), (8, 10)], LeaseConfig {
            chunk: 16,
            ..cfg()
        });
        let a = t2.add_worker("a");
        t2.on_connected(a, 0);
        assert_eq!(t2.request_lease(a, 0), LeaseGrant::Range { start: 3, end: 5 });
        t2.on_lease_done(a, 1);
        assert_eq!(t2.request_lease(a, 1), LeaseGrant::Range { start: 8, end: 10 });
        t2.on_lease_done(a, 2);
        assert_eq!(t2.request_lease(a, 2), LeaseGrant::Finished);
        // An un-resumed table over the same total serves everything.
        let b = t.add_worker("b");
        t.on_connected(b, 0);
        assert_eq!(t.request_lease(b, 0), LeaseGrant::Range { start: 0, end: 10 });
    }

    #[test]
    fn drain_for_local_claims_everything() {
        let mut t = LeaseTable::new(12, cfg());
        let a = t.add_worker("a");
        t.on_connected(a, 0);
        assert!(matches!(t.request_lease(a, 0), LeaseGrant::Range { .. }));
        t.on_rep_done(a, 0, 1);
        t.mark_dead(a, "gone", 2);
        let ranges = t.drain_for_local();
        let total: u64 = ranges.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 11, "all reps except the acknowledged one");
        assert_eq!(t.ungranted_reps(), 0);
    }
}
