//! The coordinator↔worker wire protocol.
//!
//! Framing is deliberately primitive: a 4-byte big-endian length prefix
//! followed by that many bytes of UTF-8 JSON. The JSON is written by
//! hand and parsed back with `telemetry::json` (the workspace is
//! offline — no serde), and every float crosses the wire as its IEEE-754
//! bit pattern via [`f64_bits_hex`], because the merged statistics must
//! be *bit-for-bit* identical to a serial sweep and decimal round-trips
//! are lossy.
//!
//! Session shape (coordinator drives, worker answers):
//!
//! ```text
//! C → W   hello   {protocol, job}
//! W → C   hello_ok {worker}
//! C → W   lease   {start, end}          # end exclusive
//! W → C   rep     {rep, ok, completion, waiting | error}   × (end-start)
//! W → C   lease_done {start, end}
//! ...more leases...
//! C → W   shutdown
//! W → C   bye
//! ```
//!
//! Any frame a worker sends doubles as a heartbeat: repetitions take
//! milliseconds, so a healthy worker is never silent for long, and the
//! coordinator's lease supervisor treats prolonged silence as death.

use crate::job::JobSpec;
use crate::merge::RepOutcome;
use flagsim_telemetry::json::{self, f64_bits_hex, f64_from_bits_hex, json_string, Value};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Protocol revision; both sides must agree exactly.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame body, to fail fast on a corrupt or hostile
/// length prefix instead of attempting a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = body.len() as u64;
    if len > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection); timeouts and
/// mid-frame EOFs surface as `Err`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Every message either side can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator → worker: open a session for `job`.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        protocol: u64,
        /// The campaign both sides will compute identically.
        job: JobSpec,
    },
    /// Worker → coordinator: session accepted.
    HelloOk {
        /// Worker's self-chosen name (diagnostics only).
        worker: String,
    },
    /// Coordinator → worker: run reps `start..end` (end exclusive).
    Lease {
        /// First repetition of the lease.
        start: u64,
        /// One past the last repetition.
        end: u64,
    },
    /// Worker → coordinator: one repetition's outcome.
    Rep {
        /// Repetition index.
        rep: u64,
        /// Metrics or failure, bit-exact.
        outcome: RepOutcome,
    },
    /// Worker → coordinator: every rep of the lease has been reported.
    LeaseDone {
        /// Echo of the lease start.
        start: u64,
        /// Echo of the lease end.
        end: u64,
    },
    /// Worker → coordinator: still alive (sent when idle; any other
    /// frame also refreshes the heartbeat).
    Heartbeat,
    /// Coordinator → worker: wind down the session.
    Shutdown,
    /// Worker → coordinator: acknowledging shutdown, about to close.
    Bye,
    /// Either direction: a protocol-level failure, before closing.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Message {
    /// Encode as one JSON object (the body of one frame).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Message::Hello { protocol, job } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"hello\",\"protocol\":{protocol},\"job\":{}}}",
                    job.to_json()
                );
            }
            Message::HelloOk { worker } => {
                let _ = write!(out, "{{\"type\":\"hello_ok\",\"worker\":{}}}", json_string(worker));
            }
            Message::Lease { start, end } => {
                let _ = write!(out, "{{\"type\":\"lease\",\"start\":\"{start}\",\"end\":\"{end}\"}}");
            }
            Message::Rep { rep, outcome } => match outcome {
                RepOutcome::Ok { completion, waiting } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"rep\",\"rep\":\"{rep}\",\"ok\":true,\"completion\":\"{}\",\"waiting\":\"{}\"}}",
                        f64_bits_hex(*completion),
                        f64_bits_hex(*waiting)
                    );
                }
                RepOutcome::Failed { error } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"rep\",\"rep\":\"{rep}\",\"ok\":false,\"error\":{}}}",
                        json_string(error)
                    );
                }
            },
            Message::LeaseDone { start, end } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"lease_done\",\"start\":\"{start}\",\"end\":\"{end}\"}}"
                );
            }
            Message::Heartbeat => out.push_str("{\"type\":\"heartbeat\"}"),
            Message::Shutdown => out.push_str("{\"type\":\"shutdown\"}"),
            Message::Bye => out.push_str("{\"type\":\"bye\"}"),
            Message::Error { message } => {
                let _ = write!(out, "{{\"type\":\"error\",\"message\":{}}}", json_string(message));
            }
        }
        out
    }

    /// Decode one frame body.
    pub fn decode(body: &str) -> Result<Message, String> {
        let v = json::parse(body).map_err(|e| format!("bad frame: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("bad frame: missing \"type\"")?;
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("bad {ty:?} frame: missing field {key:?}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {ty:?} frame: field {key:?} is not a u64"))
        };
        match ty {
            "hello" => {
                let protocol = v
                    .get("protocol")
                    .and_then(Value::as_f64)
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .ok_or("bad hello frame: missing protocol")? as u64;
                let job = v.get("job").ok_or("bad hello frame: missing job")?;
                Ok(Message::Hello {
                    protocol,
                    job: JobSpec::from_value(job)?,
                })
            }
            "hello_ok" => Ok(Message::HelloOk {
                worker: v
                    .get("worker")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_owned(),
            }),
            "lease" => Ok(Message::Lease {
                start: u64_field("start")?,
                end: u64_field("end")?,
            }),
            "rep" => {
                let rep = u64_field("rep")?;
                let ok = match v.get("ok") {
                    Some(Value::Bool(b)) => *b,
                    _ => return Err("bad rep frame: missing bool \"ok\"".into()),
                };
                let outcome = if ok {
                    let bits = |key: &str| -> Result<f64, String> {
                        let s = v
                            .get(key)
                            .and_then(Value::as_str)
                            .ok_or_else(|| format!("bad rep frame: missing {key:?}"))?;
                        f64_from_bits_hex(s)
                    };
                    RepOutcome::Ok {
                        completion: bits("completion")?,
                        waiting: bits("waiting")?,
                    }
                } else {
                    RepOutcome::Failed {
                        error: v
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown worker error")
                            .to_owned(),
                    }
                };
                Ok(Message::Rep { rep, outcome })
            }
            "lease_done" => Ok(Message::LeaseDone {
                start: u64_field("start")?,
                end: u64_field("end")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "shutdown" => Ok(Message::Shutdown),
            "bye" => Ok(Message::Bye),
            "error" => Ok(Message::Error {
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown peer error")
                    .to_owned(),
            }),
            other => Err(format!("bad frame: unknown type {other:?}")),
        }
    }
}

/// Write one encoded [`Message`] as a frame.
pub fn send(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Read and decode one [`Message`]; `Ok(None)` on clean EOF.
pub fn recv(r: &mut impl Read) -> io::Result<Option<Message>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Message::decode(&body)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "thick".into(),
            seed: 0xDEAD_BEEF_DEAD_BEEF,
            reps: 1 << 60,
            team: 4,
            warmup: true,
        }
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Hello { protocol: PROTOCOL_VERSION, job: job() },
            Message::HelloOk { worker: "w-1".into() },
            Message::Lease { start: u64::MAX - 8, end: u64::MAX },
            Message::Rep {
                rep: 7,
                outcome: RepOutcome::Ok { completion: 123.456789, waiting: -0.0 },
            },
            Message::Rep {
                rep: 8,
                outcome: RepOutcome::Failed { error: "team too small \"quoted\"".into() },
            },
            Message::LeaseDone { start: 0, end: 16 },
            Message::Heartbeat,
            Message::Shutdown,
            Message::Bye,
            Message::Error { message: "protocol 2 != 1".into() },
        ];
        for m in messages {
            let back = Message::decode(&m.encode()).unwrap_or_else(|e| {
                panic!("{e} for {:?}", m.encode());
            });
            assert_eq!(back, m);
        }
    }

    #[test]
    fn rep_metrics_cross_the_wire_bit_exactly() {
        let x = 1.0f64 / 3.0;
        let m = Message::Rep {
            rep: 0,
            outcome: RepOutcome::Ok { completion: x, waiting: x * 1e-300 },
        };
        match Message::decode(&m.encode()).unwrap() {
            Message::Rep { outcome: RepOutcome::Ok { completion, waiting }, .. } => {
                assert_eq!(completion.to_bits(), x.to_bits());
                assert_eq!(waiting.to_bits(), (x * 1e-300).to_bits());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"heartbeat\"}").unwrap();
        write_frame(&mut buf, "{\"type\":\"bye\"}").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"type\":\"heartbeat\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"type\":\"bye\"}");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        // A hostile length prefix must not allocate.
        let mut r = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(read_frame(&mut r).is_err());
        // EOF mid-frame is an error, not a clean close.
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"bye\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
        // Garbage bodies fail to decode.
        assert!(Message::decode("{\"type\":\"warp\"}").is_err());
        assert!(Message::decode("not json").is_err());
    }
}
