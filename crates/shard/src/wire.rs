//! The coordinator↔worker wire protocol.
//!
//! Framing is deliberately primitive: a 4-byte big-endian length prefix
//! followed by that many bytes of UTF-8 JSON. The JSON is written by
//! hand and parsed back with `telemetry::json` (the workspace is
//! offline — no serde), and every float crosses the wire as its IEEE-754
//! bit pattern via [`f64_bits_hex`], because the merged statistics must
//! be *bit-for-bit* identical to a serial sweep and decimal round-trips
//! are lossy.
//!
//! Session shape (coordinator drives, worker answers):
//!
//! ```text
//! C → W   hello   {protocol, job, trace?}
//! W → C   hello_ok {worker}
//! C → W   lease   {start, end, grant}   # end exclusive
//! W → C   rep     {rep, ok, completion, waiting | error}   × (end-start)
//! W → C   telemetry {seq, dropped, spans, logs, flows, counters}  # 0+
//! W → C   lease_done {start, end}
//! ...more leases...
//! C → W   shutdown
//! W → C   bye
//! ```
//!
//! Any frame a worker sends doubles as a heartbeat: repetitions take
//! milliseconds, so a healthy worker is never silent for long, and the
//! coordinator's lease supervisor treats prolonged silence as death.
//!
//! `telemetry` frames are strictly *observational*: the coordinator
//! routes them into its collector and fleet view only — never into the
//! statistics merge — so shipping (on, off, or lossy) cannot perturb the
//! bit-for-bit result. The optional `trace` field on `hello` is likewise
//! ignored by older decoders, so [`PROTOCOL_VERSION`] stays at 1.

use crate::job::JobSpec;
use crate::merge::RepOutcome;
use flagsim_telemetry::json::{self, f64_bits_hex, f64_from_bits_hex, json_string, Value};
use flagsim_telemetry::{intern, FlowRecord, Level, LogRecord, SpanRecord};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Protocol revision; both sides must agree exactly.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame body, to fail fast on a corrupt or hostile
/// length prefix instead of attempting a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = body.len() as u64;
    if len > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection); timeouts and
/// mid-frame EOFs surface as `Err`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Trace context a coordinator propagates to its workers in `hello`:
/// the campaign identity plus what the worker should record and ship.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Campaign trace id (hex of the job fingerprint); every span a
    /// worker ships is stamped with it.
    pub campaign: String,
    /// Minimum severity of log records worth shipping.
    pub level: Level,
    /// Whether the worker should record and ship spans at all.
    pub spans: bool,
    /// Rep-sampling stride: instrument every `sample`-th repetition
    /// (0 and 1 both mean every rep). Sampling bounds shipping cost on
    /// large campaigns; lease spans and logs are never sampled away.
    pub sample: u64,
}

/// One batch of observability records shipped worker → coordinator.
/// Contents are ids/timestamps from the *worker's* counters and epoch;
/// the coordinator remaps ids into its own space on receipt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryBatch {
    /// Batch sequence number within the session (1-based, monotonic) —
    /// lets the coordinator count gaps a lossy worker dropped.
    pub seq: u64,
    /// Records the worker discarded (bounded buffers) before this batch.
    pub dropped: u64,
    /// Completed spans since the previous batch.
    pub spans: Vec<SpanRecord>,
    /// Structured log records since the previous batch.
    pub logs: Vec<LogRecord>,
    /// Flow-arrow halves since the previous batch.
    pub flows: Vec<FlowRecord>,
    /// Counter deltas since the previous batch, `(name, delta)`.
    pub counters: Vec<(String, u64)>,
}

/// Every message either side can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator → worker: open a session for `job`.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        protocol: u64,
        /// The campaign both sides will compute identically.
        job: JobSpec,
        /// Trace context when the coordinator is collecting telemetry;
        /// `None` (and absent on the wire) otherwise.
        trace: Option<TraceConfig>,
    },
    /// Worker → coordinator: session accepted.
    HelloOk {
        /// Worker's self-chosen name (diagnostics only).
        worker: String,
    },
    /// Coordinator → worker: run reps `start..end` (end exclusive).
    Lease {
        /// First repetition of the lease.
        start: u64,
        /// One past the last repetition.
        end: u64,
        /// Grant id pairing the coordinator's flow-arrow start with the
        /// worker's finish in a merged trace. Zero when untraced.
        grant: u64,
    },
    /// Worker → coordinator: a batch of observability records.
    Telemetry(TelemetryBatch),
    /// Worker → coordinator: one repetition's outcome.
    Rep {
        /// Repetition index.
        rep: u64,
        /// Metrics or failure, bit-exact.
        outcome: RepOutcome,
    },
    /// Worker → coordinator: every rep of the lease has been reported.
    LeaseDone {
        /// Echo of the lease start.
        start: u64,
        /// Echo of the lease end.
        end: u64,
    },
    /// Worker → coordinator: still alive (sent when idle; any other
    /// frame also refreshes the heartbeat).
    Heartbeat,
    /// Coordinator → worker: wind down the session.
    Shutdown,
    /// Worker → coordinator: acknowledging shutdown, about to close.
    Bye,
    /// Either direction: a protocol-level failure, before closing.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Message {
    /// Encode as one JSON object (the body of one frame).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Message::Hello { protocol, job, trace } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"hello\",\"protocol\":{protocol},\"job\":{}",
                    job.to_json()
                );
                if let Some(t) = trace {
                    let _ = write!(
                        out,
                        ",\"trace\":{{\"campaign\":{},\"level\":\"{}\",\"spans\":{},\"sample\":\"{}\"}}",
                        json_string(&t.campaign),
                        t.level,
                        t.spans,
                        t.sample
                    );
                }
                out.push('}');
            }
            Message::HelloOk { worker } => {
                let _ = write!(out, "{{\"type\":\"hello_ok\",\"worker\":{}}}", json_string(worker));
            }
            Message::Lease { start, end, grant } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"lease\",\"start\":\"{start}\",\"end\":\"{end}\",\"grant\":\"{grant}\"}}"
                );
            }
            Message::Telemetry(batch) => encode_telemetry(&mut out, batch),
            Message::Rep { rep, outcome } => match outcome {
                RepOutcome::Ok { completion, waiting } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"rep\",\"rep\":\"{rep}\",\"ok\":true,\"completion\":\"{}\",\"waiting\":\"{}\"}}",
                        f64_bits_hex(*completion),
                        f64_bits_hex(*waiting)
                    );
                }
                RepOutcome::Failed { error } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"rep\",\"rep\":\"{rep}\",\"ok\":false,\"error\":{}}}",
                        json_string(error)
                    );
                }
            },
            Message::LeaseDone { start, end } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"lease_done\",\"start\":\"{start}\",\"end\":\"{end}\"}}"
                );
            }
            Message::Heartbeat => out.push_str("{\"type\":\"heartbeat\"}"),
            Message::Shutdown => out.push_str("{\"type\":\"shutdown\"}"),
            Message::Bye => out.push_str("{\"type\":\"bye\"}"),
            Message::Error { message } => {
                let _ = write!(out, "{{\"type\":\"error\",\"message\":{}}}", json_string(message));
            }
        }
        out
    }

    /// Decode one frame body.
    pub fn decode(body: &str) -> Result<Message, String> {
        let v = json::parse(body).map_err(|e| format!("bad frame: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("bad frame: missing \"type\"")?;
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("bad {ty:?} frame: missing field {key:?}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {ty:?} frame: field {key:?} is not a u64"))
        };
        match ty {
            "hello" => {
                let protocol = v
                    .get("protocol")
                    .and_then(Value::as_f64)
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .ok_or("bad hello frame: missing protocol")? as u64;
                let job = v.get("job").ok_or("bad hello frame: missing job")?;
                // `trace` is optional: its absence means "don't collect",
                // and a malformed one is ignored rather than fatal — the
                // campaign must not fail over observability config.
                let trace = v.get("trace").and_then(decode_trace_config);
                Ok(Message::Hello {
                    protocol,
                    job: JobSpec::from_value(job)?,
                    trace,
                })
            }
            "hello_ok" => Ok(Message::HelloOk {
                worker: v
                    .get("worker")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_owned(),
            }),
            "lease" => Ok(Message::Lease {
                start: u64_field("start")?,
                end: u64_field("end")?,
                // Absent from pre-observability coordinators: untraced.
                grant: u64_field("grant").unwrap_or(0),
            }),
            "telemetry" => decode_telemetry(&v).map(Message::Telemetry),
            "rep" => {
                let rep = u64_field("rep")?;
                let ok = match v.get("ok") {
                    Some(Value::Bool(b)) => *b,
                    _ => return Err("bad rep frame: missing bool \"ok\"".into()),
                };
                let outcome = if ok {
                    let bits = |key: &str| -> Result<f64, String> {
                        let s = v
                            .get(key)
                            .and_then(Value::as_str)
                            .ok_or_else(|| format!("bad rep frame: missing {key:?}"))?;
                        f64_from_bits_hex(s)
                    };
                    RepOutcome::Ok {
                        completion: bits("completion")?,
                        waiting: bits("waiting")?,
                    }
                } else {
                    RepOutcome::Failed {
                        error: v
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown worker error")
                            .to_owned(),
                    }
                };
                Ok(Message::Rep { rep, outcome })
            }
            "lease_done" => Ok(Message::LeaseDone {
                start: u64_field("start")?,
                end: u64_field("end")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "shutdown" => Ok(Message::Shutdown),
            "bye" => Ok(Message::Bye),
            "error" => Ok(Message::Error {
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown peer error")
                    .to_owned(),
            }),
            other => Err(format!("bad frame: unknown type {other:?}")),
        }
    }
}

fn encode_telemetry(out: &mut String, batch: &TelemetryBatch) {
    let _ = write!(
        out,
        "{{\"type\":\"telemetry\",\"seq\":\"{}\",\"dropped\":\"{}\",\"spans\":[",
        batch.seq, batch.dropped
    );
    for (i, s) in batch.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":\"{}\"", s.id);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":\"{p}\"");
        }
        if let Some(l) = s.link {
            let _ = write!(out, ",\"link\":\"{l}\"");
        }
        let _ = write!(
            out,
            ",\"cat\":{},\"name\":{},\"track\":{},\"start\":\"{}\",\"end\":\"{}\",\"args\":[",
            json_string(s.category),
            json_string(s.name),
            json_string(&s.track),
            s.start_ns,
            s.end_ns
        );
        for (j, (k, val)) in s.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", json_string(k), json_string(val));
        }
        out.push_str("]}");
    }
    out.push_str("],\"logs\":[");
    for (i, l) in batch.logs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ts\":\"{}\",\"level\":\"{}\",\"target\":{},\"msg\":{},\"track\":{},\"fields\":[",
            l.ts_ns,
            l.level,
            json_string(&l.target),
            json_string(&l.message),
            json_string(&l.track)
        );
        for (j, (k, val)) in l.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", json_string(k), json_string(val));
        }
        out.push_str("]}");
    }
    out.push_str("],\"flows\":[");
    for (i, f) in batch.flows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"name\":{},\"ts\":\"{}\",\"track\":{},\"start\":{}}}",
            f.id,
            json_string(f.name),
            f.ts_ns,
            json_string(&f.track),
            f.start
        );
    }
    out.push_str("],\"counters\":[");
    for (i, (name, delta)) in batch.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},\"{delta}\"]", json_string(name));
    }
    out.push_str("]}");
}

/// A u64 shipped as a decimal string (the JSON parser is f64-based, so
/// bare numbers would lose precision past 2^53).
fn u64_of(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_str).and_then(|s| s.parse().ok())
}

fn str_of<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    v.get(key).and_then(Value::as_str)
}

fn pairs_of(v: &Value, key: &str) -> Vec<(String, String)> {
    v.get(key)
        .and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|pair| {
                    let kv = pair.as_array()?;
                    match kv {
                        [k, val] => Some((k.as_str()?.to_owned(), val.as_str()?.to_owned())),
                        _ => None,
                    }
                })
                .collect()
        })
        .unwrap_or_default()
}

fn decode_trace_config(v: &Value) -> Option<TraceConfig> {
    Some(TraceConfig {
        campaign: str_of(v, "campaign")?.to_owned(),
        level: Level::parse(str_of(v, "level")?).ok()?,
        spans: matches!(v.get("spans"), Some(Value::Bool(true))),
        // Absent on frames from a pre-sampling coordinator: every rep.
        sample: u64_of(v, "sample").unwrap_or(1),
    })
}

fn decode_span(v: &Value) -> Option<SpanRecord> {
    Some(SpanRecord {
        id: u64_of(v, "id")?,
        parent: u64_of(v, "parent"),
        link: u64_of(v, "link"),
        category: intern(str_of(v, "cat")?),
        name: intern(str_of(v, "name")?),
        track: str_of(v, "track").unwrap_or_default().to_owned(),
        process: String::new(),
        start_ns: u64_of(v, "start")?,
        end_ns: u64_of(v, "end")?,
        args: pairs_of(v, "args")
            .into_iter()
            .map(|(k, val)| (intern(&k), val))
            .collect(),
    })
}

fn decode_log(v: &Value) -> Option<LogRecord> {
    Some(LogRecord {
        ts_ns: u64_of(v, "ts")?,
        level: Level::parse(str_of(v, "level")?).ok()?,
        target: str_of(v, "target")?.to_owned(),
        message: str_of(v, "msg")?.to_owned(),
        fields: pairs_of(v, "fields"),
        track: str_of(v, "track").unwrap_or_default().to_owned(),
        process: String::new(),
    })
}

fn decode_flow(v: &Value) -> Option<FlowRecord> {
    Some(FlowRecord {
        id: u64_of(v, "id")?,
        name: intern(str_of(v, "name")?),
        ts_ns: u64_of(v, "ts")?,
        track: str_of(v, "track").unwrap_or_default().to_owned(),
        process: String::new(),
        start: matches!(v.get("start"), Some(Value::Bool(true))),
    })
}

fn decode_telemetry(v: &Value) -> Result<TelemetryBatch, String> {
    let records = |key: &str| -> Vec<Value> {
        v.get(key)
            .and_then(Value::as_array)
            .map(|a| a.to_vec())
            .unwrap_or_default()
    };
    // Individually malformed records are skipped, not fatal: telemetry
    // is observational, and a coordinator must not kill a session (and
    // re-run its reps) over one bad record from a skewed worker build.
    Ok(TelemetryBatch {
        seq: u64_of(v, "seq").ok_or("bad telemetry frame: missing seq")?,
        dropped: u64_of(v, "dropped").unwrap_or(0),
        spans: records("spans").iter().filter_map(decode_span).collect(),
        logs: records("logs").iter().filter_map(decode_log).collect(),
        flows: records("flows").iter().filter_map(decode_flow).collect(),
        counters: pairs_of(v, "counters")
            .into_iter()
            .filter_map(|(name, delta)| Some((name, delta.parse().ok()?)))
            .collect(),
    })
}

/// Write one encoded [`Message`] as a frame.
pub fn send(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Read and decode one [`Message`]; `Ok(None)` on clean EOF.
pub fn recv(r: &mut impl Read) -> io::Result<Option<Message>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Message::decode(&body)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "thick".into(),
            seed: 0xDEAD_BEEF_DEAD_BEEF,
            reps: 1 << 60,
            team: 4,
            warmup: true,
        }
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Hello { protocol: PROTOCOL_VERSION, job: job(), trace: None },
            Message::Hello {
                protocol: PROTOCOL_VERSION,
                job: job(),
                trace: Some(TraceConfig {
                    campaign: "00c0ffee00c0ffee".into(),
                    level: Level::Debug,
                    spans: true,
                    sample: u64::MAX - 3,
                }),
            },
            Message::HelloOk { worker: "w-1".into() },
            Message::Lease { start: u64::MAX - 8, end: u64::MAX, grant: 17 },
            Message::Telemetry(TelemetryBatch {
                seq: 3,
                dropped: 2,
                spans: vec![SpanRecord {
                    id: u64::MAX - 1,
                    parent: Some(4),
                    link: None,
                    category: "sim",
                    name: "rep",
                    track: "session \"q\"".into(),
                    process: String::new(),
                    start_ns: 1,
                    end_ns: u64::MAX,
                    args: vec![("rep", "9".into())],
                }],
                logs: vec![LogRecord {
                    ts_ns: 5,
                    level: Level::Warn,
                    target: "shard.worker".into(),
                    message: "lease retried".into(),
                    fields: vec![("attempt".into(), "2".into())],
                    track: "session".into(),
                    process: String::new(),
                }],
                flows: vec![FlowRecord {
                    id: 17,
                    name: "lease",
                    ts_ns: 6,
                    track: "session".into(),
                    process: String::new(),
                    start: false,
                }],
                counters: vec![("shard.worker_reps".into(), u64::MAX)],
            }),
            Message::Telemetry(TelemetryBatch::default()),
            Message::Rep {
                rep: 7,
                outcome: RepOutcome::Ok { completion: 123.456789, waiting: -0.0 },
            },
            Message::Rep {
                rep: 8,
                outcome: RepOutcome::Failed { error: "team too small \"quoted\"".into() },
            },
            Message::LeaseDone { start: 0, end: 16 },
            Message::Heartbeat,
            Message::Shutdown,
            Message::Bye,
            Message::Error { message: "protocol 2 != 1".into() },
        ];
        for m in messages {
            let back = Message::decode(&m.encode()).unwrap_or_else(|e| {
                panic!("{e} for {:?}", m.encode());
            });
            assert_eq!(back, m);
        }
    }

    #[test]
    fn rep_metrics_cross_the_wire_bit_exactly() {
        let x = 1.0f64 / 3.0;
        let m = Message::Rep {
            rep: 0,
            outcome: RepOutcome::Ok { completion: x, waiting: x * 1e-300 },
        };
        match Message::decode(&m.encode()).unwrap() {
            Message::Rep { outcome: RepOutcome::Ok { completion, waiting }, .. } => {
                assert_eq!(completion.to_bits(), x.to_bits());
                assert_eq!(waiting.to_bits(), (x * 1e-300).to_bits());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn pre_observability_frames_still_decode() {
        // A coordinator from before telemetry shipping sends leases with
        // no grant and hellos with no trace; both must decode cleanly.
        let lease = Message::decode("{\"type\":\"lease\",\"start\":\"0\",\"end\":\"8\"}").unwrap();
        assert_eq!(lease, Message::Lease { start: 0, end: 8, grant: 0 });
        let hello = Message::Hello { protocol: PROTOCOL_VERSION, job: job(), trace: None };
        match Message::decode(&hello.encode()).unwrap() {
            Message::Hello { trace, .. } => assert_eq!(trace, None),
            other => panic!("wrong decode: {other:?}"),
        }
        // A malformed trace config is ignored, not fatal.
        let mut body = hello.encode();
        body.truncate(body.len() - 1);
        body.push_str(",\"trace\":{\"campaign\":\"x\",\"level\":\"loud\",\"spans\":true}}");
        match Message::decode(&body).unwrap() {
            Message::Hello { trace, .. } => assert_eq!(trace, None),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn telemetry_decode_skips_malformed_records() {
        let body = "{\"type\":\"telemetry\",\"seq\":\"1\",\"dropped\":\"0\",\
                    \"spans\":[{\"id\":\"1\",\"cat\":\"sim\",\"name\":\"ok\",\"track\":\"t\",\
                    \"start\":\"0\",\"end\":\"1\",\"args\":[]},{\"name\":\"no id\"}],\
                    \"logs\":[{\"level\":\"nope\"}],\"flows\":[],\
                    \"counters\":[[\"good\",\"3\"],[\"bad\",\"x\"]]}";
        match Message::decode(body).unwrap() {
            Message::Telemetry(batch) => {
                assert_eq!(batch.spans.len(), 1);
                assert_eq!(batch.spans[0].name, "ok");
                assert!(batch.logs.is_empty());
                assert_eq!(batch.counters, vec![("good".to_owned(), 3)]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"heartbeat\"}").unwrap();
        write_frame(&mut buf, "{\"type\":\"bye\"}").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"type\":\"heartbeat\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"type\":\"bye\"}");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        // A hostile length prefix must not allocate.
        let mut r = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(read_frame(&mut r).is_err());
        // EOF mid-frame is an error, not a clean close.
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"bye\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
        // Garbage bodies fail to decode.
        assert!(Message::decode("{\"type\":\"warp\"}").is_err());
        assert!(Message::decode("not json").is_err());
    }
}
