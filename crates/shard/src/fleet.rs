//! Fleet observability: live per-worker state for a sharded campaign.
//!
//! The coordinator publishes session events (connects, leases, reps,
//! heartbeats, telemetry frames) into an [`ObsHub`]; the CLI polls the
//! hub to draw the `--dashboard` fleet panel and dumps a snapshot for
//! `--obs-out`. All timestamps are caller-supplied integer milliseconds
//! relative to the campaign start — the same fake-clock discipline as
//! the lease table — so a view fed from deterministic inputs serializes
//! byte-identically every run.
//!
//! Nothing here touches the statistics merge: the hub is written from
//! the same session threads but read only by observers, and losing or
//! disabling it cannot change a campaign's result.

use flagsim_telemetry::json::json_string;
use flagsim_telemetry::TimeSeries;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Points retained per worker rate series (at [`SAMPLE_EVERY_MS`] that
/// is a few minutes of history — plenty for a live sparkline).
const SERIES_CAP: usize = 256;

/// Sampling cadence for the per-worker cumulative-reps series.
pub const SAMPLE_EVERY_MS: u64 = 100;

/// Trailing window for reps/s readings.
const RATE_WINDOW_MS: u64 = 2_000;

/// Live state of one worker session slot, keyed by the worker's
/// self-reported name.
#[derive(Debug, Clone)]
pub struct WorkerObs {
    /// Worker name from `hello_ok`.
    pub name: String,
    /// A session is currently established.
    pub connected: bool,
    /// Sessions established beyond the first.
    pub reconnects: u64,
    /// Leases granted to this worker.
    pub leases: u64,
    /// A granted lease has not yet reported `lease_done`.
    pub lease_in_flight: bool,
    /// Repetitions this worker has reported.
    pub reps_done: u64,
    /// Milliseconds (campaign clock) of the last frame received.
    pub last_heard_ms: u64,
    /// Telemetry frames received from this worker.
    pub shipped_frames: u64,
    /// Records the worker reported dropping before shipping.
    pub dropped_records: u64,
    /// Cumulative reps over time, sampled every [`SAMPLE_EVERY_MS`].
    pub series: TimeSeries,
}

impl WorkerObs {
    fn new(name: &str) -> WorkerObs {
        WorkerObs {
            name: name.to_owned(),
            connected: false,
            reconnects: 0,
            leases: 0,
            lease_in_flight: false,
            reps_done: 0,
            last_heard_ms: 0,
            shipped_frames: 0,
            dropped_records: 0,
            series: TimeSeries::new(SERIES_CAP),
        }
    }

    /// Reps per second over the trailing rate window.
    pub fn reps_per_sec(&self) -> f64 {
        self.series.rate_per_sec(RATE_WINDOW_MS)
    }

    /// Milliseconds since this worker was last heard from.
    pub fn silence_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.last_heard_ms)
    }
}

/// The whole campaign's observable state.
#[derive(Debug, Clone, Default)]
pub struct FleetView {
    /// Campaign trace id (hex job fingerprint).
    pub campaign: String,
    /// Total repetitions in the campaign.
    pub total_reps: u64,
    /// Repetitions merged so far.
    pub merged: u64,
    workers: BTreeMap<String, WorkerObs>,
    last_sample_ms: Option<u64>,
}

impl FleetView {
    /// Start (or restart) tracking a campaign.
    pub fn reset(&mut self, campaign: String, total_reps: u64) {
        *self = FleetView {
            campaign,
            total_reps,
            ..FleetView::default()
        };
    }

    fn worker_mut(&mut self, name: &str) -> &mut WorkerObs {
        self.workers
            .entry(name.to_owned())
            .or_insert_with(|| WorkerObs::new(name))
    }

    /// A session with `name` was established.
    pub fn on_connected(&mut self, name: &str, t_ms: u64) {
        let seen = self.workers.contains_key(name);
        let w = self.worker_mut(name);
        if seen {
            w.reconnects += 1;
        }
        w.connected = true;
        w.lease_in_flight = false;
        w.last_heard_ms = t_ms;
    }

    /// The session with `name` ended (cleanly or not).
    pub fn on_disconnected(&mut self, name: &str) {
        let w = self.worker_mut(name);
        w.connected = false;
        w.lease_in_flight = false;
    }

    /// A lease was granted to `name`.
    pub fn on_lease(&mut self, name: &str, t_ms: u64) {
        let w = self.worker_mut(name);
        w.leases += 1;
        w.lease_in_flight = true;
        w.last_heard_ms = t_ms;
    }

    /// `name` reported its lease complete.
    pub fn on_lease_done(&mut self, name: &str, t_ms: u64) {
        let w = self.worker_mut(name);
        w.lease_in_flight = false;
        w.last_heard_ms = t_ms;
    }

    /// `name` reported one repetition.
    pub fn on_rep(&mut self, name: &str, t_ms: u64) {
        let w = self.worker_mut(name);
        w.reps_done += 1;
        w.last_heard_ms = t_ms;
    }

    /// Any other frame from `name` (heartbeat refresh).
    pub fn on_heard(&mut self, name: &str, t_ms: u64) {
        self.worker_mut(name).last_heard_ms = t_ms;
    }

    /// A telemetry frame arrived from `name`, reporting `dropped`
    /// records lost on the worker side since the previous frame.
    pub fn on_telemetry(&mut self, name: &str, dropped: u64, t_ms: u64) {
        let w = self.worker_mut(name);
        w.shipped_frames += 1;
        w.dropped_records += dropped;
        w.last_heard_ms = t_ms;
    }

    /// Workers with an established session.
    pub fn live_workers(&self) -> usize {
        self.workers.values().filter(|w| w.connected).count()
    }

    /// Leases granted but not yet reported done.
    pub fn leases_in_flight(&self) -> usize {
        self.workers.values().filter(|w| w.lease_in_flight).count()
    }

    /// Iterate workers in name order.
    pub fn workers(&self) -> impl Iterator<Item = &WorkerObs> {
        self.workers.values()
    }

    /// Sample each worker's cumulative rep count into its series when
    /// [`SAMPLE_EVERY_MS`] has elapsed. Returns whether a sample was
    /// taken (callers use this to pace gauge publication).
    pub fn sample(&mut self, t_ms: u64) -> bool {
        let due = match self.last_sample_ms {
            Some(last) => t_ms.saturating_sub(last) >= SAMPLE_EVERY_MS,
            None => true,
        };
        if !due {
            return false;
        }
        self.last_sample_ms = Some(t_ms);
        for w in self.workers.values_mut() {
            w.series.push(t_ms, w.reps_done as f64);
        }
        true
    }

    /// Publish the fleet as `shard.*` gauges on the installed collector
    /// (a no-op when telemetry is disabled).
    pub fn publish_gauges(&self, now_ms: u64) {
        if !flagsim_telemetry::enabled() {
            return;
        }
        flagsim_telemetry::gauge_set("shard.fleet.live_workers", self.live_workers() as f64);
        flagsim_telemetry::gauge_set(
            "shard.fleet.leases_in_flight",
            self.leases_in_flight() as f64,
        );
        flagsim_telemetry::gauge_set("shard.fleet.merged_reps", self.merged as f64);
        for w in self.workers.values() {
            let base = format!("shard.worker.{}", w.name);
            flagsim_telemetry::gauge_set(&format!("{base}.reps_per_s"), w.reps_per_sec());
            flagsim_telemetry::gauge_set(&format!("{base}.reps_done"), w.reps_done as f64);
            flagsim_telemetry::gauge_set(
                &format!("{base}.heartbeat_age_ms"),
                w.silence_ms(now_ms) as f64,
            );
            flagsim_telemetry::gauge_set(&format!("{base}.reconnects"), w.reconnects as f64);
            flagsim_telemetry::gauge_set(
                &format!("{base}.telemetry_shipped"),
                w.shipped_frames as f64,
            );
            flagsim_telemetry::gauge_set(
                &format!("{base}.telemetry_dropped"),
                w.dropped_records as f64,
            );
        }
    }

    /// Deterministic JSON snapshot (the `--obs-out` payload): same
    /// events at the same fake-clock times → byte-identical output.
    pub fn to_json(&self, now_ms: u64) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"campaign\": {},", json_string(&self.campaign));
        let _ = writeln!(out, "  \"total_reps\": {},", self.total_reps);
        let _ = writeln!(out, "  \"merged\": {},", self.merged);
        let _ = writeln!(out, "  \"now_ms\": {now_ms},");
        let _ = writeln!(out, "  \"live_workers\": {},", self.live_workers());
        let _ = writeln!(out, "  \"leases_in_flight\": {},", self.leases_in_flight());
        out.push_str("  \"workers\": [");
        for (i, w) in self.workers.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_string(&w.name));
            let _ = write!(out, "\"connected\": {}, ", w.connected);
            let _ = write!(out, "\"reconnects\": {}, ", w.reconnects);
            let _ = write!(out, "\"leases\": {}, ", w.leases);
            let _ = write!(out, "\"lease_in_flight\": {}, ", w.lease_in_flight);
            let _ = write!(out, "\"reps_done\": {}, ", w.reps_done);
            let _ = write!(out, "\"reps_per_s\": {:.3}, ", w.reps_per_sec());
            let _ = write!(out, "\"heartbeat_age_ms\": {}, ", w.silence_ms(now_ms));
            let _ = write!(out, "\"telemetry_shipped\": {}, ", w.shipped_frames);
            let _ = write!(out, "\"telemetry_dropped\": {}, ", w.dropped_records);
            let _ = write!(out, "\"series\": {}}}", w.series.to_json());
        }
        if !self.workers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Shared handle to a [`FleetView`]: cloned into the coordinator's
/// config and polled by observers (dashboard ticker, `--obs-out`).
#[derive(Debug, Clone, Default)]
pub struct ObsHub {
    inner: Arc<Mutex<FleetView>>,
}

impl ObsHub {
    /// A hub over an empty fleet view.
    pub fn new() -> ObsHub {
        ObsHub::default()
    }

    /// Run `f` with exclusive access to the view.
    pub fn with<R>(&self, f: impl FnOnce(&mut FleetView) -> R) -> R {
        let mut fv = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut fv)
    }

    /// Deterministic JSON snapshot at `now_ms` (campaign clock).
    pub fn snapshot_json(&self, now_ms: u64) -> String {
        self.with(|fv| fv.to_json(now_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripted_view() -> FleetView {
        let mut fv = FleetView::default();
        fv.reset("00c0ffee00c0ffee".into(), 64);
        fv.on_connected("w-0", 10);
        fv.on_connected("w-1", 12);
        fv.on_lease("w-0", 20);
        fv.on_lease("w-1", 21);
        for t in 0..10u64 {
            fv.on_rep("w-0", 30 + t * 100);
            if t % 2 == 0 {
                fv.on_rep("w-1", 35 + t * 100);
            }
            fv.sample(40 + t * 100);
        }
        fv.on_telemetry("w-0", 0, 950);
        fv.on_telemetry("w-1", 3, 960);
        fv.on_lease_done("w-0", 970);
        fv.on_disconnected("w-1");
        fv.merged = 15;
        fv
    }

    #[test]
    fn fake_clock_snapshots_are_byte_identical() {
        let a = scripted_view().to_json(1_000);
        let b = scripted_view().to_json(1_000);
        assert_eq!(a, b);
        flagsim_telemetry::json::parse(&a).expect("snapshot is valid JSON");
        assert!(a.contains("\"campaign\": \"00c0ffee00c0ffee\""), "{a}");
        assert!(a.contains("\"name\": \"w-0\""), "{a}");
        assert!(a.contains("\"telemetry_dropped\": 3"), "{a}");
    }

    #[test]
    fn counts_and_reconnects_track_session_events() {
        let mut fv = scripted_view();
        assert_eq!(fv.live_workers(), 1, "w-1 disconnected");
        assert_eq!(fv.leases_in_flight(), 0, "done or dropped with the session");
        fv.on_connected("w-1", 1_100);
        let w1 = fv.workers().find(|w| w.name == "w-1").expect("w-1");
        assert_eq!(w1.reconnects, 1);
        assert!(w1.connected);
        let w0 = fv.workers().find(|w| w.name == "w-0").expect("w-0");
        assert_eq!(w0.reps_done, 10);
        assert_eq!(w0.leases, 1);
        assert!(!w0.lease_in_flight);
        assert_eq!(w0.silence_ms(1_000), 30, "lease_done heard at 970");
    }

    #[test]
    fn sampling_is_paced_and_rates_are_positive_under_load() {
        let mut fv = FleetView::default();
        fv.reset("c".into(), 8);
        fv.on_connected("w", 0);
        assert!(fv.sample(0));
        assert!(!fv.sample(SAMPLE_EVERY_MS / 2), "not due yet");
        for t in 1..=20u64 {
            fv.on_rep("w", t * SAMPLE_EVERY_MS);
            assert!(fv.sample(t * SAMPLE_EVERY_MS));
        }
        let w = fv.workers().next().expect("worker");
        assert!(w.reps_per_sec() > 0.0, "rate: {}", w.reps_per_sec());
    }

    #[test]
    fn lease_wait_silence_is_visible() {
        let mut fv = FleetView::default();
        fv.reset("c".into(), 4);
        fv.on_connected("w", 5);
        fv.on_heard("w", 250);
        let w = fv.workers().next().expect("worker");
        assert_eq!(w.silence_ms(1_250), 1_000);
        assert_eq!(w.silence_ms(100), 0, "saturates, never underflows");
    }
}
