//! Durable sweep checkpoints: kill the process, resume the campaign,
//! finish with bit-identical statistics.
//!
//! A checkpoint is the coordinator's merge state frozen to JSON: the
//! job's canonical spec and fingerprint, the merged-rep *watermark*,
//! exact bit-level [`StreamingStats`](flagsim_metrics::StreamingStats)
//! snapshots of both accumulators (every float as IEEE-754 hex bits —
//! see `metrics::streaming`), the recorded per-rep failures, and any
//! completed-but-unmerged repetitions still parked in the reorder
//! buffer. Restoring replays the pending set into a fresh
//! [`MergeState`], so the resumed campaign owes exactly the reps the
//! killed one never finished, and the accumulators continue from the
//! same internal state they would have had — which is what makes
//! resume-after-kill equal an uninterrupted run bit for bit.
//!
//! Files are written atomically (temp file + rename) so a kill *during*
//! a checkpoint write leaves the previous checkpoint intact, and
//! [`load`](Checkpoint::load) refuses files whose fingerprint does not
//! match their own job spec (truncation, tampering, or a spec edit).

use crate::job::JobSpec;
use crate::merge::{MergeState, RepOutcome};
use flagsim_core::sweep::SweepFailure;
use flagsim_metrics::StreamingStats;
use flagsim_telemetry::json::{self, f64_bits_hex, f64_from_bits_hex, json_string, Value};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Checkpoint file format revision.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A sweep campaign frozen mid-flight.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The campaign's job spec (source of truth on resume).
    pub job: JobSpec,
    /// Reps `0..watermark` are folded into the accumulators.
    pub watermark: u64,
    /// Completion-seconds accumulator, bit-exact.
    pub completion: StreamingStats,
    /// Waiting-seconds accumulator, bit-exact.
    pub waiting: StreamingStats,
    /// Per-rep failures recorded so far, in rep order.
    pub failures: Vec<SweepFailure>,
    /// Completed-but-unmerged outcomes (above the watermark, behind a
    /// gap).
    pub pending: Vec<(u64, RepOutcome)>,
}

impl Checkpoint {
    /// Freeze a merge state (plus its job) into a checkpoint.
    pub fn from_merge(job: &JobSpec, merge: &MergeState) -> Self {
        let (completion, waiting) = merge.accumulators();
        Checkpoint {
            job: job.clone(),
            watermark: merge.merged(),
            completion: completion.clone(),
            waiting: waiting.clone(),
            failures: merge.failures().to_vec(),
            pending: merge.pending_outcomes(),
        }
    }

    /// Thaw back into a merge state ready to accept the missing reps.
    pub fn into_merge(self) -> MergeState {
        MergeState::restore(
            self.job.reps,
            self.watermark,
            self.completion,
            self.waiting,
            self.failures,
            self.pending,
        )
    }

    /// Serialize to the checkpoint JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"version\":{CHECKPOINT_VERSION},\"fingerprint\":{},\"job\":{},\"watermark\":\"{}\"",
            json_string(&self.job.fingerprint()),
            self.job.to_json(),
            self.watermark,
        );
        let _ = write!(out, ",\"completion\":{}", self.completion.to_json());
        let _ = write!(out, ",\"waiting\":{}", self.waiting.to_json());
        out.push_str(",\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rep\":\"{}\",\"error\":{}}}",
                f.rep,
                json_string(&f.error)
            );
        }
        out.push_str("],\"pending\":[");
        for (i, (rep, outcome)) in self.pending.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match outcome {
                RepOutcome::Ok { completion, waiting } => {
                    let _ = write!(
                        out,
                        "{{\"rep\":\"{rep}\",\"ok\":true,\"completion\":\"{}\",\"waiting\":\"{}\"}}",
                        f64_bits_hex(*completion),
                        f64_bits_hex(*waiting)
                    );
                }
                RepOutcome::Failed { error } => {
                    let _ = write!(
                        out,
                        "{{\"rep\":\"{rep}\",\"ok\":false,\"error\":{}}}",
                        json_string(error)
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Parse a checkpoint document, verifying version and fingerprint.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("checkpoint: {e}"))?;
        let version = v
            .get("version")
            .and_then(Value::as_f64)
            .filter(|n| n.fract() == 0.0)
            .ok_or("checkpoint: missing version")? as u64;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint: version {version} unsupported (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let job_v = v.get("job").ok_or("checkpoint: missing job")?;
        let job = JobSpec::from_value(job_v)?;
        let recorded = v
            .get("fingerprint")
            .and_then(Value::as_str)
            .ok_or("checkpoint: missing fingerprint")?;
        if recorded != job.fingerprint() {
            return Err(format!(
                "checkpoint: fingerprint {recorded:?} does not match its own job spec \
                 ({:?}) — file corrupt or hand-edited",
                job.fingerprint()
            ));
        }
        let watermark = v
            .get("watermark")
            .and_then(Value::as_str)
            .ok_or("checkpoint: missing watermark")?
            .parse::<u64>()
            .map_err(|_| "checkpoint: watermark is not a u64")?;
        if watermark > job.reps {
            return Err(format!(
                "checkpoint: watermark {watermark} exceeds the job's {} reps",
                job.reps
            ));
        }
        let completion = StreamingStats::from_value(
            v.get("completion").ok_or("checkpoint: missing completion")?,
        )?;
        let waiting =
            StreamingStats::from_value(v.get("waiting").ok_or("checkpoint: missing waiting")?)?;
        let mut failures = Vec::new();
        for f in v
            .get("failures")
            .and_then(Value::as_array)
            .ok_or("checkpoint: missing failures")?
        {
            let rep = f
                .get("rep")
                .and_then(Value::as_str)
                .ok_or("checkpoint: failure missing rep")?
                .parse::<u64>()
                .map_err(|_| "checkpoint: failure rep is not a u64")?;
            let error = f
                .get("error")
                .and_then(Value::as_str)
                .ok_or("checkpoint: failure missing error")?
                .to_owned();
            failures.push(SweepFailure { rep, error });
        }
        let mut pending = Vec::new();
        for p in v
            .get("pending")
            .and_then(Value::as_array)
            .ok_or("checkpoint: missing pending")?
        {
            let rep = p
                .get("rep")
                .and_then(Value::as_str)
                .ok_or("checkpoint: pending entry missing rep")?
                .parse::<u64>()
                .map_err(|_| "checkpoint: pending rep is not a u64")?;
            let ok = match p.get("ok") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("checkpoint: pending entry missing bool \"ok\"".into()),
            };
            let outcome = if ok {
                let bits = |key: &str| -> Result<f64, String> {
                    p.get(key)
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("checkpoint: pending entry missing {key:?}"))
                        .and_then(f64_from_bits_hex)
                };
                RepOutcome::Ok {
                    completion: bits("completion")?,
                    waiting: bits("waiting")?,
                }
            } else {
                RepOutcome::Failed {
                    error: p
                        .get("error")
                        .and_then(Value::as_str)
                        .ok_or("checkpoint: pending entry missing error")?
                        .to_owned(),
                }
            };
            pending.push((rep, outcome));
        }
        Ok(Checkpoint {
            job,
            watermark,
            completion,
            waiting,
            failures,
            pending,
        })
    }

    /// Write atomically: serialize to `<path>.tmp`, fsync, rename over
    /// `path`. A kill mid-write leaves the previous checkpoint intact.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("checkpoint {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "dauber".into(),
            seed: 42,
            reps: 12,
            team: 4,
            warmup: false,
        }
    }

    fn merge_with_gap() -> MergeState {
        let mut m = MergeState::new(12);
        for i in 0..5u64 {
            m.accept(i, RepOutcome::Ok { completion: 1.0 / (i + 1) as f64, waiting: 0.5 });
        }
        m.accept(5, RepOutcome::Failed { error: "marker ran dry".into() });
        m.accept(8, RepOutcome::Ok { completion: 0.125, waiting: 0.25 }); // buffered
        m
    }

    #[test]
    fn round_trip_preserves_every_bit_of_merge_state() {
        let m = merge_with_gap();
        let ck = Checkpoint::from_merge(&job(), &m);
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.watermark, 6);
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.pending, vec![(8, RepOutcome::Ok { completion: 0.125, waiting: 0.25 })]);
        assert_eq!(back.completion.to_json(), ck.completion.to_json());
        assert_eq!(back.waiting.to_json(), ck.waiting.to_json());
        // Thawed merge owes exactly the missing reps.
        let restored = back.into_merge();
        assert_eq!(restored.missing_ranges(), vec![(6, 8), (9, 12)]);
    }

    #[test]
    fn resumed_merge_finishes_identically_to_uninterrupted() {
        let outcome = |i: u64| RepOutcome::Ok {
            completion: (i as f64).sin().abs() + 0.01,
            waiting: (i as f64).cos().abs(),
        };
        let mut whole = MergeState::new(12);
        for i in 0..12 {
            whole.accept(i, outcome(i));
        }
        let mut head = MergeState::new(12);
        for i in 0..7 {
            head.accept(i, outcome(i));
        }
        head.accept(10, outcome(10));
        let ck = Checkpoint::from_merge(&job(), &head);
        let mut resumed = Checkpoint::from_json(&ck.to_json()).unwrap().into_merge();
        for (s, e) in resumed.missing_ranges() {
            for i in s..e {
                resumed.accept(i, outcome(i));
            }
        }
        assert!(resumed.is_complete());
        let (a, aw) = resumed.finish().unwrap();
        let (b, bw) = whole.finish().unwrap();
        for (x, y) in [
            (a.mean, b.mean),
            (a.stddev, b.stddev),
            (a.median, b.median),
            (a.min, b.min),
            (a.max, b.max),
            (aw.mean, bw.mean),
            (aw.stddev, bw.stddev),
        ] {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let ck = Checkpoint::from_merge(&job(), &merge_with_gap());
        let text = ck.to_json();
        // Tamper with the job's seed; the recorded fingerprint no longer
        // matches the spec it sits next to.
        let tampered = text.replace("\"seed\":\"42\"", "\"seed\":\"43\"");
        assert_ne!(tampered, text);
        let err = Checkpoint::from_json(&tampered).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        assert!(Checkpoint::from_json("not json").is_err());
        assert!(Checkpoint::from_json("{\"version\":9}").is_err());
        let ck = Checkpoint::from_merge(&job(), &merge_with_gap());
        let text = ck.to_json().replace("\"watermark\":\"6\"", "\"watermark\":\"99\"");
        let err = Checkpoint::from_json(&text).unwrap_err();
        assert!(err.contains("watermark"), "{err}");
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("flagsim-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let ck = Checkpoint::from_merge(&job(), &merge_with_gap());
        ck.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.watermark, ck.watermark);
        ck.save(&path).unwrap(); // overwrite in place works too
        fs::remove_dir_all(&dir).ok();
    }
}
