//! # flagsim-shard
//!
//! Scale a sweep past one OS process without changing a single digit of
//! its output. A *coordinator* shards a sweep's repetition range into
//! leases, farms them out to `flagsim worker` processes over a
//! hand-rolled length-prefixed JSON-over-TCP protocol (the workspace is
//! offline — no serde, no tonic), and merges the per-repetition metrics
//! back through a rep-indexed reorder buffer, so the final statistics
//! are **bit-for-bit identical to the serial sweep** at any worker
//! count — the same determinism contract `core::sweep` already makes
//! for threads, extended to processes.
//!
//! The paper's scenario 4 teaches that real parallel systems lose
//! workers; this crate survives failure at every layer:
//!
//! * **Leases + heartbeats** ([`lease`]): every worker holds at most one
//!   rep-range lease; any frame it sends refreshes its heartbeat, and a
//!   deadline miss declares it dead and returns the unfinished part of
//!   its lease to the pool under the same [`RecoveryPolicy`] vocabulary
//!   the in-simulation fault drills use — `rebalance` hands the work to
//!   the survivors immediately, `spare:SECS` embargoes it while a
//!   replacement is fetched, `abort` stops the campaign and reports.
//! * **Reconnects** ([`coordinator`]): connection attempts back off
//!   exponentially with a cap and an attempt budget.
//! * **Degradation**: when no worker is reachable at all, the
//!   coordinator runs the repetitions in-process (the same
//!   [`SweepRunner::run_rep`](flagsim_core::sweep::SweepRunner::run_rep)
//!   the workers call), so a dead cluster costs wall-clock time, never a
//!   campaign.
//! * **Checkpoint/resume** ([`checkpoint`]): the coordinator
//!   periodically serializes its [`StreamingStats`] accumulators (exact
//!   bit-level snapshots), the merged-rep watermark, recorded failures,
//!   and any completed-but-unmerged repetitions to a checkpoint file;
//!   `flagsim sweep --resume <ckpt>` continues a killed million-rep
//!   sweep from where it stopped and finishes with statistics
//!   bit-identical to an uninterrupted run (the `shard_bench` hard
//!   gate).
//!
//! * **Distributed observability** ([`wire`], [`fleet`]): when the
//!   coordinator is collecting telemetry, its `hello` propagates the
//!   campaign trace context and workers ship their spans, structured
//!   logs, flow events, and counter deltas back as `telemetry` frames —
//!   merged into one Chrome trace with a track group per worker process
//!   and lease grants drawn as flow arrows. Telemetry frames are
//!   strictly observational (they never reach the merge), so shipping
//!   on, off, or lossy cannot move a single bit of the statistics.
//!
//! [`StreamingStats`]: flagsim_metrics::StreamingStats
//! [`RecoveryPolicy`]: flagsim_core::faults::RecoveryPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod coordinator;
pub mod fleet;
pub mod job;
pub mod lease;
pub mod merge;
pub mod obs_serve;
pub mod wire;
pub mod worker;

pub use checkpoint::Checkpoint;
pub use coordinator::{campaign_id, run_sweep, CoordinatorConfig, ShardOutcome, ShardResult};
pub use fleet::{FleetView, ObsHub, WorkerObs};
pub use job::{JobSpec, MaterializedJob};
pub use lease::{LeaseConfig, LeaseGrant, LeaseTable, WorkerId};
pub use merge::{MergeState, RepOutcome};
pub use obs_serve::ObsServer;
pub use wire::{read_frame, write_frame, Message, TelemetryBatch, TraceConfig, PROTOCOL_VERSION};
pub use worker::{serve, WorkerOptions};
