//! The sweep description that crosses the process boundary.
//!
//! A [`JobSpec`] is everything a worker needs to reproduce the
//! coordinator's repetitions exactly: scenario token, flag name,
//! implement kind, base seed, team size, warm-up, and the total rep
//! count. Both sides [`materialize`](JobSpec::materialize) the spec
//! through the *same* code path, and every repetition then runs through
//! [`SweepRunner::run_rep`](flagsim_core::sweep::SweepRunner::run_rep) —
//! so rep `i` computed on a remote worker is bit-identical to rep `i`
//! computed in-process, which is what makes the distributed merge equal
//! the serial sweep.
//!
//! The spec's canonical JSON doubles as its identity: checkpoint files
//! store a [`fingerprint`](JobSpec::fingerprint) and refuse to resume a
//! different campaign.

use flagsim_agents::ImplementKind;
use flagsim_core::config::{ActivityConfig, TeamKit};
use flagsim_core::scenario::Scenario;
use flagsim_core::sweep::SweepRunner;
use flagsim_core::work::PreparedFlag;
use flagsim_flags::{library, FlagSpec};
use flagsim_telemetry::json::{json_string, Value};
use std::fmt::Write as _;

/// A sweep, as plain data: what to run and how many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Scenario token (`1`–`4`, `onestripe`, `fourslice`, `pipelined`,
    /// `alternating`) — the same vocabulary the CLI accepts.
    pub scenario: String,
    /// Library flag name (e.g. `Mauritius`).
    pub flag: String,
    /// Implement kind token (`dauber`, `thick`, `thin`, `crayon`).
    pub kind: String,
    /// Base seed; rep `i` derives its seed exactly as the serial sweep.
    pub seed: u64,
    /// Total repetitions in the campaign.
    pub reps: u64,
    /// Students per repetition's fresh team.
    pub team: usize,
    /// Whether fresh teams keep the warm-up effect.
    pub warmup: bool,
}

impl JobSpec {
    /// Canonical JSON encoding (field order fixed; seeds as decimal
    /// strings so 64-bit values survive the f64-based parser exactly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"scenario\":{},\"flag\":{},\"kind\":{},\"seed\":\"{}\",\"reps\":\"{}\",\"team\":{},\"warmup\":{}}}",
            json_string(&self.scenario),
            json_string(&self.flag),
            json_string(&self.kind),
            self.seed,
            self.reps,
            self.team,
            self.warmup,
        );
        out
    }

    /// Decode a spec from a parsed JSON object.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("job spec: missing string field {key:?}"))
        };
        let u64_str = |key: &str| -> Result<u64, String> {
            s(key)?
                .parse::<u64>()
                .map_err(|_| format!("job spec: field {key:?} is not a u64"))
        };
        let team = v
            .get("team")
            .and_then(Value::as_f64)
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .ok_or("job spec: missing integer field \"team\"")? as usize;
        let warmup = match v.get("warmup") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("job spec: missing bool field \"warmup\"".into()),
        };
        Ok(JobSpec {
            scenario: s("scenario")?,
            flag: s("flag")?,
            kind: s("kind")?,
            seed: u64_str("seed")?,
            reps: u64_str("reps")?,
            team,
            warmup,
        })
    }

    /// FNV-1a 64 over the canonical JSON — the identity a checkpoint
    /// records so `--resume` refuses to splice two different campaigns.
    pub fn fingerprint(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Build the runnable form: flag raster, kit, config, scenario. Both
    /// the coordinator and every worker call this, so a spec that
    /// materializes at all materializes identically everywhere.
    pub fn materialize(&self) -> Result<MaterializedJob, String> {
        if self.reps == 0 {
            return Err("job spec: need at least one repetition".into());
        }
        if self.team == 0 {
            return Err("job spec: need at least one student".into());
        }
        let spec = library::by_name(&self.flag)
            .ok_or_else(|| format!("job spec: unknown flag {:?}", self.flag))?;
        let kind = match self.kind.as_str() {
            "dauber" => ImplementKind::BingoDauber,
            "thick" => ImplementKind::ThickMarker,
            "thin" => ImplementKind::ThinMarker,
            "crayon" => ImplementKind::Crayon,
            other => return Err(format!("job spec: unknown implement kind {other:?}")),
        };
        let flag = PreparedFlag::new(&spec);
        let scenario = match self.scenario.as_str() {
            "1" | "2" | "3" | "4" => {
                Scenario::fig1(self.scenario.parse::<u8>().map_err(|_| "digit scenario")?)
            }
            "onestripe" => Scenario::fig1(3),
            "fourslice" => Scenario::fig1(4),
            "pipelined" => Scenario::pipelined_slices(&flag, 4, 4),
            "alternating" => Scenario::alternating_slices(),
            other => return Err(format!("job spec: unknown scenario {other:?}")),
        };
        let kit = TeamKit::uniform(kind, &flag.colors_needed(&[]));
        let config = ActivityConfig::default().with_seed(self.seed);
        Ok(MaterializedJob {
            spec,
            flag,
            kit,
            config,
            scenario,
            team: self.team,
            warmup: self.warmup,
            reps: self.reps,
        })
    }
}

/// A [`JobSpec`] turned into the owned values a [`SweepRunner`] borrows.
pub struct MaterializedJob {
    /// The flag's declarative spec.
    pub spec: FlagSpec,
    /// The rasterized flag.
    pub flag: PreparedFlag,
    /// The implement kit.
    pub kit: TeamKit,
    /// Activity configuration carrying the base seed.
    pub config: ActivityConfig,
    /// The scenario to run.
    pub scenario: Scenario,
    /// Students per repetition.
    pub team: usize,
    /// Warm-up effect on fresh teams.
    pub warmup: bool,
    /// Total repetitions.
    pub reps: u64,
}

impl MaterializedJob {
    /// A sweep runner configured exactly like the serial sweep for this
    /// job. Callers use [`SweepRunner::run_rep`] for individual
    /// repetitions (shard executors) or `run()` for the whole campaign
    /// (the in-process degradation path).
    pub fn runner(&self) -> SweepRunner<'_> {
        SweepRunner::new(&self.scenario, &self.flag, &self.kit, &self.config)
            .team_size(self.team)
            .warmup(self.warmup)
            .reps(self.reps)
            .retain_reports(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_telemetry::json;

    fn spec() -> JobSpec {
        JobSpec {
            scenario: "fourslice".into(),
            flag: "Mauritius".into(),
            kind: "thick".into(),
            seed: u64::MAX - 3,
            reps: 1_000_000,
            team: 4,
            warmup: false,
        }
    }

    #[test]
    fn json_round_trips_including_full_width_seeds() {
        let a = spec();
        let v = json::parse(&a.to_json()).unwrap();
        let b = JobSpec::from_value(&v).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.seed, u64::MAX - 3, "seed must survive bit-exactly");
    }

    #[test]
    fn fingerprint_changes_with_any_field() {
        let base = spec().fingerprint();
        for tweak in [
            JobSpec { seed: 1, ..spec() },
            JobSpec { reps: 2, ..spec() },
            JobSpec { scenario: "1".into(), ..spec() },
            JobSpec { warmup: true, ..spec() },
        ] {
            assert_ne!(tweak.fingerprint(), base);
        }
        assert_eq!(spec().fingerprint(), base, "stable for equal specs");
    }

    #[test]
    fn materialize_validates_tokens() {
        assert!(spec().materialize().is_ok());
        assert!(JobSpec { flag: "Atlantis".into(), ..spec() }.materialize().is_err());
        assert!(JobSpec { kind: "chisel".into(), ..spec() }.materialize().is_err());
        assert!(JobSpec { scenario: "9".into(), ..spec() }.materialize().is_err());
        assert!(JobSpec { reps: 0, ..spec() }.materialize().is_err());
        assert!(JobSpec { team: 0, ..spec() }.materialize().is_err());
    }

    #[test]
    fn materialized_rep_matches_inprocess_sweep_rep() {
        // The cross-process determinism contract in one process: the
        // runner a worker builds from the spec produces the same rep
        // outcomes as any other materialization of the same spec.
        let a = spec();
        let ja = a.materialize().unwrap();
        let jb = a.materialize().unwrap();
        for rep in [0u64, 1, 17] {
            let ra = ja.runner().run_rep(rep).unwrap();
            let rb = jb.runner().run_rep(rep).unwrap();
            assert_eq!(ra.completion_secs().to_bits(), rb.completion_secs().to_bits());
            assert_eq!(ra.total_wait_secs().to_bits(), rb.total_wait_secs().to_bits());
        }
    }
}
