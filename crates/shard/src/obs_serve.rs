//! Push fleet snapshots to observers over TCP (`sweep --obs-serve`).
//!
//! A tiny single-threaded server: accept watchers, and every interval
//! push the current [`ObsHub`](crate::ObsHub) snapshot to each as one
//! length-prefixed [`wire`](crate::wire) frame. The channel is strictly
//! one-way — observers are *watchers, not participants*:
//!
//! - The server only ever **reads** from a client socket to detect
//!   disconnection, and every byte a client does send is counted in
//!   [`ObsServer::bytes_from_clients`] and discarded unparsed. Nothing
//!   a watcher writes can reach the lease/merge path, and a test
//!   asserts the counter stays zero under a well-behaved watcher.
//! - Snapshots are rendered from the same [`FleetView`](crate::FleetView)
//!   the dashboard polls; serving them adds no new mutation sites.
//!
//! Slow consumers are dropped rather than buffered: a snapshot is a
//! few KB and the socket buffer holds many intervals' worth, so a full
//! buffer means the watcher died or stalled — dropping it keeps the
//! supervisor's memory bounded.

use crate::fleet::ObsHub;
use crate::wire;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept/push loop polls for new clients and stop.
const POLL_MS: u64 = 25;

/// A running observability push server. Dropping (or [`ObsServer::stop`])
/// shuts the listener down and joins the serving thread.
#[derive(Debug)]
pub struct ObsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    bytes_from_clients: Arc<AtomicU64>,
    clients_served: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` and start pushing `hub` snapshots every
    /// `interval_ms` to every connected client. `now_ms` supplies the
    /// campaign-clock timestamp stamped into each snapshot (the caller
    /// owns the clock, keeping this crate fake-clock friendly).
    pub fn start(
        hub: ObsHub,
        addr: &str,
        interval_ms: u64,
        now_ms: impl Fn() -> u64 + Send + 'static,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let bytes_from_clients = Arc::new(AtomicU64::new(0));
        let clients_served = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_bytes = Arc::clone(&bytes_from_clients);
        let thread_clients = Arc::clone(&clients_served);
        let interval = interval_ms.max(POLL_MS);
        let handle = std::thread::spawn(move || {
            serve_loop(
                listener,
                hub,
                interval,
                now_ms,
                &thread_stop,
                &thread_bytes,
                &thread_clients,
            );
        });
        Ok(ObsServer {
            local_addr,
            stop,
            bytes_from_clients,
            clients_served,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total bytes any client has ever sent us. Watchers are read-only,
    /// so for well-behaved clients this stays **zero** — the asserted
    /// proof that attaching a watcher cannot feed data into the sweep.
    pub fn bytes_from_clients(&self) -> u64 {
        self.bytes_from_clients.load(Ordering::Relaxed)
    }

    /// Clients accepted over the server's lifetime.
    pub fn clients_served(&self) -> u64 {
        self.clients_served.load(Ordering::Relaxed)
    }

    /// Stop the server and join its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(
    listener: TcpListener,
    hub: ObsHub,
    interval_ms: u64,
    now_ms: impl Fn() -> u64,
    stop: &AtomicBool,
    bytes_from_clients: &AtomicU64,
    clients_served: &AtomicU64,
) {
    let mut clients: Vec<TcpStream> = Vec::new();
    let mut since_push = interval_ms; // push immediately once someone connects
    while !stop.load(Ordering::Relaxed) {
        let mut fresh = false;
        loop {
            match listener.accept() {
                Ok((s, _)) => {
                    if s.set_nonblocking(true).is_ok() {
                        clients_served.fetch_add(1, Ordering::Relaxed);
                        clients.push(s);
                        fresh = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if !clients.is_empty() && (since_push >= interval_ms || fresh) {
            since_push = 0;
            let mut framed = Vec::new();
            if wire::write_frame(&mut framed, &hub.snapshot_json(now_ms())).is_err() {
                // Snapshot exceeded the frame cap — skip this push
                // rather than kill the server; the next one may fit.
                continue;
            }
            clients.retain_mut(|c| push_to(c, &framed, bytes_from_clients));
        }
        std::thread::sleep(Duration::from_millis(POLL_MS));
        since_push = since_push.saturating_add(POLL_MS);
    }
}

/// Push one framed snapshot to a client; returns `false` when the
/// client should be dropped (closed, errored, or too slow to drain).
/// Any bytes the client sent are counted and discarded — never parsed.
fn push_to(c: &mut TcpStream, framed: &[u8], bytes_from_clients: &AtomicU64) -> bool {
    let mut buf = [0u8; 256];
    loop {
        match c.read(&mut buf) {
            Ok(0) => return false, // clean close
            Ok(n) => {
                bytes_from_clients.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => return false,
        }
    }
    match c.write_all(framed) {
        Ok(()) => true,
        // WouldBlock = the socket buffer is full = the watcher has not
        // drained several intervals of small frames: drop it.
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripted_hub() -> ObsHub {
        let hub = ObsHub::new();
        hub.with(|fv| {
            fv.reset("0bs0bs0bs0bs0bs0".into(), 32);
            fv.on_connected("w-0", 10);
            fv.on_lease("w-0", 20);
            for t in 0..5u64 {
                fv.on_rep("w-0", 30 + t * 100);
                fv.sample(30 + t * 100);
            }
            fv.merged = 5;
        });
        hub
    }

    #[test]
    fn pushes_snapshots_to_a_read_only_client_and_counts_zero_bytes() {
        let hub = scripted_hub();
        let before = hub.snapshot_json(500);
        let mut server =
            ObsServer::start(hub.clone(), "127.0.0.1:0", 50, || 500).expect("bind");
        let addr = server.local_addr();

        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // A well-behaved watcher only reads. Two consecutive frames
        // prove the periodic push, not just the greeting.
        let first = wire::read_frame(&mut client).expect("frame").expect("open");
        let second = wire::read_frame(&mut client).expect("frame").expect("open");
        assert_eq!(first, before, "snapshot is the hub's JSON verbatim");
        assert_eq!(second, before, "unchanged hub → identical snapshot");

        server.stop();
        assert_eq!(server.clients_served(), 1);
        // The read-only proof: watching wrote nothing into the sweep.
        assert_eq!(server.bytes_from_clients(), 0);
        assert_eq!(
            hub.snapshot_json(500),
            before,
            "hub state untouched by serving"
        );
    }

    #[test]
    fn client_writes_are_counted_and_discarded() {
        let hub = scripted_hub();
        let mut server = ObsServer::start(hub, "127.0.0.1:0", 50, || 0).expect("bind");
        let mut client = TcpStream::connect(server.local_addr()).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.write_all(b"rogue bytes").expect("write");
        client.flush().expect("flush");
        // The push loop still serves frames; the rogue bytes are
        // tallied, not interpreted.
        let frame = wire::read_frame(&mut client).expect("frame").expect("open");
        assert!(frame.contains("\"campaign\""));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.bytes_from_clients() < 11 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.bytes_from_clients(), 11);
        server.stop();
    }

    #[test]
    fn disconnected_clients_are_dropped() {
        let hub = scripted_hub();
        let mut server = ObsServer::start(hub, "127.0.0.1:0", 50, || 0).expect("bind");
        {
            let _client = TcpStream::connect(server.local_addr()).expect("connect");
        } // dropped immediately
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.clients_served() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.clients_served(), 1);
        server.stop(); // joins cleanly with the dead client purged
    }
}
