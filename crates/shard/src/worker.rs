//! The worker side: accept a session, run leased repetitions, report
//! each one.
//!
//! A worker is deliberately stateless between sessions: everything it
//! needs arrives in the `hello` frame's [`JobSpec`], it materializes the
//! job through the same code path the coordinator uses, and every
//! repetition runs through
//! [`SweepRunner::run_rep`](flagsim_core::sweep::SweepRunner::run_rep) —
//! so its answers are bit-identical to the coordinator computing the
//! same rep locally. Reps inside a lease run in ascending order and are
//! reported one frame each; that ordering is what lets the coordinator
//! shrink a dead worker's lease to only the genuinely unfinished reps.
//!
//! A failed repetition is reported (`ok:false`) and the lease continues:
//! per-rep failures are campaign data, not worker faults.

use crate::job::JobSpec;
use crate::merge::RepOutcome;
use crate::wire::{self, Message, PROTOCOL_VERSION};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};

/// How `serve` behaves.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Handle exactly one session, then return (used by
    /// coordinator-spawned workers so they exit with their sweep).
    pub once: bool,
    /// Name reported in `hello_ok` (diagnostics only).
    pub name: String,
    /// Suppress per-session stderr notes.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            once: false,
            name: format!("worker-{}", std::process::id()),
            quiet: false,
        }
    }
}

/// Accept coordinator sessions on `listener` until `opts.once` says
/// stop. Each accepted connection is served to completion before the
/// next `accept` (a worker process serves one coordinator at a time —
/// parallelism comes from running more workers, not threading one).
pub fn serve(listener: &TcpListener, opts: &WorkerOptions) -> io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        if !opts.quiet {
            eprintln!("worker {}: session from {peer}", opts.name);
        }
        if let Err(e) = serve_session(&stream, opts) {
            if !opts.quiet {
                eprintln!("worker {}: session ended: {e}", opts.name);
            }
        }
        if opts.once {
            return Ok(());
        }
    }
}

/// Serve one coordinator session on an established stream.
pub fn serve_session(stream: &TcpStream, opts: &WorkerOptions) -> io::Result<()> {
    let _span = flagsim_telemetry::span("shard", "worker_session");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Handshake: hello carries the whole job.
    let job: JobSpec = match wire::recv(&mut reader)? {
        Some(Message::Hello { protocol, job }) if protocol == PROTOCOL_VERSION => job,
        Some(Message::Hello { protocol, .. }) => {
            let msg = format!("protocol {protocol} != {PROTOCOL_VERSION}");
            wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        Some(other) => {
            let msg = format!("expected hello, got {other:?}");
            wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        None => return Ok(()), // peer connected and left; nothing owed
    };
    let mat = match job.materialize() {
        Ok(m) => m,
        Err(e) => {
            wire::send(&mut writer, &Message::Error { message: e.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
    };
    wire::send(&mut writer, &Message::HelloOk { worker: opts.name.clone() })?;

    let runner = mat.runner();
    loop {
        match wire::recv(&mut reader)? {
            Some(Message::Lease { start, end }) => {
                if start >= end || end > mat.reps {
                    let msg = format!("bad lease {start}..{end} for {} reps", mat.reps);
                    wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
                for rep in start..end {
                    let outcome = match runner.run_rep(rep) {
                        Ok(report) => RepOutcome::Ok {
                            completion: report.completion_secs(),
                            waiting: report.total_wait_secs(),
                        },
                        Err(error) => RepOutcome::Failed { error },
                    };
                    wire::send(&mut writer, &Message::Rep { rep, outcome })?;
                    if flagsim_telemetry::enabled() {
                        flagsim_telemetry::count("shard.worker_reps", 1);
                    }
                }
                wire::send(&mut writer, &Message::LeaseDone { start, end })?;
            }
            Some(Message::Shutdown) => {
                wire::send(&mut writer, &Message::Bye)?;
                return Ok(());
            }
            Some(Message::Heartbeat) => {} // coordinator probing liveness
            Some(Message::Error { message }) => {
                return Err(io::Error::other(message));
            }
            Some(other) => {
                let msg = format!("unexpected frame {other:?}");
                wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
                return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
            }
            None => return Ok(()), // coordinator hung up (or died); leases lapse
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn job() -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "dauber".into(),
            seed: 7,
            reps: 6,
            team: 4,
            warmup: false,
        }
    }

    fn spawn_worker(once: bool) -> (std::net::SocketAddr, thread::JoinHandle<io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            serve(
                &listener,
                &WorkerOptions { once, name: "t".into(), quiet: true },
            )
        });
        (addr, handle)
    }

    #[test]
    fn full_session_reports_bit_identical_reps() {
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: job() }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::HelloOk { .. })));
        wire::send(&mut w, &Message::Lease { start: 1, end: 4 }).unwrap();
        let local = job().materialize().unwrap();
        let runner = local.runner();
        for expect_rep in 1u64..4 {
            match wire::recv(&mut r).unwrap() {
                Some(Message::Rep { rep, outcome: RepOutcome::Ok { completion, waiting } }) => {
                    assert_eq!(rep, expect_rep);
                    let mine = runner.run_rep(rep).unwrap();
                    assert_eq!(completion.to_bits(), mine.completion_secs().to_bits());
                    assert_eq!(waiting.to_bits(), mine.total_wait_secs().to_bits());
                }
                other => panic!("expected rep {expect_rep}, got {other:?}"),
            }
        }
        assert_eq!(
            wire::recv(&mut r).unwrap(),
            Some(Message::LeaseDone { start: 1, end: 4 })
        );
        wire::send(&mut w, &Message::Shutdown).unwrap();
        assert_eq!(wire::recv(&mut r).unwrap(), Some(Message::Bye));
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn protocol_mismatch_is_refused() {
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: 999, job: job() }).unwrap();
        match wire::recv(&mut r).unwrap() {
            Some(Message::Error { message }) => assert!(message.contains("999"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        handle.join().unwrap().unwrap(); // serve itself survives bad sessions
    }

    #[test]
    fn bad_job_and_bad_lease_are_refused() {
        // Unknown flag in the job.
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        let bad = JobSpec { flag: "Atlantis".into(), ..job() };
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: bad }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::Error { .. })));
        handle.join().unwrap().unwrap();

        // Lease beyond the job's rep range.
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: job() }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::HelloOk { .. })));
        wire::send(&mut w, &Message::Lease { start: 0, end: 99 }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::Error { .. })));
        handle.join().unwrap().unwrap();
    }
}
