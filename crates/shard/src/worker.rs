//! The worker side: accept a session, run leased repetitions, report
//! each one.
//!
//! A worker is deliberately stateless between sessions: everything it
//! needs arrives in the `hello` frame's [`JobSpec`], it materializes the
//! job through the same code path the coordinator uses, and every
//! repetition runs through
//! [`SweepRunner::run_rep`](flagsim_core::sweep::SweepRunner::run_rep) —
//! so its answers are bit-identical to the coordinator computing the
//! same rep locally. Reps inside a lease run in ascending order and are
//! reported one frame each; that ordering is what lets the coordinator
//! shrink a dead worker's lease to only the genuinely unfinished reps.
//!
//! A failed repetition is reported (`ok:false`) and the lease continues:
//! per-rep failures are campaign data, not worker faults.
//!
//! When the coordinator's `hello` carries a [`TraceConfig`], the worker
//! installs its own telemetry collector for the session and ships what
//! it records — spans, logs, flows, counter deltas — back as `telemetry`
//! frames, drained every [`SHIP_EVERY_REPS`] reps and at each lease
//! boundary. Pending records are capped ([`MAX_PENDING`]); overflow is
//! *dropped and counted*, never buffered without bound, so a slow or
//! inattentive coordinator can cost trace fidelity but never stall the
//! repetitions themselves.

use crate::job::JobSpec;
use crate::merge::RepOutcome;
use crate::wire::{self, Message, TelemetryBatch, TraceConfig, PROTOCOL_VERSION};
use flagsim_telemetry::{log, Collector, FlowRecord, LogRecord, SpanRecord};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

/// Drain-and-ship cadence within a lease, in repetitions. Every lease
/// boundary also flushes, so this only bounds staleness inside one
/// long lease; keeping it coarse keeps frame overhead off the rep hot
/// path (the obs bench gates shipping at ≤5% wall-clock).
const SHIP_EVERY_REPS: u64 = 512;

/// Cap on pending records of each kind between ships; overflow is
/// dropped and counted in the next batch's `dropped` field.
const MAX_PENDING: usize = 8192;

/// How `serve` behaves.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Handle exactly one session, then return (used by
    /// coordinator-spawned workers so they exit with their sweep).
    pub once: bool,
    /// Name reported in `hello_ok` (diagnostics only).
    pub name: String,
    /// Suppress per-session stderr notes.
    pub quiet: bool,
    /// Test hook for forced telemetry loss: when `n > 0`, every `n`-th
    /// batch is discarded (counted as dropped) instead of shipped —
    /// merged statistics must come out identical anyway.
    pub drop_telemetry_every: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            once: false,
            name: format!("worker-{}", std::process::id()),
            quiet: false,
            drop_telemetry_every: 0,
        }
    }
}

/// Per-session shipping state: the worker-side collector plus bounded
/// pending buffers between `telemetry` frames.
struct Shipper {
    collector: Collector,
    config: TraceConfig,
    seq: u64,
    dropped: u64,
    reps_since_ship: u64,
    pending_spans: Vec<SpanRecord>,
    pending_logs: Vec<LogRecord>,
    pending_flows: Vec<FlowRecord>,
    drop_every: u64,
}

impl Shipper {
    fn new(config: TraceConfig, drop_every: u64) -> Shipper {
        log::set_level(config.level);
        Shipper {
            collector: Collector::install(),
            config,
            seq: 0,
            dropped: 0,
            reps_since_ship: 0,
            pending_spans: Vec::new(),
            pending_logs: Vec::new(),
            pending_flows: Vec::new(),
            drop_every,
        }
    }

    /// Move drained records into the bounded pending buffers.
    fn absorb(&mut self) {
        fn take_bounded<T>(pending: &mut Vec<T>, mut fresh: Vec<T>, dropped: &mut u64) {
            let room = MAX_PENDING.saturating_sub(pending.len());
            if fresh.len() > room {
                *dropped += (fresh.len() - room) as u64;
                fresh.truncate(room);
            }
            pending.append(&mut fresh);
        }
        let spans = if self.config.spans {
            self.collector.drain_spans()
        } else {
            // Spans disabled by config: drain and discard (not counted
            // as drops — the coordinator asked for none).
            let _ = self.collector.drain_spans();
            Vec::new()
        };
        take_bounded(&mut self.pending_spans, spans, &mut self.dropped);
        take_bounded(&mut self.pending_logs, self.collector.drain_logs(), &mut self.dropped);
        take_bounded(&mut self.pending_flows, self.collector.drain_flows(), &mut self.dropped);
    }

    /// Drain, batch, and ship one `telemetry` frame (or drop it whole
    /// when the forced-loss hook fires). Quietly skips empty batches.
    fn ship(&mut self, writer: &mut impl Write) -> io::Result<()> {
        self.absorb();
        let reps = std::mem::take(&mut self.reps_since_ship);
        if self.pending_spans.is_empty()
            && self.pending_logs.is_empty()
            && self.pending_flows.is_empty()
            && reps == 0
            && self.dropped == 0
        {
            return Ok(());
        }
        self.seq += 1;
        let batch = TelemetryBatch {
            seq: self.seq,
            dropped: std::mem::take(&mut self.dropped),
            spans: std::mem::take(&mut self.pending_spans),
            logs: std::mem::take(&mut self.pending_logs),
            flows: std::mem::take(&mut self.pending_flows),
            counters: if reps > 0 {
                vec![("shard.worker_reps".to_owned(), reps)]
            } else {
                Vec::new()
            },
        };
        if self.drop_every > 0 && self.seq.is_multiple_of(self.drop_every) {
            // Forced loss: the whole batch evaporates; only the count
            // survives into the next frame.
            self.dropped += (batch.spans.len() + batch.logs.len() + batch.flows.len()) as u64;
            return Ok(());
        }
        wire::send(writer, &Message::Telemetry(batch))
    }
}

/// Accept coordinator sessions on `listener` until `opts.once` says
/// stop. Each accepted connection is served to completion before the
/// next `accept` (a worker process serves one coordinator at a time —
/// parallelism comes from running more workers, not threading one).
pub fn serve(listener: &TcpListener, opts: &WorkerOptions) -> io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        if !opts.quiet {
            log::info(
                "shard.worker",
                "session accepted",
                &[("worker", opts.name.clone()), ("peer", peer.to_string())],
            );
        }
        if let Err(e) = serve_session(&stream, opts) {
            if !opts.quiet {
                log::warn(
                    "shard.worker",
                    "session ended with error",
                    &[("worker", opts.name.clone()), ("error", e.to_string())],
                );
            }
        }
        if opts.once {
            return Ok(());
        }
    }
}

/// Serve one coordinator session on an established stream.
pub fn serve_session(stream: &TcpStream, opts: &WorkerOptions) -> io::Result<()> {
    let _span = flagsim_telemetry::span("shard", "worker_session");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Handshake: hello carries the whole job (and the trace context).
    let (job, trace): (JobSpec, Option<TraceConfig>) = match wire::recv(&mut reader)? {
        Some(Message::Hello { protocol, job, trace }) if protocol == PROTOCOL_VERSION => {
            (job, trace)
        }
        Some(Message::Hello { protocol, .. }) => {
            let msg = format!("protocol {protocol} != {PROTOCOL_VERSION}");
            wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        Some(other) => {
            let msg = format!("expected hello, got {other:?}");
            wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        None => return Ok(()), // peer connected and left; nothing owed
    };
    let mat = match job.materialize() {
        Ok(m) => m,
        Err(e) => {
            wire::send(&mut writer, &Message::Error { message: e.clone() })?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
    };
    wire::send(&mut writer, &Message::HelloOk { worker: opts.name.clone() })?;

    // With a trace context, everything recorded from here on is shipped
    // back; without one, instrumentation stays in its disabled
    // (one-atomic-load) state.
    let mut shipper = trace.map(|t| Shipper::new(t, opts.drop_telemetry_every));
    if let Some(s) = shipper.as_ref() {
        // Recorded through the just-installed collector, so even a
        // worker that never wins a lease ships one frame on shutdown —
        // the merged trace then shows a track for every fleet member,
        // not just the ones the scheduler favored.
        log::info(
            "shard.worker",
            "session start",
            &[("worker", opts.name.clone()), ("campaign", s.config.campaign.clone())],
        );
    }

    let runner = mat.runner();
    let result = loop {
        match wire::recv(&mut reader)? {
            Some(Message::Lease { start, end, grant }) => {
                if start >= end || end > mat.reps {
                    let msg = format!("bad lease {start}..{end} for {} reps", mat.reps);
                    wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
                    break Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
                let lease_span = shipper.as_ref().map(|s| {
                    if grant != 0 {
                        // Finish half of the coordinator's grant arrow.
                        flagsim_telemetry::flow("lease", grant, false);
                    }
                    flagsim_telemetry::span("shard", "lease")
                        .arg("campaign", &s.config.campaign)
                        .arg("worker", &opts.name)
                        .arg("lease", format!("{start}..{end}"))
                        .arg("grant", grant)
                });
                for rep in start..end {
                    // Rep sampling: unsampled reps run with recording
                    // paused, so neither the rep span nor the engine's
                    // inner spans cost anything. Purely observational —
                    // the rep itself always runs and reports.
                    let sampled = shipper
                        .as_ref()
                        .is_some_and(|s| s.config.sample <= 1 || rep % s.config.sample == 0);
                    let _pause = (shipper.is_some() && !sampled)
                        .then(flagsim_telemetry::pause_recording);
                    let outcome = {
                        let _rep_span = sampled
                            .then(|| flagsim_telemetry::span("sim", "sweep.rep").arg("rep", rep));
                        match runner.run_rep(rep) {
                            Ok(report) => RepOutcome::Ok {
                                completion: report.completion_secs(),
                                waiting: report.total_wait_secs(),
                            },
                            Err(error) => RepOutcome::Failed { error },
                        }
                    };
                    wire::send(&mut writer, &Message::Rep { rep, outcome })?;
                    if flagsim_telemetry::enabled() {
                        flagsim_telemetry::count("shard.worker_reps", 1);
                    }
                    if let Some(s) = shipper.as_mut() {
                        s.reps_since_ship += 1;
                        if s.reps_since_ship >= SHIP_EVERY_REPS {
                            s.ship(&mut writer)?;
                        }
                    }
                }
                drop(lease_span);
                if let Some(s) = shipper.as_mut() {
                    s.ship(&mut writer)?;
                }
                wire::send(&mut writer, &Message::LeaseDone { start, end })?;
            }
            Some(Message::Shutdown) => {
                if let Some(s) = shipper.as_mut() {
                    s.ship(&mut writer)?;
                }
                wire::send(&mut writer, &Message::Bye)?;
                break Ok(());
            }
            Some(Message::Heartbeat) => {} // coordinator probing liveness
            Some(Message::Error { message }) => {
                break Err(io::Error::other(message));
            }
            Some(other) => {
                let msg = format!("unexpected frame {other:?}");
                wire::send(&mut writer, &Message::Error { message: msg.clone() })?;
                break Err(io::Error::new(io::ErrorKind::InvalidData, msg));
            }
            None => break Ok(()), // coordinator hung up (or died); leases lapse
        }
    };
    if let Some(s) = shipper {
        // End the session's collector so the next session (or the
        // process's own tooling) starts clean.
        let _ = s.collector.finish();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn job() -> JobSpec {
        JobSpec {
            scenario: "4".into(),
            flag: "Mauritius".into(),
            kind: "dauber".into(),
            seed: 7,
            reps: 6,
            team: 4,
            warmup: false,
        }
    }

    fn spawn_worker(once: bool) -> (std::net::SocketAddr, thread::JoinHandle<io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            serve(
                &listener,
                &WorkerOptions {
                    once,
                    name: "t".into(),
                    quiet: true,
                    drop_telemetry_every: 0,
                },
            )
        });
        (addr, handle)
    }

    #[test]
    fn full_session_reports_bit_identical_reps() {
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: job(), trace: None }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::HelloOk { .. })));
        wire::send(&mut w, &Message::Lease { start: 1, end: 4, grant: 0 }).unwrap();
        let local = job().materialize().unwrap();
        let runner = local.runner();
        for expect_rep in 1u64..4 {
            match wire::recv(&mut r).unwrap() {
                Some(Message::Rep { rep, outcome: RepOutcome::Ok { completion, waiting } }) => {
                    assert_eq!(rep, expect_rep);
                    let mine = runner.run_rep(rep).unwrap();
                    assert_eq!(completion.to_bits(), mine.completion_secs().to_bits());
                    assert_eq!(waiting.to_bits(), mine.total_wait_secs().to_bits());
                }
                other => panic!("expected rep {expect_rep}, got {other:?}"),
            }
        }
        assert_eq!(
            wire::recv(&mut r).unwrap(),
            Some(Message::LeaseDone { start: 1, end: 4 })
        );
        wire::send(&mut w, &Message::Shutdown).unwrap();
        assert_eq!(wire::recv(&mut r).unwrap(), Some(Message::Bye));
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn protocol_mismatch_is_refused() {
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: 999, job: job(), trace: None }).unwrap();
        match wire::recv(&mut r).unwrap() {
            Some(Message::Error { message }) => assert!(message.contains("999"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        handle.join().unwrap().unwrap(); // serve itself survives bad sessions
    }

    #[test]
    fn bad_job_and_bad_lease_are_refused() {
        // Unknown flag in the job.
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        let bad = JobSpec { flag: "Atlantis".into(), ..job() };
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: bad, trace: None }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::Error { .. })));
        handle.join().unwrap().unwrap();

        // Lease beyond the job's rep range.
        let (addr, handle) = spawn_worker(true);
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        wire::send(&mut w, &Message::Hello { protocol: PROTOCOL_VERSION, job: job(), trace: None }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::HelloOk { .. })));
        wire::send(&mut w, &Message::Lease { start: 0, end: 99, grant: 0 }).unwrap();
        assert!(matches!(wire::recv(&mut r).unwrap(), Some(Message::Error { .. })));
        handle.join().unwrap().unwrap();
    }
}
