//! A fixed-capacity time series: `(integer-ms timestamp, f64 value)`
//! points in a ring buffer, oldest evicted first.
//!
//! Timestamps are caller-supplied milliseconds (relative to whatever
//! epoch the caller chooses), never wall clock read internally — the
//! same fake-clock discipline as `shard`'s lease table, so a series fed
//! from deterministic inputs serializes byte-identically every run
//! (the `--obs-out` contract).

use crate::metrics::fmt_f64;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// A bounded series of `(t_ms, value)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    cap: usize,
    points: VecDeque<(u64, f64)>,
}

impl TimeSeries {
    /// A series holding at most `cap` points (min 1).
    pub fn new(cap: usize) -> Self {
        TimeSeries {
            cap: cap.max(1),
            points: VecDeque::new(),
        }
    }

    /// Append a sample, evicting the oldest when full. Out-of-order
    /// timestamps are accepted as-is (the caller owns the clock).
    pub fn push(&mut self, t_ms: u64, value: f64) {
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back((t_ms, value));
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum retained points.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.points.back().copied()
    }

    /// Iterate points oldest → newest.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Average change in value per second over the trailing `window_ms`
    /// (for cumulative series — e.g. reps completed — this is the rate).
    /// Zero with fewer than two in-window points or a zero time delta.
    pub fn rate_per_sec(&self, window_ms: u64) -> f64 {
        let Some(&(t_last, v_last)) = self.points.back() else {
            return 0.0;
        };
        let cutoff = t_last.saturating_sub(window_ms);
        let first = self.points.iter().find(|(t, _)| *t >= cutoff);
        match first {
            Some(&(t0, v0)) if t_last > t0 => {
                (v_last - v0) / ((t_last - t0) as f64 / 1000.0)
            }
            _ => 0.0,
        }
    }

    /// JSON array of `[t_ms, value]` pairs, oldest first. Deterministic
    /// for identical inputs (integer timestamps, JSON-safe floats).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (t, v)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{t},{}]", fmt_f64(*v));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5u64 {
            ts.push(i * 100, i as f64);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.capacity(), 3);
        let pts: Vec<_> = ts.points().collect();
        assert_eq!(pts, vec![(200, 2.0), (300, 3.0), (400, 4.0)]);
        assert_eq!(ts.latest(), Some((400, 4.0)));
    }

    #[test]
    fn rate_over_window_is_delta_per_second() {
        let mut ts = TimeSeries::new(16);
        ts.push(0, 0.0);
        ts.push(500, 10.0);
        ts.push(1000, 30.0);
        // Full window: 30 reps over 1s.
        assert!((ts.rate_per_sec(10_000) - 30.0).abs() < 1e-9);
        // Trailing 500ms: 20 reps over 0.5s.
        assert!((ts.rate_per_sec(500) - 40.0).abs() < 1e-9);
        assert_eq!(TimeSeries::new(4).rate_per_sec(1000), 0.0);
        let mut single = TimeSeries::new(4);
        single.push(10, 1.0);
        assert_eq!(single.rate_per_sec(1000), 0.0);
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let mut a = TimeSeries::new(8);
        let mut b = TimeSeries::new(8);
        for (t, v) in [(0u64, 1.5f64), (250, 2.0), (500, 2.25)] {
            a.push(t, v);
            b.push(t, v);
        }
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_json(), "[[0,1.5],[250,2.0],[500,2.25]]");
        crate::json::parse(&a.to_json()).expect("valid JSON");
        assert_eq!(TimeSeries::new(2).to_json(), "[]");
    }
}
