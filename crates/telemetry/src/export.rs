//! Exporters over a drained set of spans: Chrome `trace_event` JSON,
//! collapsed-stack flamegraph text, an aggregated self-time table, and
//! the canonical logical tree used for determinism checks.
//!
//! Two parent relations coexist (see [`SpanRecord`]): the *stack* parent
//! (same thread) drives Chrome B/E nesting per track, while the
//! *logical* parent (`link`, falling back to stack parent) drives the
//! flamegraph and the canonical tree. Span ids are assigned from a
//! monotonic counter and a parent always opens before its child, so both
//! relations are acyclic by construction (`parent < id`); exporters still
//! cap traversal depth defensively.

use crate::json::json_escape_into;
use crate::log::LogRecord;
use crate::span::{FlowRecord, SpanId, SpanRecord};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Hard cap on ancestor-chain walks; real nesting is single digits.
const MAX_DEPTH: usize = 128;

/// A drained, id-ordered set of completed spans, plus the log records
/// and flow events captured alongside them.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    spans: Vec<SpanRecord>,
    logs: Vec<LogRecord>,
    flows: Vec<FlowRecord>,
}

impl SpanSet {
    /// Build a set from arbitrary records (sorts by id). Public so tests
    /// and benches can assemble synthetic sets.
    pub fn from_records(spans: Vec<SpanRecord>) -> Self {
        Self::with_events(spans, Vec::new(), Vec::new())
    }

    /// Build a set from spans plus captured logs and flow events.
    pub fn with_events(
        mut spans: Vec<SpanRecord>,
        logs: Vec<LogRecord>,
        flows: Vec<FlowRecord>,
    ) -> Self {
        spans.sort_by_key(|s| s.id);
        SpanSet { spans, logs, flows }
    }

    /// The spans, ordered by id.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Captured log records, in capture order.
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// Captured flow events, in capture order.
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn index_by_id(&self) -> BTreeMap<SpanId, usize> {
        self.spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect()
    }

    /// The logical parent of span `i`: its explicit `link` when present,
    /// else its stack parent — either way only if that span is in the set.
    fn logical_parent(&self, i: usize, by_id: &BTreeMap<SpanId, usize>) -> Option<usize> {
        let s = &self.spans[i];
        s.link
            .or(s.parent)
            .and_then(|id| by_id.get(&id).copied())
    }

    /// Chrome `trace_event` JSON: `{"traceEvents": [...]}`, loadable in
    /// `chrome://tracing` and Perfetto. Spans nest by stack parent per
    /// thread track and are emitted as recursive B/E pairs, so the
    /// output is structurally balanced whatever the timestamps say.
    ///
    /// Records are grouped into *processes* by their `process` label:
    /// empty means this process (rendered as `"flagsim"`, always pid 1);
    /// a coordinator merging worker-shipped telemetry stamps each batch
    /// with the worker's name, so a distributed sweep renders as one
    /// timeline with a track group per worker. Log records become
    /// instant (`"i"`) events and flow events become `"s"`/`"f"` arrow
    /// pairs (lease grants drawn coordinator → worker).
    pub fn chrome_trace(&self) -> String {
        let by_id = self.index_by_id();
        // Distinct process labels; "" (the local process) sorts first
        // under natural_cmp and is always present, so it keeps pid 1.
        let mut proc_names: Vec<&str> = self
            .spans
            .iter()
            .map(|s| s.process.as_str())
            .chain(self.logs.iter().map(|l| l.process.as_str()))
            .chain(self.flows.iter().map(|f| f.process.as_str()))
            .chain(std::iter::once(""))
            .collect();
        proc_names.sort_by(|a, b| natural_cmp(a, b));
        proc_names.dedup();
        let pid_of: BTreeMap<&str, usize> = proc_names
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i + 1))
            .collect();

        // Track names per process in natural order -> stable small tids.
        let mut tracks_of: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (process, track) in self
            .spans
            .iter()
            .map(|s| (s.process.as_str(), s.track.as_str()))
            .chain(self.logs.iter().map(|l| (l.process.as_str(), l.track.as_str())))
            .chain(self.flows.iter().map(|f| (f.process.as_str(), f.track.as_str())))
        {
            tracks_of.entry(pid_of[process]).or_default().push(track);
        }
        for v in tracks_of.values_mut() {
            v.sort_by(|a, b| natural_cmp(a, b));
            v.dedup();
        }
        let tid_of: BTreeMap<(usize, &str), usize> = tracks_of
            .iter()
            .flat_map(|(&pid, tracks)| {
                tracks.iter().enumerate().map(move |(i, &t)| ((pid, t), i + 1))
            })
            .collect();

        // Per-(process, track) forests keyed on the stack parent; a span
        // whose recorded parent is absent or lives on another track (or
        // in another process) roots its own track so per-tid nesting
        // stays balanced.
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut roots: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let stack_parent = s
                .parent
                .and_then(|id| by_id.get(&id).copied())
                .filter(|&p| {
                    self.spans[p].track == s.track && self.spans[p].process == s.process
                });
            match stack_parent {
                Some(p) => children.entry(p).or_default().push(i),
                None => roots
                    .entry((pid_of[s.process.as_str()], s.track.as_str()))
                    .or_default()
                    .push(i),
            }
        }
        for v in children.values_mut() {
            v.sort_by_key(|&i| (self.spans[i].start_ns, self.spans[i].id));
        }
        for v in roots.values_mut() {
            v.sort_by_key(|&i| (self.spans[i].start_ns, self.spans[i].id));
        }

        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        for name in &proc_names {
            let pid = pid_of[name];
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": ",
            );
            push_json_string(&mut out, if name.is_empty() { "flagsim" } else { name });
            out.push_str("}}");
            for track in tracks_of.get(&pid).map(Vec::as_slice).unwrap_or(&[]) {
                out.push_str(",\n");
                let _ = write!(
                    out,
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {}, \
                     \"args\": {{\"name\": ",
                    tid_of[&(pid, *track)]
                );
                push_json_string(&mut out, track);
                out.push_str("}}");
            }
        }
        for (&(pid, _), indices) in &roots {
            for &root in indices {
                self.emit_chrome_span(&mut out, root, pid, &tid_of, &children, 0);
            }
        }
        for l in &self.logs {
            let pid = pid_of[l.process.as_str()];
            out.push_str(",\n");
            let _ = write!(out, "{{\"name\": ");
            push_json_string(&mut out, &l.target);
            let _ = write!(
                out,
                ", \"cat\": \"log\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {:.3}, \
                 \"pid\": {pid}, \"tid\": {}, \"args\": {{\"level\": \"{}\", \"message\": ",
                l.ts_ns as f64 / 1_000.0,
                tid_of.get(&(pid, l.track.as_str())).copied().unwrap_or(0),
                l.level
            );
            push_json_string(&mut out, &l.message);
            for (k, v) in &l.fields {
                out.push_str(", ");
                push_json_string(&mut out, k);
                out.push_str(": ");
                push_json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        for f in &self.flows {
            let pid = pid_of[f.process.as_str()];
            out.push_str(",\n");
            let _ = write!(out, "{{\"name\": ");
            push_json_string(&mut out, f.name);
            let _ = write!(
                out,
                ", \"cat\": \"flow\", \"ph\": \"{}\", \"id\": {}, \"ts\": {:.3}, \
                 \"pid\": {pid}, \"tid\": {}{}}}",
                if f.start { 's' } else { 'f' },
                f.id,
                f.ts_ns as f64 / 1_000.0,
                tid_of.get(&(pid, f.track.as_str())).copied().unwrap_or(0),
                if f.start { "" } else { ", \"bp\": \"e\"" }
            );
        }
        out.push_str("\n]}\n");
        out
    }

    fn emit_chrome_span(
        &self,
        out: &mut String,
        i: usize,
        pid: usize,
        tid_of: &BTreeMap<(usize, &str), usize>,
        children: &BTreeMap<usize, Vec<usize>>,
        depth: usize,
    ) {
        let s = &self.spans[i];
        let tid = tid_of.get(&(pid, s.track.as_str())).copied().unwrap_or(0);
        let start = s.start_ns;
        // A span never ends before it starts or before its children do;
        // clamp anyway so a malformed record cannot unbalance the trace.
        let mut end = s.end_ns.max(start);
        let kids: &[usize] = if depth < MAX_DEPTH {
            children.get(&i).map(Vec::as_slice).unwrap_or(&[])
        } else {
            &[]
        };
        for &k in kids {
            end = end.max(self.spans[k].end_ns);
        }
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\": ",
        );
        push_json_string(out, s.name);
        let _ = write!(
            out,
            ", \"cat\": \"{}\", \"ph\": \"B\", \"ts\": {:.3}, \"pid\": {pid}, \"tid\": {}, \
             \"args\": {{\"id\": {}",
            s.category,
            start as f64 / 1_000.0,
            tid,
            s.id
        );
        if let Some(link) = s.link {
            let _ = write!(out, ", \"link\": {link}");
        }
        for (k, v) in &s.args {
            out.push_str(", ");
            push_json_string(out, k);
            out.push_str(": ");
            push_json_string(out, v);
        }
        out.push_str("}}");
        for &k in kids {
            self.emit_chrome_span(out, k, pid, tid_of, children, depth + 1);
        }
        out.push_str(",\n");
        let _ = write!(out, "{{\"name\": ");
        push_json_string(out, s.name);
        let _ = write!(
            out,
            ", \"cat\": \"{}\", \"ph\": \"E\", \"ts\": {:.3}, \"pid\": {pid}, \"tid\": {}}}",
            s.category,
            end as f64 / 1_000.0,
            tid
        );
    }

    /// Self time per span in nanoseconds: duration minus the durations
    /// of its logical children.
    fn self_times_ns(&self, by_id: &BTreeMap<SpanId, usize>) -> Vec<u64> {
        let mut child_sum = vec![0u64; self.spans.len()];
        for i in 0..self.spans.len() {
            if let Some(p) = self.logical_parent(i, by_id) {
                child_sum[p] = child_sum[p].saturating_add(self.spans[i].duration_ns());
            }
        }
        self.spans
            .iter()
            .zip(&child_sum)
            .map(|(s, &c)| s.duration_ns().saturating_sub(c))
            .collect()
    }

    /// Collapsed-stack flamegraph text: one line per distinct logical
    /// stack, `root;child;leaf <self-time-µs>`, suitable for
    /// `flamegraph.pl` or speedscope.
    pub fn folded_stacks(&self) -> String {
        let by_id = self.index_by_id();
        let self_ns = self.self_times_ns(&by_id);
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for (i, &self_i) in self_ns.iter().enumerate() {
            let mut frames = vec![self.spans[i].name];
            let mut cur = i;
            for _ in 0..MAX_DEPTH {
                match self.logical_parent(cur, &by_id) {
                    Some(p) => {
                        frames.push(self.spans[p].name);
                        cur = p;
                    }
                    None => break,
                }
            }
            frames.reverse();
            *agg.entry(frames.join(";")).or_default() += self_i / 1_000;
        }
        let mut out = String::new();
        for (path, micros) in &agg {
            let _ = writeln!(out, "{path} {micros}");
        }
        out
    }

    /// Aggregated profile table: per span name, call count, total and
    /// self wall time, and self share — sorted by self time descending.
    pub fn self_time_table(&self) -> String {
        let by_id = self.index_by_id();
        let self_ns = self.self_times_ns(&by_id);
        #[derive(Default)]
        struct Row {
            calls: u64,
            total_ns: u64,
            self_ns: u64,
        }
        let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let row = rows.entry(s.name).or_default();
            row.calls += 1;
            row.total_ns += s.duration_ns();
            row.self_ns += self_ns[i];
        }
        let grand_self: u64 = rows.values().map(|r| r.self_ns).sum();
        let mut ordered: Vec<(&str, Row)> = rows.into_iter().collect();
        ordered.sort_by(|(an, a), (bn, b)| b.self_ns.cmp(&a.self_ns).then(an.cmp(bn)));

        let name_w = ordered
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>7}",
            "span", "calls", "total ms", "self ms", "self %"
        );
        for (name, row) in &ordered {
            let pct = if grand_self > 0 {
                row.self_ns as f64 * 100.0 / grand_self as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>6.1}%",
                name,
                row.calls,
                row.total_ns as f64 / 1e6,
                row.self_ns as f64 / 1e6,
                pct
            );
        }
        out
    }

    /// The canonical logical span tree: every non-`"runtime"` span,
    /// parented by `link`-then-`parent` (climbing over any runtime
    /// ancestors), rendered as an indented outline with timestamps, ids,
    /// and thread assignment stripped. Children are ordered by their
    /// rendered subtree (natural numeric order), so two runs doing the
    /// same simulated work produce byte-identical trees regardless of
    /// `--jobs`, scheduling, or wall-clock timing.
    pub fn canonical_tree(&self) -> String {
        let by_id = self.index_by_id();
        let retained: Vec<usize> = (0..self.spans.len())
            .filter(|&i| self.spans[i].category != "runtime")
            .collect();
        // Nearest retained logical ancestor.
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for &i in &retained {
            let mut anc = self.logical_parent(i, &by_id);
            for _ in 0..MAX_DEPTH {
                match anc {
                    Some(a) if self.spans[a].category == "runtime" => {
                        anc = self.logical_parent(a, &by_id);
                    }
                    _ => break,
                }
            }
            match anc {
                Some(a) => children.entry(a).or_default().push(i),
                None => roots.push(i),
            }
        }
        let mut rendered: Vec<String> = roots
            .iter()
            .map(|&r| self.render_canonical(r, &children, 0))
            .collect();
        rendered.sort_by(|a, b| natural_cmp(a, b));
        rendered.concat()
    }

    fn render_canonical(
        &self,
        i: usize,
        children: &BTreeMap<usize, Vec<usize>>,
        depth: usize,
    ) -> String {
        let s = &self.spans[i];
        let mut line = format!("{}{}", "  ".repeat(depth), s.name);
        for (k, v) in &s.args {
            let _ = write!(line, " {k}={v}");
        }
        line.push('\n');
        if depth >= MAX_DEPTH {
            return line;
        }
        let mut subtrees: Vec<String> = children
            .get(&i)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&c| self.render_canonical(c, children, depth + 1))
            .collect();
        subtrees.sort_by(|a, b| natural_cmp(a, b));
        let mut out = line;
        out.extend(subtrees);
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    json_escape_into(s, out);
    out.push('"');
}

/// Compare strings with digit runs ordered numerically, so
/// `rep=2 < rep=10` (plain lexical order would interleave them and make
/// tree output depend on how many digits an index happens to have).
fn natural_cmp(a: &str, b: &str) -> Ordering {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].is_ascii_digit() && b[j].is_ascii_digit() {
            let si = i;
            while i < a.len() && a[i].is_ascii_digit() {
                i += 1;
            }
            let sj = j;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
            let na = trim_leading_zeros(&a[si..i]);
            let nb = trim_leading_zeros(&b[sj..j]);
            let ord = na.len().cmp(&nb.len()).then_with(|| na.cmp(nb));
            if ord != Ordering::Equal {
                return ord;
            }
        } else {
            let ord = a[i].cmp(&b[j]);
            if ord != Ordering::Equal {
                return ord;
            }
            i += 1;
            j += 1;
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

fn trim_leading_zeros(digits: &[u8]) -> &[u8] {
    let first = digits.iter().position(|&d| d != b'0').unwrap_or(digits.len() - 1);
    &digits[first..]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        id: SpanId,
        parent: Option<SpanId>,
        link: Option<SpanId>,
        category: &'static str,
        name: &'static str,
        track: &str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            link,
            category,
            name,
            track: track.to_owned(),
            process: String::new(),
            start_ns,
            end_ns,
            args: Vec::new(),
        }
    }

    fn sample_set() -> SpanSet {
        // main:     sweep [0..100]
        // worker-0:   worker [5..95] > rep(link->sweep) [10..50]
        // worker-1:   worker [5..90] > rep(link->sweep) [12..60]
        let mut sweep = rec(1, None, None, "sim", "sweep", "main", 0, 100_000);
        sweep.args.push(("reps", "2".to_owned()));
        let w0 = rec(2, None, None, "runtime", "sweep.worker", "worker-0", 5_000, 95_000);
        let w1 = rec(3, None, None, "runtime", "sweep.worker", "worker-1", 5_000, 90_000);
        let mut r0 = rec(4, Some(2), Some(1), "sim", "rep", "worker-0", 10_000, 50_000);
        r0.args.push(("rep", "0".to_owned()));
        let mut r1 = rec(5, Some(3), Some(1), "sim", "rep", "worker-1", 12_000, 60_000);
        r1.args.push(("rep", "1".to_owned()));
        SpanSet::from_records(vec![sweep, w0, w1, r0, r1])
    }

    #[test]
    fn chrome_trace_is_valid_and_balanced() {
        let set = sample_set();
        let json = set.chrome_trace();
        let n = crate::json::validate_chrome_trace(&json).expect("valid chrome trace");
        // 2 B/E per span + process_name + 3 thread_name metadata events.
        assert_eq!(n, set.len() * 2 + 4);
    }

    #[test]
    fn folded_stacks_follow_logical_parents() {
        let set = sample_set();
        let folded = set.folded_stacks();
        assert!(folded.contains("sweep;rep "), "{folded}");
        assert!(folded.contains("sweep.worker "), "{folded}");
        // The reps are NOT under the workers in the logical view.
        assert!(!folded.contains("sweep.worker;rep"), "{folded}");
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("path count");
            count.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let set = sample_set();
        let table = set.self_time_table();
        // sweep total 100µs; children (reps) 40+48 = 88µs; self = 12µs.
        let sweep_row = table.lines().find(|l| l.starts_with("sweep ")).expect("row");
        assert!(sweep_row.contains("0.100"), "{table}");
        assert!(sweep_row.contains("0.012"), "{table}");
        assert!(table.lines().next().unwrap().contains("self %"), "{table}");
    }

    #[test]
    fn canonical_tree_ignores_runtime_ids_and_order() {
        let a = sample_set();
        // Same logical work: different ids, insertion order, timings, and
        // worker layout (all on one worker).
        let mut sweep = rec(10, None, None, "sim", "sweep", "main", 0, 999_000);
        sweep.args.push(("reps", "2".to_owned()));
        let w = rec(11, None, None, "runtime", "sweep.worker", "worker-0", 1, 999);
        let mut r1 = rec(12, Some(11), Some(10), "sim", "rep", "worker-0", 2, 30);
        r1.args.push(("rep", "1".to_owned()));
        let mut r0 = rec(13, Some(11), Some(10), "sim", "rep", "worker-0", 31, 60);
        r0.args.push(("rep", "0".to_owned()));
        let b = SpanSet::from_records(vec![r1, w, sweep, r0]);
        assert_eq!(a.canonical_tree(), b.canonical_tree());
        let tree = a.canonical_tree();
        assert!(tree.starts_with("sweep reps=2\n"), "{tree}");
        assert!(tree.contains("  rep rep=0\n"), "{tree}");
        assert!(!tree.contains("worker"), "{tree}");
    }

    #[test]
    fn natural_cmp_orders_digit_runs_numerically() {
        assert_eq!(natural_cmp("rep=2", "rep=10"), Ordering::Less);
        assert_eq!(natural_cmp("rep=10", "rep=10"), Ordering::Equal);
        assert_eq!(natural_cmp("a2b", "a2c"), Ordering::Less);
        assert_eq!(natural_cmp("rep=002", "rep=2"), Ordering::Equal);
        assert_eq!(natural_cmp("w-9", "w-11"), Ordering::Less);
    }

    #[test]
    fn chrome_trace_groups_processes_and_keeps_local_pid_1() {
        // One local span plus two spans shipped from worker processes.
        let local = rec(1, None, None, "sim", "sweep", "main", 0, 100_000);
        let mut wa = rec(2, None, None, "sim", "rep", "session", 5_000, 40_000);
        wa.process = "w-alpha".to_owned();
        let mut wb = rec(3, None, None, "sim", "rep", "session", 6_000, 50_000);
        wb.process = "w-beta".to_owned();
        let json = SpanSet::from_records(vec![local, wa, wb]).chrome_trace();
        crate::json::validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(json.contains("\"args\": {\"name\": \"flagsim\"}"), "{json}");
        assert!(json.contains("\"args\": {\"name\": \"w-alpha\"}"), "{json}");
        assert!(json.contains("\"args\": {\"name\": \"w-beta\"}"), "{json}");
        // Local process is pid 1; workers get their own pids.
        assert!(json.contains("\"pid\": 1"), "{json}");
        assert!(json.contains("\"pid\": 2"), "{json}");
        assert!(json.contains("\"pid\": 3"), "{json}");
        // Same track name in different processes must not share a pid.
        let parsed = crate::json::parse(&json).expect("parses");
        let events = parsed.get("traceEvents").and_then(|v| v.as_array()).expect("array");
        let rep_pids: Vec<f64> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("rep")
                    && e.get("ph").and_then(|p| p.as_str()) == Some("B")
            })
            .map(|e| e.get("pid").and_then(|p| p.as_f64()).expect("pid"))
            .collect();
        assert_eq!(rep_pids.len(), 2, "{json}");
        assert_ne!(rep_pids[0], rep_pids[1], "{json}");
    }

    #[test]
    fn logs_export_as_instant_events() {
        let mut log = crate::log::LogRecord {
            ts_ns: 7_000,
            level: crate::log::Level::Warn,
            target: "shard.coordinator".to_owned(),
            message: "worker lost".to_owned(),
            fields: vec![("worker".to_owned(), "w-0".to_owned())],
            track: "main".to_owned(),
            process: String::new(),
        };
        log.fields.push(("attempt".to_owned(), "2".to_owned()));
        let set = SpanSet::with_events(
            vec![rec(1, None, None, "sim", "sweep", "main", 0, 100_000)],
            vec![log],
            Vec::new(),
        );
        let json = set.chrome_trace();
        crate::json::validate_chrome_trace(&json).expect("instant events do not unbalance");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"level\": \"warn\""), "{json}");
        assert!(json.contains("\"message\": \"worker lost\""), "{json}");
        assert!(json.contains("\"worker\": \"w-0\""), "{json}");
    }

    #[test]
    fn flows_export_as_start_finish_pairs() {
        let start = FlowRecord {
            id: 42,
            name: "lease",
            ts_ns: 1_000,
            track: "main".to_owned(),
            process: String::new(),
            start: true,
        };
        let mut finish = start.clone();
        finish.ts_ns = 9_000;
        finish.track = "session".to_owned();
        finish.process = "w-0".to_owned();
        finish.start = false;
        let set = SpanSet::with_events(
            vec![rec(1, None, None, "sim", "sweep", "main", 0, 100_000)],
            Vec::new(),
            vec![start, finish],
        );
        let json = set.chrome_trace();
        crate::json::validate_chrome_trace(&json).expect("flow events do not unbalance");
        assert!(json.contains("\"ph\": \"s\", \"id\": 42"), "{json}");
        assert!(json.contains("\"ph\": \"f\", \"id\": 42"), "{json}");
        assert!(json.contains("\"bp\": \"e\""), "{json}");
    }

    #[test]
    fn empty_set_exports_are_valid() {
        let set = SpanSet::from_records(Vec::new());
        assert!(set.is_empty());
        assert!(crate::json::validate_chrome_trace(&set.chrome_trace()).is_ok());
        assert_eq!(set.folded_stacks(), "");
        assert_eq!(set.canonical_tree(), "");
        assert!(set.self_time_table().contains("span"));
    }
}
