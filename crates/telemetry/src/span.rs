//! Structured spans: RAII guards, per-thread LIFO stacks, and batched
//! lock-free hand-off to the installed [`crate::collector::Collector`].
//!
//! A span is opened with [`span`] (or [`span_linked`] to attach a
//! *logical* parent across threads) and closed when the returned
//! [`SpanGuard`] drops. Each thread keeps its own span stack and record
//! buffer; buffers are flushed to the global collector in batches over an
//! mpsc channel — never while holding a lock on the hot path — whenever
//! the stack empties or the buffer grows past a threshold.
//!
//! When no collector is installed every entry point degrades to a single
//! relaxed atomic load (see the overhead gate in `flagsim-bench`).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifier of a span, unique within the process lifetime.
pub type SpanId = u64;

/// A completed span as shipped to the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique id.
    pub id: SpanId,
    /// Stack parent: the span that was open on the *same thread* when
    /// this one started. Drives Chrome-trace B/E nesting per track.
    pub parent: Option<SpanId>,
    /// Logical parent: an explicit cross-thread link (e.g. a sweep rep
    /// running on a worker thread links to the sweep span on the main
    /// thread). Preferred over `parent` when building logical trees.
    pub link: Option<SpanId>,
    /// Coarse category. `"sim"` spans describe deterministic simulated
    /// work and form the canonical tree; `"runtime"` spans describe host
    /// execution (worker lifecycles) whose count varies with `--jobs`.
    pub category: &'static str,
    /// Span name (static so the disabled path never allocates).
    pub name: &'static str,
    /// Track label of the thread that ran the span.
    pub track: String,
    /// Process label in exported traces. Empty for spans recorded in
    /// this process; a coordinator merging spans shipped from worker
    /// processes stamps each batch with the worker's name so the Chrome
    /// trace shows one track group per process.
    pub process: String,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process telemetry epoch.
    pub end_ns: u64,
    /// Key/value annotations added via [`SpanGuard::arg`].
    pub args: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A point event binding two trace locations into one *flow arrow*
/// (Chrome `ph:"s"`/`ph:"f"`): e.g. a coordinator granting a lease
/// (start) and the worker picking it up (finish). Matching `id`s pair
/// the two halves across tracks and processes.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Pairing key shared by the start and finish halves.
    pub id: u64,
    /// Flow name (e.g. `"lease"`).
    pub name: &'static str,
    /// Event time, nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Track label of the thread that recorded the event.
    pub track: String,
    /// Process label (see [`SpanRecord::process`]).
    pub process: String,
    /// True for the flow's start half, false for its finish.
    pub start: bool,
}

/// Record one half of a flow arrow on the current thread's track.
/// A no-op (one relaxed atomic load) when no collector is installed.
pub fn flow(name: &'static str, id: u64, start: bool) {
    if !crate::collector::enabled() {
        return;
    }
    crate::collector::submit_flow(FlowRecord {
        id,
        name,
        ts_ns: now_ns(),
        track: current_track(),
        process: String::new(),
        start,
    });
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Reserve a contiguous block of `n` fresh span ids and return the first.
/// Used when merging spans recorded in *another* process (whose ids came
/// from that process's counter) into this process's collector: remapping
/// into a fresh block keeps ids unique without coordinating counters.
pub fn alloc_span_ids(n: u64) -> SpanId {
    NEXT_ID.fetch_add(n.max(1), Ordering::Relaxed)
}

/// How many distinct strings [`intern`] will leak before refusing.
/// Span/category names form a small closed vocabulary; the cap only
/// exists so a hostile peer cannot grow the leak without bound.
const INTERN_CAP: usize = 4096;

/// Intern `s` into a `&'static str`. [`SpanRecord`] keeps its name and
/// category static so the disabled hot path never allocates; spans
/// decoded off a wire arrive as owned strings and pass through here.
/// Interning leaks each *distinct* string once (bounded by
/// `INTERN_CAP`; past the cap every new string maps to `"interned"`).
pub fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = match INTERNED.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&found) = set.get(s) {
        return found;
    }
    if set.len() >= INTERN_CAP {
        return "interned";
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the (lazily initialised) process telemetry epoch.
pub(crate) fn now_ns() -> u64 {
    // u64 nanoseconds cover ~584 years of process uptime.
    epoch().elapsed().as_nanos() as u64
}

/// Flush when a thread's buffer reaches this many records even if its
/// span stack has not emptied yet.
const FLUSH_THRESHOLD: usize = 128;

struct ThreadState {
    stack: Vec<SpanId>,
    buf: Vec<SpanRecord>,
    track: String,
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        stack: Vec::new(),
        buf: Vec::new(),
        track: default_track(),
    });
}

fn default_track() -> String {
    let cur = std::thread::current();
    match cur.name() {
        Some(name) => name.to_owned(),
        None => format!("{:?}", cur.id()),
    }
}

/// Label the current thread's track in exported traces (e.g.
/// `"worker-0"`). Affects spans opened after the call.
pub fn set_thread_track(label: &str) {
    let _ = TLS.try_with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            t.track = label.to_owned();
        }
    });
}

/// The current thread's track label (thread name unless overridden via
/// [`set_thread_track`]).
pub fn current_track() -> String {
    TLS.try_with(|tls| tls.try_borrow().ok().map(|t| t.track.clone()))
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// The innermost span currently open on this thread, if any. Pass it to
/// [`span_linked`] on another thread to record a logical parent edge.
pub fn current_span() -> Option<SpanId> {
    if !crate::collector::enabled() {
        return None;
    }
    TLS.try_with(|tls| tls.try_borrow().ok().and_then(|t| t.stack.last().copied()))
        .ok()
        .flatten()
}

/// Open a span; it closes when the returned guard drops. A no-op (one
/// relaxed atomic load, no allocation) when no collector is installed.
pub fn span(category: &'static str, name: &'static str) -> SpanGuard {
    span_linked(category, name, None)
}

/// Open a span with an explicit logical parent (`link`), typically a
/// span id captured on another thread via [`current_span`].
pub fn span_linked(category: &'static str, name: &'static str, link: Option<SpanId>) -> SpanGuard {
    if !crate::collector::enabled() {
        return SpanGuard { rec: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut parent = None;
    let mut track = String::new();
    let _ = TLS.try_with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            parent = t.stack.last().copied();
            t.stack.push(id);
            track.clone_from(&t.track);
        }
    });
    SpanGuard {
        rec: Some(SpanRecord {
            id,
            parent,
            link,
            category,
            name,
            track,
            process: String::new(),
            start_ns: now_ns(),
            end_ns: 0,
            args: Vec::new(),
        }),
    }
}

/// RAII guard for an open span; records the span on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope of its guard; dropping it immediately records an empty span"]
pub struct SpanGuard {
    rec: Option<SpanRecord>,
}

impl SpanGuard {
    /// The span's id, or `None` when telemetry is disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.rec.as_ref().map(|r| r.id)
    }

    /// Attach a key/value annotation (builder style). Free when
    /// telemetry is disabled — the value is never formatted.
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(rec) = self.rec.as_mut() {
            rec.args.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut rec) = self.rec.take() else {
            return;
        };
        rec.end_ns = now_ns();
        let stray = TLS
            .try_with(move |tls| {
                let Ok(mut t) = tls.try_borrow_mut() else {
                    return Some(rec);
                };
                // Guards close LIFO in normal use; tolerate a guard that
                // was moved to (and dropped on) another thread.
                if t.stack.last() == Some(&rec.id) {
                    t.stack.pop();
                } else if let Some(pos) = t.stack.iter().rposition(|&x| x == rec.id) {
                    t.stack.remove(pos);
                }
                t.buf.push(rec);
                if t.stack.is_empty() || t.buf.len() >= FLUSH_THRESHOLD {
                    let batch = std::mem::take(&mut t.buf);
                    drop(t);
                    crate::collector::submit(batch);
                }
                None
            })
            .ok()
            .flatten();
        // TLS inaccessible (borrowed re-entrantly): ship directly.
        if let Some(stray) = stray {
            crate::collector::submit(vec![stray]);
        }
    }
}

/// Force-flush the current thread's buffered spans to the collector.
/// Called automatically whenever the thread's span stack empties; call
/// manually before joining a thread that parks with spans buffered.
pub fn flush_thread() {
    let _ = TLS.try_with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            if !t.buf.is_empty() {
                let batch = std::mem::take(&mut t.buf);
                drop(t);
                crate::collector::submit(batch);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = crate::test_lock();
        assert!(!crate::collector::enabled());
        let g = span("sim", "noop").arg("k", 42);
        assert_eq!(g.id(), None);
        assert_eq!(current_span(), None);
        drop(g);
    }

    #[test]
    fn nesting_and_args_are_recorded() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        let outer = span("sim", "outer");
        let outer_id = outer.id();
        {
            let _inner = span("sim", "inner").arg("rep", 3);
            assert_eq!(current_span(), _inner.id());
        }
        drop(outer);
        let set = col.finish();
        let spans = set.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.args, vec![("rep", "3".to_owned())]);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn cross_thread_link_is_preserved() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        let root = span("sim", "root");
        let root_id = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                set_thread_track("worker-test");
                let _child = span_linked("sim", "child", root_id);
            });
        });
        drop(root);
        let set = col.finish();
        let child = set.spans().iter().find(|s| s.name == "child").expect("child");
        assert_eq!(child.link, root_id);
        assert_eq!(child.parent, None);
        assert_eq!(child.track, "worker-test");
    }

    #[test]
    fn intern_returns_the_same_static_for_equal_strings() {
        let a = intern("shard.lease-test");
        // A runtime-built string must still intern to the same static.
        let b = intern(&format!("shard.lease-{}", "test"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "shard.lease-test");
    }

    #[test]
    fn alloc_span_ids_reserves_disjoint_blocks() {
        let a = alloc_span_ids(10);
        let b = alloc_span_ids(10);
        assert!(b >= a + 10);
    }

    #[test]
    fn flows_reach_the_collector_with_track_labels() {
        let _serial = crate::test_lock();
        flow("lease", 1, true); // disabled: inert
        let col = Collector::install();
        set_thread_track("coord-test");
        flow("lease", 7, true);
        flow("lease", 7, false);
        let set = col.finish();
        let flows = set.flows();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].id, 7);
        assert!(flows[0].start && !flows[1].start);
        assert_eq!(flows[0].track, "coord-test");
    }

    #[test]
    fn flush_threshold_does_not_drop_records() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        let root = span("sim", "root");
        for _ in 0..(FLUSH_THRESHOLD * 2 + 7) {
            let _s = span("sim", "leaf");
        }
        drop(root);
        let set = col.finish();
        assert_eq!(set.spans().len(), FLUSH_THRESHOLD * 2 + 7 + 1);
    }
}
