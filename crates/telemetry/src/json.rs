//! Hand-rolled JSON support: escaping for the exporters, and a small
//! recursive-descent parser used to *validate* what they emit.
//!
//! The workspace is offline (no serde), so every exporter writes JSON by
//! hand; this module closes the loop by parsing it back. The parser
//! covers the full JSON grammar minus some float edge cases (good enough
//! to reject anything `chrome://tracing` would reject), and
//! [`validate_chrome_trace`] layers the trace-event rules on top:
//! a `traceEvents` array whose `"B"`/`"E"` events form balanced,
//! name-matched stacks per thread track.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` into `out` as JSON string *content* (no surrounding
/// quotes).
pub fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escape `s` as a complete JSON string, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json_escape_into(s, &mut out);
    out.push('"');
    out
}

/// Encode an `f64` as its exact IEEE-754 bit pattern in fixed-width
/// lowercase hex. JSON numbers round-trip through decimal text, which is
/// lossy in general; anything that must restore a float *bit-for-bit*
/// (statistics snapshots, checkpoint files, the shard wire protocol)
/// ships this string instead.
pub fn f64_bits_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decode a string produced by [`f64_bits_hex`] back into the exact
/// `f64`. Rejects anything that is not 16 hex digits.
pub fn f64_from_bits_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("bad f64 bits {s:?}: want 16 hex digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits {s:?}"))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted, later duplicates win.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object's field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document. Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates are accepted as replacement chars;
                            // the exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x20 => return Err(format!("raw control byte {b:#x} in string")),
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_owned())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Validate a Chrome `trace_event` JSON document: it must parse, carry a
/// non-empty object with a `traceEvents` array, and every `"B"` duration
/// event must be closed by a name-matched `"E"` on the same `pid`/`tid`
/// track in stack (LIFO) order. Returns the number of trace events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut stacks: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let track = (
            format!("{:?}", e.get("pid")),
            format!("{:?}", e.get("tid")),
        );
        match ph {
            "B" => stacks.entry(track).or_default().push(name.to_owned()),
            "E" => {
                let top = stacks.entry(track).or_default().pop();
                match top {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E {name:?} closes B {open:?} (mismatched nesting)"
                        ))
                    }
                    None => return Err(format!("event {i}: E {name:?} without open B")),
                }
            }
            // Metadata, counters, instants are fine as-is.
            _ => {}
        }
    }
    for ((pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "track pid={pid} tid={tid}: {} span(s) left open: {:?}",
                stack.len(),
                stack
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, -3.7e-12, f64::NAN] {
            let hex = f64_bits_hex(x);
            assert_eq!(hex.len(), 16);
            let back = f64_from_bits_hex(&hex).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert!(f64_from_bits_hex("nonsense").is_err());
        assert!(f64_from_bits_hex("3ff").is_err());
        assert!(f64_from_bits_hex("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(300.0));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\": nul}").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t unicode\u{1} ok";
        let doc = format!("{{\"k\": {}}}", json_string(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn chrome_validator_accepts_balanced_and_rejects_unbalanced() {
        let good = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1}
        ]}"#;
        assert_eq!(validate_chrome_trace(good), Ok(4));
        let dangling = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_chrome_trace(dangling).unwrap_err().contains("left open"));
        let crossed = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_chrome_trace(crossed).unwrap_err().contains("mismatched"));
        let stray = r#"{"traceEvents": [
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_chrome_trace(stray).unwrap_err().contains("without open"));
    }

    #[test]
    fn chrome_validator_tracks_are_independent() {
        let two_tracks = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "w", "ph": "B", "ts": 0, "pid": 1, "tid": 2},
            {"name": "w", "ph": "E", "ts": 5, "pid": 1, "tid": 2},
            {"name": "a", "ph": "E", "ts": 9, "pid": 1, "tid": 1}
        ]}"#;
        assert_eq!(validate_chrome_trace(two_tracks), Ok(4));
    }
}
