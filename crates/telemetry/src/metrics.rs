//! A thread-safe registry of counters, gauges, and fixed-bucket
//! histograms, with text and JSON exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics: register once, then update without touching the registry
//! lock. The registry lock is only taken on registration and exposition,
//! so instrumented hot paths that cache their handles pay one atomic
//! add per update.

use crate::json::json_escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a floating-point value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds (a 1-2-5 decade ladder), chosen
/// to cover both millisecond wall times and small counts.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
    10_000.0,
];

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow (+Inf) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, accumulated as integer micro-units so the
    /// atomics stay lock-free (an f64 CAS loop would also work, but this
    /// keeps every update a single `fetch_add`).
    sum_micros: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() && value > 0.0 {
            self.0
                .sum_micros
                .fetch_add((value * 1e6) as u64, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// `(upper_bound, count)` per bucket; the final entry's bound is
    /// `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.0
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: named metrics, created on first touch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    tables: Mutex<Tables>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Tables> {
        // A panic while holding this lock can only come from another
        // metric call panicking, which none do; recover rather than
        // poison every later exposition.
        match self.tables.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock().counters.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock().gauges.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name` with [`DEFAULT_BUCKETS`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, DEFAULT_BUCKETS)
    }

    /// The histogram named `name`; `bounds` apply only on first creation.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        let t = self.lock();
        t.counters.is_empty() && t.gauges.is_empty() && t.histograms.is_empty()
    }

    /// Plain-text exposition, one metric per line, sorted by name:
    ///
    /// ```text
    /// counter desim.events 5321
    /// gauge sweep.jobs 4
    /// histogram desim.run_ms count=8 sum=123.456 le0.5=0 ... le+inf=1
    /// ```
    pub fn render_text(&self) -> String {
        let t = self.lock();
        let mut out = String::new();
        for (name, c) in &t.counters {
            let _ = writeln!(out, "counter {} {}", name, c.get());
        }
        for (name, g) in &t.gauges {
            let _ = writeln!(out, "gauge {} {}", name, g.get());
        }
        for (name, h) in &t.histograms {
            let _ = write!(out, "histogram {} count={} sum={:.6}", name, h.count(), h.sum());
            for (bound, count) in h.buckets() {
                if bound.is_finite() {
                    let _ = write!(out, " le{bound}={count}");
                } else {
                    let _ = write!(out, " le+inf={count}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSON exposition (hand-rolled, like every serializer in this
    /// workspace): `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let t = self.lock();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, c) in &t.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            json_escape_into(name, &mut out);
            let _ = write!(out, "\": {}", c.get());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, g) in &t.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            json_escape_into(name, &mut out);
            let _ = write!(out, "\": {}", fmt_f64(g.get()));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &t.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            json_escape_into(name, &mut out);
            let _ = write!(out, "\": {{\"count\": {}, \"sum\": {}, \"buckets\": [", h.count(), fmt_f64(h.sum()));
            for (i, (bound, count)) in h.buckets().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if bound.is_finite() {
                    let _ = write!(out, "{{\"le\": {}, \"count\": {count}}}", fmt_f64(*bound));
                } else {
                    let _ = write!(out, "{{\"le\": \"+inf\", \"count\": {count}}}");
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}");
        out
    }
}

/// Format an `f64` so it is always valid JSON (no `NaN`/`inf` literals,
/// always a digit before and after any decimal point).
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.events");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Same name, same underlying counter.
        assert_eq!(reg.counter("a.events").get(), 4);
    }

    #[test]
    fn gauge_set_and_get() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(reg.gauge("depth").get(), -2.5);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_buckets("ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(500.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 505.5).abs() < 1e-3);
        assert_eq!(
            h.buckets()
                .iter()
                .map(|&(_, c)| c)
                .collect::<Vec<_>>(),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("hits");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("hits").get(), 4000);
    }

    #[test]
    fn text_exposition_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("g").set(1.5);
        reg.histogram_with_buckets("h", &[10.0]).observe(3.0);
        let text = reg.render_text();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "{text}");
        assert!(text.contains("gauge g 1.5"), "{text}");
        assert!(text.contains("histogram h count=1"), "{text}");
        assert!(text.contains("le10=1"), "{text}");
        assert!(text.contains("le+inf=0"), "{text}");
    }

    #[test]
    fn json_exposition_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("c\"quoted").add(7);
        reg.gauge("g").set(0.25);
        reg.histogram("h").observe(2.0);
        let json = reg.to_json();
        crate::json::parse(&json).expect("valid JSON");
        assert!(json.contains("\"c\\\"quoted\": 7"), "{json}");
    }
}
