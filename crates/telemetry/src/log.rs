//! Leveled structured logging: `(target, level, message, key=value…)`
//! records that replace ad-hoc `eprintln!` diagnostics.
//!
//! A record below the configured [`max_level`] costs one relaxed atomic
//! load. A record at or above it is rendered to **stderr** (or handed to
//! an installed [`set_sink`] writer — e.g. the CLI's dashboard-aware
//! writer, which repaints its panel after interleaved output) and, when
//! a [`Collector`](crate::Collector) is installed, also captured so
//! exporters can interleave logs into the Chrome trace as instant
//! events.
//!
//! Values are escaped with [`crate::json`] when they need quoting, so a
//! rendered line is always one line.

use crate::span::now_ns;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation cannot continue as requested.
    Error = 0,
    /// Degraded but continuing (e.g. a worker died and was rebalanced).
    Warn = 1,
    /// Campaign-level milestones. The default threshold.
    Info = 2,
    /// Per-session / per-lease detail.
    Debug = 3,
    /// Per-frame detail.
    Trace = 4,
}

impl Level {
    /// Lower-case name, as accepted by [`Level::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (want error|warn|info|debug|trace)"
            )),
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Module-ish origin, e.g. `"shard::coordinator"`.
    pub target: String,
    /// Human-readable message (no trailing newline).
    pub message: String,
    /// Structured key/value annotations.
    pub fields: Vec<(String, String)>,
    /// Track label of the thread that logged (see
    /// [`SpanRecord::track`](crate::SpanRecord::track)).
    pub track: String,
    /// Process label; empty for local records (see
    /// [`SpanRecord::process`](crate::SpanRecord::process)).
    pub process: String,
}

impl LogRecord {
    /// One-line rendering: `[level target] message key=value …`.
    /// Values containing spaces, quotes, or control characters are
    /// JSON-quoted so the line stays machine-splittable.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "[{} {}] {}", self.level, self.target, self.message);
        for (k, v) in &self.fields {
            if v.is_empty() || v.contains([' ', '"', '\\']) || v.chars().any(char::is_control) {
                let _ = write!(out, " {k}={}", crate::json::json_string(v));
            } else {
                let _ = write!(out, " {k}={v}");
            }
        }
        out
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// A pluggable destination for rendered records (instead of stderr).
pub type Sink = Box<dyn Fn(&LogRecord) + Send + Sync>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// The current threshold: records *above* it (less severe) are dropped.
pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Set the threshold (process-wide).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Install (or with `None`, remove) the process-wide sink that replaces
/// the default stderr writer. The collector capture path is unaffected.
pub fn set_sink(sink: Option<Sink>) {
    let mut slot = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = sink;
}

/// Emit one record. Dropped (one atomic load) when `level` is below the
/// configured threshold. Otherwise the record goes to the sink (default:
/// stderr) and — when a collector is installed — into the trace.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
    if level > max_level() {
        return;
    }
    let rec = LogRecord {
        ts_ns: now_ns(),
        level,
        target: target.to_owned(),
        message: message.to_owned(),
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
        track: crate::span::current_track(),
        process: String::new(),
    };
    {
        let slot = match SINK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match slot.as_ref() {
            Some(sink) => sink(&rec),
            None => eprintln!("{}", rec.render()),
        }
    }
    if crate::collector::enabled() {
        crate::collector::submit_log(rec);
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Error, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Debug, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("WARN").unwrap(), Level::Warn);
        assert_eq!(Level::parse("warning").unwrap(), Level::Warn);
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn render_quotes_awkward_values() {
        let rec = LogRecord {
            ts_ns: 0,
            level: Level::Warn,
            target: "shard::coordinator".into(),
            message: "worker died".into(),
            fields: vec![
                ("worker".into(), "w-1".into()),
                ("reason".into(), "heartbeat timeout".into()),
            ],
            track: String::new(),
            process: String::new(),
        };
        assert_eq!(
            rec.render(),
            "[warn shard::coordinator] worker died worker=w-1 reason=\"heartbeat timeout\""
        );
    }

    #[test]
    fn sink_threshold_and_collector_capture() {
        let _serial = crate::test_lock();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        set_sink(Some(Box::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        })));
        set_level(Level::Info);
        let col = crate::Collector::install();
        info("t", "visible", &[("k", "v".to_owned())]);
        debug("t", "dropped by threshold", &[]);
        set_level(Level::Debug);
        debug("t", "visible now", &[]);
        set_level(Level::Info);
        set_sink(None);
        let set = col.finish();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(set.logs().len(), 2);
        assert_eq!(set.logs()[0].message, "visible");
        assert_eq!(set.logs()[1].level, Level::Debug);
    }
}
