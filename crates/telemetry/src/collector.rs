//! The global collector: where flushed span batches and metric updates
//! land while a profiling session is active.
//!
//! Exactly one [`Collector`] is installed at a time (installing a new one
//! supersedes the old). The fast path for *disabled* telemetry is a
//! single relaxed load of [`enabled`]; span batches travel over an mpsc
//! channel so producing threads never block on the consumer.

use crate::export::SpanSet;
use crate::metrics::MetricsRegistry;
use crate::span::SpanRecord;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);
static GLOBAL: Mutex<Option<Global>> = Mutex::new(None);

struct Global {
    generation: u64,
    tx: Sender<Vec<SpanRecord>>,
    metrics: Arc<MetricsRegistry>,
}

fn lock_global() -> MutexGuard<'static, Option<Global>> {
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when a collector is installed. Every instrumentation entry point
/// checks this first; the disabled path is one relaxed atomic load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Ship a batch of finished spans to the installed collector, if any.
pub(crate) fn submit(batch: Vec<SpanRecord>) {
    if let Some(g) = lock_global().as_ref() {
        // A send can only fail if the collector was dropped without
        // `finish`; the batch is discarded, matching disabled telemetry.
        let _ = g.tx.send(batch);
    }
}

/// Bump the named counter on the installed collector's registry.
/// No-op (one atomic load) when telemetry is disabled.
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.counter(name).add(delta);
    }
}

/// Set the named gauge on the installed collector's registry.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.gauge(name).set(value);
    }
}

/// Record an observation in the named histogram on the installed
/// collector's registry.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.histogram(name).observe(value);
    }
}

/// An active profiling session: owns the receiving end of the span
/// channel and the metrics registry instrumentation writes into.
#[derive(Debug)]
pub struct Collector {
    generation: u64,
    rx: Receiver<Vec<SpanRecord>>,
    metrics: Arc<MetricsRegistry>,
}

impl Collector {
    /// Install a fresh collector as the process-global sink and enable
    /// telemetry. Supersedes any previously installed collector (whose
    /// later `finish` then only returns what it had already received).
    pub fn install() -> Collector {
        let (tx, rx) = channel();
        let metrics = Arc::new(MetricsRegistry::new());
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        *lock_global() = Some(Global {
            generation,
            tx,
            metrics: Arc::clone(&metrics),
        });
        ENABLED.store(true, Ordering::Relaxed);
        Collector {
            generation,
            rx,
            metrics,
        }
    }

    /// The registry instrumented code writes metrics into. Keep a clone
    /// to render metrics after [`Collector::finish`].
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Disable telemetry (if this collector is still the installed one),
    /// drain every span received, and return them as a [`SpanSet`].
    pub fn finish(self) -> SpanSet {
        crate::span::flush_thread();
        {
            let mut g = lock_global();
            if g.as_ref().map(|x| x.generation) == Some(self.generation) {
                *g = None;
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
        let mut spans = Vec::new();
        while let Ok(batch) = self.rx.try_recv() {
            spans.extend(batch);
        }
        spans.sort_by_key(|s| s.id);
        SpanSet::new(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn metrics_helpers_reach_installed_registry() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        count("events", 3);
        count("events", 2);
        gauge_set("jobs", 4.0);
        observe("ms", 1.5);
        let metrics = col.metrics();
        assert_eq!(metrics.counter("events").get(), 5);
        assert_eq!(metrics.gauge("jobs").get(), 4.0);
        assert_eq!(metrics.histogram("ms").count(), 1);
        let _ = col.finish();
        assert!(!enabled());
    }

    #[test]
    fn metrics_helpers_are_noops_when_disabled() {
        let _serial = crate::test_lock();
        assert!(!enabled());
        count("ghost", 1);
        gauge_set("ghost", 1.0);
        observe("ghost", 1.0);
        let col = Collector::install();
        assert!(col.metrics().is_empty());
        let _ = col.finish();
    }

    #[test]
    fn newer_collector_supersedes_older() {
        let _serial = crate::test_lock();
        let old = Collector::install();
        {
            let _s = span("sim", "to-old");
        }
        let new = Collector::install();
        {
            let _s = span("sim", "to-new");
        }
        let new_set = new.finish();
        assert!(!enabled(), "finishing the live collector disables telemetry");
        let old_set = old.finish();
        assert_eq!(new_set.spans().len(), 1);
        assert_eq!(new_set.spans()[0].name, "to-new");
        assert_eq!(old_set.spans().len(), 1);
        assert_eq!(old_set.spans()[0].name, "to-old");
    }

    #[test]
    fn finish_collects_unflushed_main_thread_buffer() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        let outer = span("sim", "outer");
        {
            let _inner = span("sim", "inner");
        }
        // `outer` is still open, so `inner` sits in the thread buffer;
        // dropping outer empties the stack and flushes both.
        drop(outer);
        assert_eq!(col.finish().spans().len(), 2);
    }
}
