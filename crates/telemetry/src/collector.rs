//! The global collector: where flushed span batches and metric updates
//! land while a profiling session is active.
//!
//! Exactly one [`Collector`] is installed at a time (installing a new one
//! supersedes the old). The fast path for *disabled* telemetry is a
//! single relaxed load of [`enabled`]; span batches travel over an mpsc
//! channel so producing threads never block on the consumer.

use crate::export::SpanSet;
use crate::log::LogRecord;
use crate::metrics::MetricsRegistry;
use crate::span::{FlowRecord, SpanRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);
static GLOBAL: Mutex<Option<Global>> = Mutex::new(None);

/// Bound on captured-but-undrained logs/flows, so an unobserved session
/// cannot grow without limit. Drops are silent counts in the buffer's
/// place — observability must never become a memory hazard.
const EVENT_BUFFER_CAP: usize = 65_536;

/// Logs and flows captured since the last drain, behind one lock (these
/// are low-rate events; spans keep their lock-free channel).
#[derive(Debug, Default)]
struct EventBuffers {
    logs: Vec<LogRecord>,
    flows: Vec<FlowRecord>,
    dropped: u64,
}

struct Global {
    generation: u64,
    tx: Sender<Vec<SpanRecord>>,
    metrics: Arc<MetricsRegistry>,
    events: Arc<Mutex<EventBuffers>>,
}

fn lock_global() -> MutexGuard<'static, Option<Global>> {
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when a collector is installed. Every instrumentation entry point
/// checks this first; the disabled path is one relaxed atomic load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Ship a batch of finished spans to the installed collector, if any.
pub(crate) fn submit(batch: Vec<SpanRecord>) {
    submit_spans(batch);
}

/// Ship externally produced span records (e.g. spans decoded off a
/// shard-worker session and re-id-mapped) to the installed collector.
/// Silently discarded when no collector is installed.
pub fn submit_spans(batch: Vec<SpanRecord>) {
    if let Some(g) = lock_global().as_ref() {
        // A send can only fail if the collector was dropped without
        // `finish`; the batch is discarded, matching disabled telemetry.
        let _ = g.tx.send(batch);
    }
}

fn with_events(f: impl FnOnce(&mut EventBuffers)) {
    let events = match lock_global().as_ref() {
        Some(g) => Arc::clone(&g.events),
        None => return,
    };
    let mut buf = match events.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut buf);
}

/// Capture a log record (local or shipped from a worker process).
/// Discarded when no collector is installed or the buffer cap is hit.
pub fn submit_log(rec: LogRecord) {
    with_events(|buf| {
        if buf.logs.len() < EVENT_BUFFER_CAP {
            buf.logs.push(rec);
        } else {
            buf.dropped += 1;
        }
    });
}

/// Capture a flow event (local or shipped from a worker process).
pub fn submit_flow(rec: FlowRecord) {
    with_events(|buf| {
        if buf.flows.len() < EVENT_BUFFER_CAP {
            buf.flows.push(rec);
        } else {
            buf.dropped += 1;
        }
    });
}

/// Bump the named counter on the installed collector's registry.
/// No-op (one atomic load) when telemetry is disabled.
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.counter(name).add(delta);
    }
}

/// Set the named gauge on the installed collector's registry.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.gauge(name).set(value);
    }
}

/// Record an observation in the named histogram on the installed
/// collector's registry.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(g) = lock_global().as_ref() {
        g.metrics.histogram(name).observe(value);
    }
}

/// RAII guard from [`pause_recording`]: recording resumes on drop if it
/// was live when the pause began.
#[derive(Debug)]
pub struct RecordingPause {
    was_enabled: bool,
}

/// Temporarily flip instrumentation off without uninstalling the
/// collector — the sampling fast path for instrumented loops (a shard
/// worker skips whole unsampled repetitions this way). Two relaxed
/// atomic ops total, so it is safe on a per-iteration hot path; any
/// spans already open keep recording normally when they close after
/// the pause. Concurrent pauses can shorten each other's windows —
/// recording is observational, so that only trims a trace, never data.
pub fn pause_recording() -> RecordingPause {
    RecordingPause { was_enabled: ENABLED.swap(false, Ordering::Relaxed) }
}

impl Drop for RecordingPause {
    fn drop(&mut self) {
        if self.was_enabled {
            ENABLED.store(true, Ordering::Relaxed);
        }
    }
}

/// An active profiling session: owns the receiving end of the span
/// channel and the metrics registry instrumentation writes into.
#[derive(Debug)]
pub struct Collector {
    generation: u64,
    rx: Receiver<Vec<SpanRecord>>,
    metrics: Arc<MetricsRegistry>,
    events: Arc<Mutex<EventBuffers>>,
}

impl Collector {
    /// Install a fresh collector as the process-global sink and enable
    /// telemetry. Supersedes any previously installed collector (whose
    /// later `finish` then only returns what it had already received).
    pub fn install() -> Collector {
        let (tx, rx) = channel();
        let metrics = Arc::new(MetricsRegistry::new());
        let events = Arc::new(Mutex::new(EventBuffers::default()));
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        *lock_global() = Some(Global {
            generation,
            tx,
            metrics: Arc::clone(&metrics),
            events: Arc::clone(&events),
        });
        ENABLED.store(true, Ordering::Relaxed);
        Collector {
            generation,
            rx,
            metrics,
            events,
        }
    }

    /// The registry instrumented code writes metrics into. Keep a clone
    /// to render metrics after [`Collector::finish`].
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Drain the spans received so far *without* ending the session.
    /// This is the worker-side shipping path: a shard worker drains
    /// between repetitions and forwards the batch over the wire.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        crate::span::flush_thread();
        let mut spans = Vec::new();
        while let Ok(batch) = self.rx.try_recv() {
            spans.extend(batch);
        }
        spans
    }

    /// Drain the log records captured so far without ending the session.
    pub fn drain_logs(&self) -> Vec<LogRecord> {
        let mut buf = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut buf.logs)
    }

    /// Drain the flow events captured so far without ending the session.
    pub fn drain_flows(&self) -> Vec<FlowRecord> {
        let mut buf = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut buf.flows)
    }

    /// Disable telemetry (if this collector is still the installed one),
    /// drain everything received — spans, logs, flows — and return them
    /// as a [`SpanSet`].
    pub fn finish(self) -> SpanSet {
        crate::span::flush_thread();
        {
            let mut g = lock_global();
            if g.as_ref().map(|x| x.generation) == Some(self.generation) {
                *g = None;
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
        let mut spans = Vec::new();
        while let Ok(batch) = self.rx.try_recv() {
            spans.extend(batch);
        }
        spans.sort_by_key(|s| s.id);
        let (logs, flows) = {
            let mut buf = match self.events.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            (std::mem::take(&mut buf.logs), std::mem::take(&mut buf.flows))
        };
        SpanSet::with_events(spans, logs, flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn metrics_helpers_reach_installed_registry() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        count("events", 3);
        count("events", 2);
        gauge_set("jobs", 4.0);
        observe("ms", 1.5);
        let metrics = col.metrics();
        assert_eq!(metrics.counter("events").get(), 5);
        assert_eq!(metrics.gauge("jobs").get(), 4.0);
        assert_eq!(metrics.histogram("ms").count(), 1);
        let _ = col.finish();
        assert!(!enabled());
    }

    #[test]
    fn metrics_helpers_are_noops_when_disabled() {
        let _serial = crate::test_lock();
        assert!(!enabled());
        count("ghost", 1);
        gauge_set("ghost", 1.0);
        observe("ghost", 1.0);
        let col = Collector::install();
        assert!(col.metrics().is_empty());
        let _ = col.finish();
    }

    #[test]
    fn newer_collector_supersedes_older() {
        let _serial = crate::test_lock();
        let old = Collector::install();
        {
            let _s = span("sim", "to-old");
        }
        let new = Collector::install();
        {
            let _s = span("sim", "to-new");
        }
        let new_set = new.finish();
        assert!(!enabled(), "finishing the live collector disables telemetry");
        let old_set = old.finish();
        assert_eq!(new_set.spans().len(), 1);
        assert_eq!(new_set.spans()[0].name, "to-new");
        assert_eq!(old_set.spans().len(), 1);
        assert_eq!(old_set.spans()[0].name, "to-old");
    }

    #[test]
    fn incremental_drains_do_not_lose_or_duplicate() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        {
            let _a = span("sim", "first");
        }
        let early = col.drain_spans();
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].name, "first");
        crate::log::info("t", "early log", &[]);
        assert_eq!(col.drain_logs().len(), 1);
        assert!(col.drain_logs().is_empty(), "drain consumes");
        {
            let _b = span("sim", "second");
        }
        crate::span::flow("lease", 3, true);
        let set = col.finish();
        assert_eq!(set.spans().len(), 1, "already-drained span not re-collected");
        assert_eq!(set.spans()[0].name, "second");
        assert_eq!(set.flows().len(), 1);
        assert!(set.logs().is_empty());
    }

    #[test]
    fn finish_collects_unflushed_main_thread_buffer() {
        let _serial = crate::test_lock();
        let col = Collector::install();
        let outer = span("sim", "outer");
        {
            let _inner = span("sim", "inner");
        }
        // `outer` is still open, so `inner` sits in the thread buffer;
        // dropping outer empties the stack and flushes both.
        drop(outer);
        assert_eq!(col.finish().spans().len(), 2);
    }
}
