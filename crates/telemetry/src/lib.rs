//! flagsim-telemetry: zero-dependency observability for the flagsim
//! workspace — a metrics registry, structured spans, and profiling
//! exporters (Chrome `trace_event`, collapsed flamegraph stacks, and a
//! self-time table).
//!
//! # Model
//!
//! A profiling session is a [`Collector`]: install one, run instrumented
//! code, then [`Collector::finish`] to get the recorded [`SpanSet`] and
//! render its [`MetricsRegistry`]. Instrumented code calls [`span`] /
//! [`span_linked`] for timing scopes and [`count`] / [`gauge_set`] /
//! [`observe`] for metrics; with no collector installed every call is a
//! no-op gated on a single relaxed atomic load, so permanently
//! instrumented hot paths cost nothing in normal runs (the overhead gate
//! in `flagsim-bench` asserts this stays under 5%).
//!
//! # Determinism
//!
//! Spans carry two parent edges: the per-thread *stack* parent (drives
//! Chrome-trace nesting) and an optional logical *link* (drives the
//! flamegraph and [`SpanSet::canonical_tree`]). Work that is logically
//! the same — e.g. a parameter sweep at `--jobs 1` vs `--jobs 4` —
//! produces the same canonical tree; only timestamps and thread
//! placement differ. Host-execution scopes (worker lifecycles) use the
//! `"runtime"` category, which the canonical tree excludes.
//!
//! # Distributed sweeps
//!
//! A shard coordinator merges telemetry shipped from worker processes
//! into its own collector: worker records carry a `process` label so the
//! exported Chrome trace shows one timeline with a track group per
//! worker, lease hand-offs drawn as [`flow`] arrows, and structured
//! [`log`] records interleaved as instant events. The [`TimeSeries`]
//! ring buffer backs the fleet gauges behind `sweep --dashboard` and
//! `--obs-out` (caller-supplied integer-ms clocks, so dumps are
//! byte-deterministic under a fake clock).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod json;
pub mod log;
pub mod metrics;
pub mod span;
pub mod timeseries;

pub use collector::{
    count, enabled, gauge_set, observe, pause_recording, submit_flow, submit_log, submit_spans,
    Collector, RecordingPause,
};
pub use export::SpanSet;
pub use log::{Level, LogRecord};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_BUCKETS};
pub use span::{
    alloc_span_ids, current_span, current_track, flow, flush_thread, intern, set_thread_track,
    span, span_linked, FlowRecord, SpanGuard, SpanId, SpanRecord,
};
pub use timeseries::TimeSeries;

/// Serialize tests that install the process-global collector.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
