//! flagsim-telemetry: zero-dependency observability for the flagsim
//! workspace — a metrics registry, structured spans, and profiling
//! exporters (Chrome `trace_event`, collapsed flamegraph stacks, and a
//! self-time table).
//!
//! # Model
//!
//! A profiling session is a [`Collector`]: install one, run instrumented
//! code, then [`Collector::finish`] to get the recorded [`SpanSet`] and
//! render its [`MetricsRegistry`]. Instrumented code calls [`span`] /
//! [`span_linked`] for timing scopes and [`count`] / [`gauge_set`] /
//! [`observe`] for metrics; with no collector installed every call is a
//! no-op gated on a single relaxed atomic load, so permanently
//! instrumented hot paths cost nothing in normal runs (the overhead gate
//! in `flagsim-bench` asserts this stays under 5%).
//!
//! # Determinism
//!
//! Spans carry two parent edges: the per-thread *stack* parent (drives
//! Chrome-trace nesting) and an optional logical *link* (drives the
//! flamegraph and [`SpanSet::canonical_tree`]). Work that is logically
//! the same — e.g. a parameter sweep at `--jobs 1` vs `--jobs 4` —
//! produces the same canonical tree; only timestamps and thread
//! placement differ. Host-execution scopes (worker lifecycles) use the
//! `"runtime"` category, which the canonical tree excludes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use collector::{count, enabled, gauge_set, observe, Collector};
pub use export::SpanSet;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_BUCKETS};
pub use span::{
    current_span, flush_thread, set_thread_track, span, span_linked, SpanGuard, SpanId, SpanRecord,
};

/// Serialize tests that install the process-global collector.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
