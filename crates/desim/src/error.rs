//! Typed simulation errors and deadlock/stall diagnostics.
//!
//! Every way a run can go wrong — process misuse, a circular wait, a
//! runaway event loop — surfaces as a [`SimError`] from
//! [`Engine::try_run`](crate::Engine::try_run) instead of a panic, so a
//! batch sweep can record the failure and keep going. When the event queue
//! drains while processes still wait on resources, the error carries the
//! full wait-for graph: who waits on what, who holds it, and where in the
//! queue each waiter sits.

use crate::engine::ProcId;
use crate::resource::ResourceId;
use crate::time::SimTime;
use std::fmt;

/// One edge of the wait-for graph: a process stuck waiting on a resource,
/// with the processes currently holding that resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The waiting process.
    pub proc: ProcId,
    /// Its display name.
    pub proc_name: String,
    /// The resource it waits for.
    pub resource: ResourceId,
    /// The resource's label.
    pub resource_label: String,
    /// Processes holding (or in hand-off transit toward) the resource.
    pub holders: Vec<ProcId>,
    /// Position in the resource's FIFO queue (0 = next in line).
    pub queue_position: usize,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let holders: Vec<String> = self.holders.iter().map(|h| format!("P{}", h.index())).collect();
        write!(
            f,
            "P{} ({}) waits for \"{}\" [queue #{}] held by {{{}}}",
            self.proc.index(),
            self.proc_name,
            self.resource_label,
            self.queue_position,
            if holders.is_empty() {
                "nobody".to_owned()
            } else {
                holders.join(", ")
            }
        )
    }
}

/// The wait-for graph at the moment a run stalled: every blocked process
/// and the holders it is waiting behind.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaitForGraph {
    /// One edge per blocked process.
    pub edges: Vec<WaitEdge>,
    /// Simulation time at which the stall was detected.
    pub at: SimTime,
}

impl WaitForGraph {
    /// True when no process is blocked.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of blocked processes.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Multi-line human-readable rendering, one edge per line.
    pub fn render(&self) -> String {
        let mut out = format!("wait-for graph at t={}ms:\n", self.at.millis());
        for e in &self.edges {
            out.push_str("  ");
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// A structured simulation failure. Display messages keep the key phrases
/// of the old panic messages ("does not hold", "re-acquired", "live-lock")
/// so downstream matching stays stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process released a resource it does not hold.
    ReleaseWithoutHold {
        /// The offending process.
        proc: ProcId,
        /// Its display name.
        proc_name: String,
        /// The resource it tried to release.
        resource: ResourceId,
        /// The resource's label.
        resource_label: String,
        /// When it happened.
        at: SimTime,
    },
    /// A process acquired a resource it already holds.
    ReacquireHeld {
        /// The offending process.
        proc: ProcId,
        /// Its display name.
        proc_name: String,
        /// The resource it tried to re-acquire.
        resource: ResourceId,
        /// The resource's label.
        resource_label: String,
        /// When it happened.
        at: SimTime,
    },
    /// A process was polled again after returning `Done`.
    ActedAfterDone {
        /// The offending process.
        proc: ProcId,
        /// When it happened.
        at: SimTime,
    },
    /// A process asked to sleep until a time already in the past.
    WaitUntilPast {
        /// The offending process.
        proc: ProcId,
        /// The requested wake time.
        target: SimTime,
        /// The current time (later than `target`).
        at: SimTime,
    },
    /// The event queue drained while processes still waited on resources —
    /// a deadlock or starvation. Carries the full wait-for graph.
    Stalled {
        /// Who waits on what, and who holds it.
        waiters: WaitForGraph,
    },
    /// The event-budget watchdog tripped (live-lock guard): more events
    /// were processed than the configured budget allows.
    EventBudgetExceeded {
        /// Events processed when the watchdog fired.
        processed: u64,
        /// The configured budget.
        budget: u64,
        /// When it fired.
        at: SimTime,
    },
    /// An internal invariant broke — a bug in the engine itself, reported
    /// instead of crashing the caller.
    InvariantViolated {
        /// What broke.
        detail: String,
        /// When it was noticed.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ReleaseWithoutHold {
                proc,
                proc_name,
                resource_label,
                at,
                ..
            } => write!(
                f,
                "process {} ({proc_name}) released resource \"{resource_label}\" it does not hold at t={}ms",
                proc.index(),
                at.millis()
            ),
            SimError::ReacquireHeld {
                proc,
                proc_name,
                resource_label,
                at,
                ..
            } => write!(
                f,
                "process {} ({proc_name}) re-acquired resource \"{resource_label}\" it already holds at t={}ms",
                proc.index(),
                at.millis()
            ),
            SimError::ActedAfterDone { proc, at } => write!(
                f,
                "process {} acted after Done at t={}ms",
                proc.index(),
                at.millis()
            ),
            SimError::WaitUntilPast { proc, target, at } => write!(
                f,
                "process {} asked to WaitUntil t={}ms which is in the past at t={}ms",
                proc.index(),
                target.millis(),
                at.millis()
            ),
            SimError::Stalled { waiters } => write!(
                f,
                "simulation stalled with {} blocked process(es); {}",
                waiters.len(),
                waiters.render().trim_end()
            ),
            SimError::EventBudgetExceeded {
                processed,
                budget,
                at,
            } => write!(
                f,
                "live-lock guard tripped after {processed} events (budget {budget}) at t={}ms",
                at.millis()
            ),
            SimError::InvariantViolated { detail, at } => {
                write!(f, "engine invariant violated at t={}ms: {detail}", at.millis())
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> WaitEdge {
        WaitEdge {
            proc: ProcId(1),
            proc_name: "P1".into(),
            resource: ResourceId(0),
            resource_label: "red marker".into(),
            holders: vec![ProcId(0)],
            queue_position: 0,
        }
    }

    #[test]
    fn display_keeps_legacy_phrases() {
        let rel = SimError::ReleaseWithoutHold {
            proc: ProcId(3),
            proc_name: "x".into(),
            resource: ResourceId(1),
            resource_label: "m".into(),
            at: SimTime(10),
        };
        assert!(rel.to_string().contains("does not hold"));
        let re = SimError::ReacquireHeld {
            proc: ProcId(3),
            proc_name: "x".into(),
            resource: ResourceId(1),
            resource_label: "m".into(),
            at: SimTime(10),
        };
        assert!(re.to_string().contains("re-acquired"));
        let budget = SimError::EventBudgetExceeded {
            processed: 101,
            budget: 100,
            at: SimTime(0),
        };
        assert!(budget.to_string().contains("live-lock"));
    }

    #[test]
    fn wait_for_graph_renders_every_edge() {
        let g = WaitForGraph {
            edges: vec![edge()],
            at: SimTime(42),
        };
        assert!(!g.is_empty());
        assert_eq!(g.len(), 1);
        let s = g.render();
        assert!(s.contains("t=42ms"));
        assert!(s.contains("red marker"));
        assert!(s.contains("held by {P0}"));
        let stalled = SimError::Stalled { waiters: g };
        assert!(stalled.to_string().contains("stalled"));
    }

    #[test]
    fn empty_graph_reports_empty() {
        let g = WaitForGraph::default();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }
}
