//! Exclusive resources with FIFO wait queues.
//!
//! A resource models one drawing implement: at most one holder at a time,
//! strict first-come-first-served granting, and an optional *hand-off
//! latency* — the real-world seconds it takes to pass a marker from one
//! student to another, which the paper's scenario 4 makes painfully
//! visible ("this requires handing off the markers").

use crate::engine::ProcId;
use crate::time::SimDuration;
use std::collections::VecDeque;

/// Identifies a resource within an [`Engine`](crate::Engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal state of one resource (capacity ≥ 1 interchangeable units —
/// capacity 1 is the classic single marker; the paper notes "having extra
/// resources would reduce the contention").
#[derive(Debug)]
pub(crate) struct ResourceState {
    pub(crate) label: String,
    pub(crate) capacity: usize,
    pub(crate) holders: Vec<ProcId>,
    pub(crate) waiters: VecDeque<ProcId>,
    pub(crate) handoff: SimDuration,
    pub(crate) stats: ResourceStats,
}

/// Contention statistics for one resource, reported in the [`Trace`](crate::Trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Times the resource was granted (with or without waiting).
    pub acquisitions: u64,
    /// Grants that had to wait in the queue first.
    pub contended_acquisitions: u64,
    /// Grants that involved a hand-off from another process.
    pub handoffs: u64,
    /// Total time processes spent queued on this resource (ms).
    pub total_wait: SimDuration,
    /// Longest the queue ever got.
    pub max_queue_len: usize,
}

impl ResourceState {
    pub(crate) fn new(label: String, capacity: usize, handoff: SimDuration) -> Self {
        assert!(capacity > 0, "resource capacity must be nonzero");
        ResourceState {
            label,
            capacity,
            holders: Vec::with_capacity(capacity),
            waiters: VecDeque::new(),
            handoff,
            stats: ResourceStats::default(),
        }
    }

    /// Whether another unit can be granted right now.
    pub(crate) fn has_free_unit(&self) -> bool {
        self.holders.len() < self.capacity
    }

    /// Whether `pid` currently holds a unit.
    pub(crate) fn holds(&self, pid: ProcId) -> bool {
        self.holders.contains(&pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_resource_is_free() {
        let r = ResourceState::new("red marker".into(), 1, SimDuration::from_millis(500));
        assert!(r.has_free_unit());
        assert_eq!(r.stats, ResourceStats::default());
        assert!(r.waiters.is_empty());
        assert!(!r.holds(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = ResourceState::new("none".into(), 0, SimDuration::ZERO);
    }
}
