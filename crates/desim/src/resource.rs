//! Exclusive resources with FIFO wait queues.
//!
//! A resource models one drawing implement: at most one holder at a time,
//! strict first-come-first-served granting, and an optional *hand-off
//! latency* — the real-world seconds it takes to pass a marker from one
//! student to another, which the paper's scenario 4 makes painfully
//! visible ("this requires handing off the markers").

use crate::engine::ProcId;
use crate::time::SimDuration;

/// Inline capacity of a [`ProcList`] — sized for a classroom team.
const INLINE_PROCS: usize = 8;

/// An ordered list of process ids with inline storage for the first
/// [`INLINE_PROCS`] entries, spilling to the heap only beyond that.
/// Holder sets and FIFO wait queues are classroom-sized (a handful of
/// students), so the common case adds zero allocations to a run.
#[derive(Debug)]
pub(crate) enum ProcList {
    Inline { len: u8, buf: [ProcId; INLINE_PROCS] },
    Heap(Vec<ProcId>),
}

impl ProcList {
    pub(crate) fn new() -> Self {
        ProcList::Inline {
            len: 0,
            buf: [ProcId(0); INLINE_PROCS],
        }
    }

    /// Append at the back (FIFO enqueue).
    pub(crate) fn push(&mut self, pid: ProcId) {
        match self {
            ProcList::Inline { len, buf } => {
                let l = *len as usize;
                if l < INLINE_PROCS {
                    buf[l] = pid;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_PROCS * 2);
                    v.extend_from_slice(buf);
                    v.push(pid);
                    *self = ProcList::Heap(v);
                }
            }
            ProcList::Heap(v) => v.push(pid),
        }
    }

    /// Remove the entry at `i`, replacing it with the last entry.
    /// Panics if `i` is out of bounds, like [`Vec::swap_remove`].
    pub(crate) fn swap_remove(&mut self, i: usize) -> ProcId {
        match self {
            ProcList::Inline { len, buf } => {
                let l = *len as usize;
                assert!(i < l, "swap_remove index {i} out of bounds (len {l})");
                let out = buf[i];
                buf[i] = buf[l - 1];
                *len -= 1;
                out
            }
            ProcList::Heap(v) => v.swap_remove(i),
        }
    }

    /// Remove the entry at `i`, shifting later entries down — the
    /// order-preserving sibling of [`ProcList::swap_remove`], used when a
    /// schedule policy grants to a waiter mid-queue (the rest of the FIFO
    /// queue must keep its order). Returns `None` if `i` is out of bounds.
    pub(crate) fn remove(&mut self, i: usize) -> Option<ProcId> {
        match self {
            ProcList::Inline { len, buf } => {
                let l = *len as usize;
                if i >= l {
                    return None;
                }
                let out = buf[i];
                buf.copy_within(i + 1..l, i);
                *len -= 1;
                Some(out)
            }
            ProcList::Heap(v) => {
                if i >= v.len() {
                    None
                } else {
                    Some(v.remove(i))
                }
            }
        }
    }

    /// Remove and return the front entry (FIFO dequeue).
    pub(crate) fn pop_front(&mut self) -> Option<ProcId> {
        match self {
            ProcList::Inline { len, buf } => {
                if *len == 0 {
                    return None;
                }
                let out = buf[0];
                let l = *len as usize;
                buf.copy_within(1..l, 0);
                *len -= 1;
                Some(out)
            }
            ProcList::Heap(v) => {
                if v.is_empty() {
                    None
                } else {
                    Some(v.remove(0))
                }
            }
        }
    }
}

impl std::ops::Deref for ProcList {
    type Target = [ProcId];

    fn deref(&self) -> &[ProcId] {
        match self {
            ProcList::Inline { len, buf } => &buf[..*len as usize],
            ProcList::Heap(v) => v,
        }
    }
}

/// Identifies a resource within an [`Engine`](crate::Engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build from a raw index — for reconstructing a [`Trace`](crate::Trace)
    /// from an external source (e.g. re-parsing an exported Chrome
    /// trace). Ids built this way are only meaningful against a trace
    /// whose `resources` table uses the same indexing.
    pub fn from_index(index: usize) -> ResourceId {
        ResourceId(index as u32)
    }
}

/// Internal state of one resource (capacity ≥ 1 interchangeable units —
/// capacity 1 is the classic single marker; the paper notes "having extra
/// resources would reduce the contention").
#[derive(Debug)]
pub(crate) struct ResourceState {
    pub(crate) label: String,
    pub(crate) capacity: usize,
    pub(crate) holders: ProcList,
    pub(crate) waiters: ProcList,
    pub(crate) handoff: SimDuration,
    pub(crate) stats: ResourceStats,
}

/// Contention statistics for one resource, reported in the [`Trace`](crate::Trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Times the resource was granted (with or without waiting).
    pub acquisitions: u64,
    /// Grants that had to wait in the queue first.
    pub contended_acquisitions: u64,
    /// Grants that involved a hand-off from another process.
    pub handoffs: u64,
    /// Total time processes spent blocked on this resource (ms): queue
    /// time **plus** the hand-off transit that follows each contended
    /// grant. Use [`ResourceStats::queue_wait`] for the pure queue
    /// component and [`ResourceStats::handoff_time`] for the transit.
    pub total_wait: SimDuration,
    /// The hand-off-transit portion of [`ResourceStats::total_wait`]
    /// (ms): time grants spent in flight between releaser and waiter.
    pub handoff_time: SimDuration,
    /// Longest the queue ever got.
    pub max_queue_len: usize,
}

impl ResourceStats {
    /// Time processes spent queued, excluding hand-off transit (ms).
    pub fn queue_wait(&self) -> SimDuration {
        SimDuration(self.total_wait.millis().saturating_sub(self.handoff_time.millis()))
    }
}

impl ResourceState {
    pub(crate) fn new(label: String, capacity: usize, handoff: SimDuration) -> Self {
        assert!(capacity > 0, "resource capacity must be nonzero");
        ResourceState {
            label,
            capacity,
            holders: ProcList::new(),
            waiters: ProcList::new(),
            handoff,
            stats: ResourceStats::default(),
        }
    }

    /// Whether another unit can be granted right now.
    pub(crate) fn has_free_unit(&self) -> bool {
        self.holders.len() < self.capacity
    }

    /// Whether `pid` currently holds a unit.
    pub(crate) fn holds(&self, pid: ProcId) -> bool {
        self.holders.contains(&pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_resource_is_free() {
        let r = ResourceState::new("red marker".into(), 1, SimDuration::from_millis(500));
        assert!(r.has_free_unit());
        assert_eq!(r.stats, ResourceStats::default());
        assert!(r.waiters.is_empty());
        assert!(!r.holds(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = ResourceState::new("none".into(), 0, SimDuration::ZERO);
    }

    #[test]
    fn remove_preserves_queue_order() {
        let mut list = ProcList::new();
        for i in 0..4 {
            list.push(ProcId(i));
        }
        assert_eq!(list.remove(1), Some(ProcId(1)));
        assert_eq!(&list[..], &[ProcId(0), ProcId(2), ProcId(3)]);
        assert_eq!(list.remove(9), None);
        // Spill to the heap and remove there too.
        for i in 4..12 {
            list.push(ProcId(i));
        }
        assert_eq!(list.remove(0), Some(ProcId(0)));
        assert_eq!(list[0], ProcId(2));
        assert_eq!(list.len(), 10);
    }
}
