//! Schedule policies: the engine's tie-breaks as explicit choice points.
//!
//! The engine is deterministic, but two of its rules are arbitrary in a
//! way the classroom is not: when several students' wake-ups land on the
//! same millisecond, insertion order picks who moves first, and when a
//! marker frees up with several students having asked for it *at the same
//! instant*, queue order picks who gets it. Both are exactly the ties
//! simcheck's SC302 flags on a single observed trace. A [`SchedulePolicy`]
//! makes those ties explicit: with a policy installed the engine stops
//! silently tie-breaking and instead asks the policy to choose among the
//! *semantically unordered* candidates, reporting enough context (a
//! canonical state hash, the cascade footprints) for a model checker to
//! enumerate every resolution. Without a policy the engine's behavior is
//! bit-for-bit what it always was.
//!
//! Candidate lists are canonicalized by process id, *not* by insertion
//! sequence: two schedules that reach the same semantic state through
//! different interleavings present identical choice points, which is what
//! makes state hashing and partial-order reduction sound.

use crate::engine::ProcId;
use crate::resource::ResourceId;
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one `u64` into an FNV-1a 64-bit hash, byte by byte.
#[inline]
pub fn fnv_mix(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fold a string into an FNV-1a 64-bit hash.
#[inline]
pub fn fnv_mix_str(mut hash: u64, s: &str) -> u64 {
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Length terminator so "ab","c" and "a","bc" hash differently.
    fnv_mix(hash, s.len() as u64)
}

/// Which of the engine's two tie-break rules a choice point comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceKind {
    /// Several wake-ups are due at the same instant: who fires first?
    Wakeup,
    /// A unit of this resource freed up with several waiters blocked
    /// since the same instant: who is granted?
    Grant(ResourceId),
}

/// One choice point, presented to a [`SchedulePolicy`].
#[derive(Debug)]
pub struct ChoicePoint<'a> {
    /// Wake-up tie or grant tie.
    pub kind: ChoiceKind,
    /// Simulation time at which the tie occurs.
    pub at: SimTime,
    /// The tied processes, sorted by process id (canonical order,
    /// independent of how the tie was reached). Always ≥ 2 entries —
    /// singletons are not choice points.
    pub candidates: &'a [ProcId],
    /// Canonical FNV-1a hash of the engine state at this choice point
    /// (see `Engine::state_hash`): equal hashes mean the remaining
    /// schedule space is identical.
    pub state_hash: u64,
}

/// A pluggable tie-breaker for the engine's two nondeterministic rules.
///
/// Installed with `Engine::set_schedule_policy`. The engine only consults
/// the policy when a tie has two or more candidates, so the sequence of
/// [`ChoicePoint`]s a run presents is exactly its decision vector.
pub trait SchedulePolicy {
    /// Pick a candidate by index into `choice.candidates`. Out-of-range
    /// answers are clamped by the engine.
    fn choose(&mut self, choice: &ChoicePoint<'_>) -> usize;

    /// Observe one completed poll cascade: process `pid` was advanced at
    /// `at` and touched `resources` (acquired, blocked on, or released,
    /// in order, duplicates preserved). `spawned_same_time` reports
    /// whether the cascade scheduled any event at `at` itself (zero-length
    /// work, an immediate hand-off, a `WaitUntil(now)`). Exploration uses
    /// these footprints for its commutativity pruning; the default does
    /// nothing.
    fn observe_cascade(
        &mut self,
        pid: ProcId,
        at: SimTime,
        resources: &[ResourceId],
        spawned_same_time: bool,
    ) {
        let _ = (pid, at, resources, spawned_same_time);
    }
}

/// One recorded decision: where the tie was, who was tied, and which
/// candidate was picked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Wake-up tie or grant tie.
    pub kind: ChoiceKind,
    /// When the tie occurred.
    pub at: SimTime,
    /// The tied processes in canonical (pid) order.
    pub candidates: Vec<ProcId>,
    /// Index into `candidates` that was chosen.
    pub chosen: usize,
    /// Canonical state hash at the choice point.
    pub state_hash: u64,
}

/// One recorded poll cascade, for footprint-based pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeRec {
    /// The advanced process.
    pub pid: ProcId,
    /// When the cascade ran.
    pub at: SimTime,
    /// Resources the cascade touched, in order.
    pub resources: Vec<ResourceId>,
    /// Whether the cascade scheduled an event at its own timestamp.
    pub spawned_same_time: bool,
}

/// Everything a [`ForcedSchedule`] run observed: the decision vector and
/// the cascade log, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleLog {
    /// Every choice point the run hit, with what was chosen.
    pub decisions: Vec<Decision>,
    /// Every poll cascade, with its resource footprint.
    pub cascades: Vec<CascadeRec>,
}

impl ScheduleLog {
    /// The chosen indices of the first `n` decisions — the script that
    /// replays this run's prefix.
    pub fn script_prefix(&self, n: usize) -> Vec<usize> {
        self.decisions.iter().take(n).map(|d| d.chosen).collect()
    }
}

/// A scripted tie-breaker: decision `i` picks `script[i]`, and every
/// decision past the end of the script picks candidate 0 (the canonical
/// default). Records the full [`ScheduleLog`] through a shared handle so
/// the log survives the engine consuming itself in `try_run`.
///
/// Replaying the same script against the same engine build is
/// byte-deterministic: same trace, same log.
#[derive(Debug)]
pub struct ForcedSchedule {
    script: Vec<usize>,
    cursor: usize,
    log: Rc<RefCell<ScheduleLog>>,
}

impl ForcedSchedule {
    /// A forced schedule following `script`, plus the shared log handle
    /// to read after the run completes.
    pub fn new(script: Vec<usize>) -> (Box<ForcedSchedule>, Rc<RefCell<ScheduleLog>>) {
        let log = Rc::new(RefCell::new(ScheduleLog::default()));
        (
            Box::new(ForcedSchedule {
                script,
                cursor: 0,
                log: Rc::clone(&log),
            }),
            log,
        )
    }
}

impl SchedulePolicy for ForcedSchedule {
    fn choose(&mut self, choice: &ChoicePoint<'_>) -> usize {
        let raw = self.script.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        // Clamp defensively: within an exploration the script is always
        // in range (the prefix replays deterministically), but a stale
        // hand-written script must not crash the run.
        let chosen = raw.min(choice.candidates.len().saturating_sub(1));
        self.log.borrow_mut().decisions.push(Decision {
            kind: choice.kind,
            at: choice.at,
            candidates: choice.candidates.to_vec(),
            chosen,
            state_hash: choice.state_hash,
        });
        chosen
    }

    fn observe_cascade(
        &mut self,
        pid: ProcId,
        at: SimTime,
        resources: &[ResourceId],
        spawned_same_time: bool,
    ) {
        self.log.borrow_mut().cascades.push(CascadeRec {
            pid,
            at,
            resources: resources.to_vec(),
            spawned_same_time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_mix_is_order_sensitive() {
        let a = fnv_mix(fnv_mix(FNV_OFFSET, 1), 2);
        let b = fnv_mix(fnv_mix(FNV_OFFSET, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_str_terminator_prevents_concat_collisions() {
        let a = fnv_mix_str(fnv_mix_str(FNV_OFFSET, "ab"), "c");
        let b = fnv_mix_str(fnv_mix_str(FNV_OFFSET, "a"), "bc");
        assert_ne!(a, b);
    }

    #[test]
    fn forced_schedule_defaults_to_zero_and_clamps() {
        let (mut policy, log) = ForcedSchedule::new(vec![1, 99]);
        let cands = [ProcId::from_index(0), ProcId::from_index(1)];
        let choice = |hash| ChoicePoint {
            kind: ChoiceKind::Wakeup,
            at: SimTime::ZERO,
            candidates: &cands,
            state_hash: hash,
        };
        assert_eq!(policy.choose(&choice(7)), 1);
        assert_eq!(policy.choose(&choice(8)), 1, "99 clamps to last candidate");
        assert_eq!(policy.choose(&choice(9)), 0, "past the script: default 0");
        let log = log.borrow();
        assert_eq!(log.decisions.len(), 3);
        assert_eq!(log.script_prefix(2), vec![1, 1]);
        assert_eq!(log.decisions[0].state_hash, 7);
    }
}
