//! Causal trace analysis: segment timelines, hand-off edges, the executed
//! critical path, and contention blame.
//!
//! A [`Trace`] says *what* happened; this module reconstructs *why* the
//! run took as long as it did. Three artifacts are derived from the event
//! log alone (no engine state required):
//!
//! 1. **Segment timelines** — for every process, a gap-free tiling of
//!    `[0, lifetime]` into [`SegmentKind::Compute`] (a `WorkStart` chunk),
//!    [`SegmentKind::Wait`] (from `Blocked` through the grant plus the
//!    resource's hand-off transit), and [`SegmentKind::Idle`] (everything
//!    else: late arrival, `WaitUntil` pauses, post-finish slack).
//! 2. **Hand-off edges** — the engine logs a waiter's `Acquired` at the
//!    moment the previous holder's `Released` is processed, so the nearest
//!    preceding `Released` on the same resource identifies the specific
//!    process the waiter was blocked behind. This is what turns "Student 3
//!    waited 40 ticks for the scissors" into "…behind Student 2".
//! 3. **Executed critical path** — walking backward from the
//!    makespan-defining finish: through compute and idle segments on the
//!    same process, and across hand-off edges to the releasing holder when
//!    a wait segment is reached. The result tiles `[0, makespan]` exactly,
//!    each step classified as compute, contention on a specific resource,
//!    or dependency/idle wait.
//!
//! On top of the walk sit the per-resource blame table (blocked time
//! attributed to the holder that caused it) and the infinite-capacity
//! what-if bound (predicted makespan if every resource had unlimited
//! copies).

use crate::engine::ProcId;
use crate::resource::ResourceId;
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a process was doing over one segment of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Executing a chunk of work.
    Compute,
    /// Blocked on a resource, from joining the queue through the hand-off
    /// transit that follows the grant.
    Wait {
        /// The contended resource.
        resource: ResourceId,
        /// The holder whose `Released` triggered this grant, and the
        /// release time. `None` for a wait still unresolved when the
        /// trace was cut off (deadline / stall).
        handoff_from: Option<(ProcId, SimTime)>,
    },
    /// Not working and not blocked: late arrival, a timed pause, or
    /// post-finish slack.
    Idle,
}

/// One homogeneous stretch of a process's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The process this segment belongs to.
    pub proc: ProcId,
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// What the process was doing.
    pub kind: SegmentKind,
}

impl Segment {
    /// Segment length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Classification of one step of the executed critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticalKind {
    /// The path ran through real work.
    Compute,
    /// The path ran through a contention wait (queueing and/or hand-off
    /// transit) on this resource.
    Contention(ResourceId),
    /// The path ran through idle time: a dependency or scheduling gap
    /// that no resource copy could have removed.
    Dependency,
}

/// One step of the executed critical path. Steps are contiguous: each
/// step's `start` equals its predecessor's `end`, and together they tile
/// `[0, makespan]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalSegment {
    /// The process the path runs through during this step.
    pub proc: ProcId,
    /// Step start (inclusive).
    pub start: SimTime,
    /// Step end (exclusive).
    pub end: SimTime,
    /// Why this stretch of wall-clock time was unavoidable as executed.
    pub kind: CriticalKind,
}

impl CriticalSegment {
    /// Step length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Blame attributed to one holder of one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HolderBlame {
    /// The process that held the resource while others waited.
    pub holder: ProcId,
    /// Total waiting time its holds inflicted (summed over victims).
    pub wait: SimDuration,
    /// The processes that waited behind this holder (deduplicated).
    pub victims: Vec<ProcId>,
}

/// Per-resource contention blame: waiting time attributed to the specific
/// holder whose hold caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBlame {
    /// The contended resource.
    pub resource: ResourceId,
    /// Total attributed waiting on this resource.
    pub total: SimDuration,
    /// Per-holder breakdown, sorted by inflicted wait (descending).
    pub holders: Vec<HolderBlame>,
}

/// Predicted makespans under counterfactual assumptions, and the
/// decomposition of the gap between ideal and observed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIf {
    /// The observed makespan `T`.
    pub observed: SimDuration,
    /// Predicted makespan with infinite copies of every resource: every
    /// wait segment collapses to zero, so each process finishes
    /// `waiting` earlier; the makespan is the max over processes.
    /// Bounded below by the longest per-process work chain (the span of
    /// the trace-derived task graph) and above by `T`.
    pub no_contention: SimDuration,
    /// Perfect-balance lower bound: total work divided by the number of
    /// processes (rounded up to the millisecond tick).
    pub ideal_balance: SimDuration,
    /// `T - no_contention`: wall-clock time attributable to contention.
    pub contention_cost: SimDuration,
    /// `no_contention - ideal_balance`: time attributable to load
    /// imbalance and dependency/arrival gaps.
    pub imbalance_cost: SimDuration,
}

/// The complete causal analysis of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalAnalysis {
    /// Per-process segment timelines, indexed by [`ProcId`]. Each
    /// timeline tiles `[0, lifetime]` with no gaps or overlaps.
    pub timelines: Vec<Vec<Segment>>,
    /// The executed critical path in chronological order.
    pub critical_path: Vec<CriticalSegment>,
    /// Per-resource blame tables, sorted by total attributed wait
    /// (descending); resources that caused no waiting are omitted.
    pub blame: Vec<ResourceBlame>,
    /// Counterfactual bounds and the speedup-gap decomposition.
    pub whatif: WhatIf,
}

impl CausalAnalysis {
    /// Total critical-path time per classification: `(compute,
    /// contention, dependency)`. The three sum to the makespan.
    pub fn critical_split(&self) -> (SimDuration, SimDuration, SimDuration) {
        let mut split = (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO);
        for seg in &self.critical_path {
            match seg.kind {
                CriticalKind::Compute => split.0 += seg.duration(),
                CriticalKind::Contention(_) => split.1 += seg.duration(),
                CriticalKind::Dependency => split.2 += seg.duration(),
            }
        }
        split
    }

    /// Sum of all blame-table totals. Equals `Trace::total_waiting()`
    /// for any trace whose waits all resolved; a wait still pending at
    /// cutoff is charged to `waiting` by the engine but has no hand-off
    /// edge to pin the time on, so blame excludes it.
    pub fn blame_total(&self) -> SimDuration {
        self.blame
            .iter()
            .fold(SimDuration::ZERO, |acc, b| acc + b.total)
    }
}

/// Analyze a trace: build segment timelines, extract the executed
/// critical path, attribute contention blame, and compute what-if bounds.
pub fn analyze(trace: &Trace) -> CausalAnalysis {
    let timelines = build_timelines(trace);
    let critical_path = walk_critical_path(trace, &timelines);
    let blame = build_blame(trace, &timelines);
    let whatif = whatif_bounds(trace);
    CausalAnalysis {
        timelines,
        critical_path,
        blame,
        whatif,
    }
}

/// Reconstruct per-process segment timelines from the event log.
///
/// The engine's event semantics make this exact: `WorkStart { dur }` is
/// logged when the chunk begins (compute occupies `[t, t + dur)`); a
/// contended grant logs the waiter's `Acquired` at the *release* time and
/// schedules the waiter `handoff` later, charging
/// `grant_time - blocked_time` as waiting — so a wait segment spans
/// `[blocked, acquired + handoff)` and its length equals the engine's
/// accounting to the millisecond. An instant (uncontended) grant logs
/// `Acquired` with no preceding `Blocked` and contributes no segment.
pub fn build_timelines(trace: &Trace) -> Vec<Vec<Segment>> {
    let nprocs = trace.procs.len();
    let mut raw: Vec<Vec<Segment>> = vec![Vec::new(); nprocs];
    // Nearest preceding release per resource: the hand-off edge source.
    let mut last_released_by: Vec<Option<(ProcId, SimTime)>> =
        vec![None; trace.resources.len()];
    // Pending `Blocked` per process (a process waits on one resource at
    // a time).
    let mut pending_block: Vec<Option<(ResourceId, SimTime)>> = vec![None; nprocs];

    for e in &trace.events {
        let pi = e.proc.index();
        if pi >= nprocs {
            continue;
        }
        match e.kind {
            EventKind::WorkStart { dur } => {
                raw[pi].push(Segment {
                    proc: e.proc,
                    start: e.time,
                    end: e.time + dur,
                    kind: SegmentKind::Compute,
                });
            }
            EventKind::Blocked(r) => {
                pending_block[pi] = Some((r, e.time));
            }
            EventKind::Acquired(r) => {
                if let Some((br, blocked_at)) = pending_block[pi].take() {
                    if br == r {
                        let handoff = trace
                            .resources
                            .get(r.index())
                            .map(|res| res.handoff)
                            .unwrap_or(SimDuration::ZERO);
                        let from = last_released_by
                            .get(r.index())
                            .copied()
                            .flatten()
                            .filter(|&(_, rel)| rel == e.time);
                        // A grant whose hand-off was still in transit at
                        // the bell is clamped to the trace end, matching
                        // the engine's cutoff settlement of `waiting`.
                        raw[pi].push(Segment {
                            proc: e.proc,
                            start: blocked_at,
                            end: (e.time + handoff).min(trace.end_time),
                            kind: SegmentKind::Wait {
                                resource: r,
                                handoff_from: from,
                            },
                        });
                    } else {
                        // A block on a different resource than the grant
                        // should not happen; restore it defensively.
                        pending_block[pi] = Some((br, blocked_at));
                    }
                }
            }
            EventKind::Released(r) => {
                if let Some(slot) = last_released_by.get_mut(r.index()) {
                    *slot = Some((e.proc, e.time));
                }
            }
            EventKind::Finished => {}
        }
    }

    // Waits never resolved (deadline cutoff / stall) run to the trace
    // end. The engine charges that blocked tail to `waiting` on cutoff,
    // so these segments mirror its accounting — but there is no hand-off
    // edge to pin the time on, so blame excludes them
    // (`handoff_from: None`).
    for (pi, pending) in pending_block.iter().enumerate() {
        if let Some((r, blocked_at)) = *pending {
            if blocked_at < trace.end_time {
                raw[pi].push(Segment {
                    proc: ProcId(pi as u32),
                    start: blocked_at,
                    end: trace.end_time,
                    kind: SegmentKind::Wait {
                        resource: r,
                        handoff_from: None,
                    },
                });
            }
        }
    }

    // Fill gaps with idle so every timeline tiles [0, lifetime].
    raw.iter_mut()
        .enumerate()
        .map(|(pi, segs)| {
            segs.sort_by_key(|s| (s.start, s.end));
            let proc = ProcId(pi as u32);
            let lifetime_end = trace
                .procs
                .get(pi)
                .and_then(|p| p.finished_at)
                .unwrap_or(trace.end_time);
            let mut out = Vec::with_capacity(segs.len() * 2 + 1);
            let mut cursor = SimTime::ZERO;
            for seg in segs.iter() {
                if seg.start > cursor {
                    out.push(Segment {
                        proc,
                        start: cursor,
                        end: seg.start,
                        kind: SegmentKind::Idle,
                    });
                }
                if seg.end > seg.start {
                    out.push(*seg);
                }
                if seg.end > cursor {
                    cursor = seg.end;
                }
            }
            if cursor < lifetime_end {
                out.push(Segment {
                    proc,
                    start: cursor,
                    end: lifetime_end,
                    kind: SegmentKind::Idle,
                });
            }
            out
        })
        .collect()
}

/// One synchronization edge recovered from the event log: the `to`
/// process's `Acquired` happens-after the `from` process's `Released` on
/// the same resource.
///
/// Two flavours:
///
/// * **Contended hand-off** (`contended: true`) — the engine logs a
///   waiter's `Acquired` at the instant the holder's `Released` is
///   processed, so the same-timestamp pairing (the one
///   [`build_timelines`] uses for blame) identifies the exact releaser.
/// * **Uncontended re-acquire** (`contended: false`) — the resource sat
///   free between the release and the grant. Only emitted for
///   capacity-1 resources: with one copy, whoever acquires next is
///   ordered after the previous release (mutex semantics). For pools
///   with several interchangeable copies the engine does not track which
///   copy a grant hands over, so no edge is claimed — under-approximating
///   the happens-before order rather than inventing edges that would
///   hide races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncEdge {
    /// The resource the edge travels through.
    pub resource: ResourceId,
    /// The releasing process.
    pub from: ProcId,
    /// When `from` released.
    pub released_at: SimTime,
    /// The acquiring process.
    pub to: ProcId,
    /// When `to`'s grant was logged.
    pub acquired_at: SimTime,
    /// True for a same-timestamp hand-off to a blocked waiter.
    pub contended: bool,
}

/// Extract every synchronization edge from a trace, in event-log order.
///
/// This is the happens-before substrate race detectors build vector
/// clocks on: program order within each process plus these cross-process
/// edges is the full ordering the simulation guarantees.
pub fn sync_edges(trace: &Trace) -> Vec<SyncEdge> {
    let nprocs = trace.procs.len();
    let mut last_released_by: Vec<Option<(ProcId, SimTime)>> =
        vec![None; trace.resources.len()];
    let mut pending_block: Vec<Option<ResourceId>> = vec![None; nprocs];
    let mut out = Vec::new();

    for e in &trace.events {
        let pi = e.proc.index();
        if pi >= nprocs {
            continue;
        }
        match e.kind {
            EventKind::Blocked(r) => pending_block[pi] = Some(r),
            EventKind::Acquired(r) => {
                let was_blocked = pending_block[pi].take().is_some_and(|br| br == r);
                let last = last_released_by.get(r.index()).copied().flatten();
                let capacity = trace.resources.get(r.index()).map_or(1, |res| res.capacity);
                let edge = if was_blocked {
                    // Contended grant: the engine logged this `Acquired`
                    // while processing the releaser's `Released`, so the
                    // timestamps match exactly.
                    last.filter(|&(_, rel)| rel == e.time).map(|(from, rel)| SyncEdge {
                        resource: r,
                        from,
                        released_at: rel,
                        to: e.proc,
                        acquired_at: e.time,
                        contended: true,
                    })
                } else if capacity == 1 {
                    last.map(|(from, rel)| SyncEdge {
                        resource: r,
                        from,
                        released_at: rel,
                        to: e.proc,
                        acquired_at: e.time,
                        contended: false,
                    })
                } else {
                    None
                };
                out.extend(edge);
            }
            EventKind::Released(r) => {
                if let Some(slot) = last_released_by.get_mut(r.index()) {
                    *slot = Some((e.proc, e.time));
                }
            }
            EventKind::WorkStart { .. } | EventKind::Finished => {}
        }
    }
    out
}

/// Walk backward from the makespan-defining finish, producing the
/// executed critical path in chronological order.
fn walk_critical_path(trace: &Trace, timelines: &[Vec<Segment>]) -> Vec<CriticalSegment> {
    // Start at the process whose timeline reaches furthest; prefer the
    // lowest index among ties for determinism.
    let start = timelines
        .iter()
        .enumerate()
        .filter_map(|(pi, segs)| segs.last().map(|s| (pi, s.end)))
        .max_by_key(|&(pi, end)| (end, std::cmp::Reverse(pi)));
    let (mut pi, _) = match start {
        Some(s) => s,
        None => return Vec::new(),
    };
    let mut t = trace.end_time;
    let mut path: Vec<CriticalSegment> = Vec::new();
    // Safety valve: every iteration either lowers `t` or follows one of
    // finitely many hand-off edges, so this bound is never reached on a
    // well-formed trace.
    let mut fuel = trace.events.len() * 4 + timelines.len() + 16;

    while t > SimTime::ZERO {
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let segs = match timelines.get(pi) {
            Some(s) => s,
            None => break,
        };
        let covering = segs.iter().rev().find(|s| s.start < t && t <= s.end);
        match covering {
            None => {
                // `t` lies beyond this process's last segment (e.g. the
                // path jumped here from a later release): bridge with a
                // dependency gap down to the timeline's end, or to zero
                // for an empty timeline.
                let prev_end = segs
                    .iter()
                    .rev()
                    .find(|s| s.end <= t)
                    .map(|s| s.end)
                    .unwrap_or(SimTime::ZERO);
                path.push(CriticalSegment {
                    proc: ProcId(pi as u32),
                    start: prev_end,
                    end: t,
                    kind: CriticalKind::Dependency,
                });
                t = prev_end;
            }
            Some(seg) => match seg.kind {
                SegmentKind::Compute => {
                    path.push(CriticalSegment {
                        proc: seg.proc,
                        start: seg.start,
                        end: t,
                        kind: CriticalKind::Compute,
                    });
                    t = seg.start;
                }
                SegmentKind::Idle => {
                    path.push(CriticalSegment {
                        proc: seg.proc,
                        start: seg.start,
                        end: t,
                        kind: CriticalKind::Dependency,
                    });
                    t = seg.start;
                }
                SegmentKind::Wait {
                    resource,
                    handoff_from,
                } => match handoff_from {
                    Some((holder, released_at)) if released_at <= t => {
                        // The transit portion [released_at, t) belongs to
                        // this wait; before the release, the clock was
                        // running on the holder's timeline.
                        if t > released_at {
                            path.push(CriticalSegment {
                                proc: seg.proc,
                                start: released_at,
                                end: t,
                                kind: CriticalKind::Contention(resource),
                            });
                        }
                        pi = holder.index();
                        t = released_at;
                    }
                    _ => {
                        // Unresolved wait (cutoff) — no edge to follow;
                        // charge the whole stretch to contention.
                        path.push(CriticalSegment {
                            proc: seg.proc,
                            start: seg.start,
                            end: t,
                            kind: CriticalKind::Contention(resource),
                        });
                        t = seg.start;
                    }
                },
            },
        }
    }

    path.reverse();
    merge_adjacent(path)
}

/// Merge chronologically adjacent path steps with the same process and
/// classification (purely cosmetic; preserves the tiling invariants).
fn merge_adjacent(path: Vec<CriticalSegment>) -> Vec<CriticalSegment> {
    let mut out: Vec<CriticalSegment> = Vec::with_capacity(path.len());
    for seg in path {
        match out.last_mut() {
            Some(last) if last.proc == seg.proc && last.kind == seg.kind && last.end == seg.start => {
                last.end = seg.end;
            }
            _ => out.push(seg),
        }
    }
    out
}

/// Build per-resource blame tables from resolved wait segments.
fn build_blame(_trace: &Trace, timelines: &[Vec<Segment>]) -> Vec<ResourceBlame> {
    // resource -> holder -> (wait, victims)
    let mut acc: BTreeMap<usize, BTreeMap<u32, (SimDuration, Vec<ProcId>)>> = BTreeMap::new();
    for segs in timelines {
        for seg in segs {
            if let SegmentKind::Wait {
                resource,
                handoff_from: Some((holder, _)),
            } = seg.kind
            {
                let entry = acc
                    .entry(resource.index())
                    .or_default()
                    .entry(holder.index() as u32)
                    .or_insert((SimDuration::ZERO, Vec::new()));
                entry.0 += seg.duration();
                if !entry.1.contains(&seg.proc) {
                    entry.1.push(seg.proc);
                }
            }
        }
    }
    let mut blame: Vec<ResourceBlame> = acc
        .into_iter()
        .map(|(ri, holders)| {
            let mut hs: Vec<HolderBlame> = holders
                .into_iter()
                .map(|(h, (wait, mut victims))| {
                    victims.sort_by_key(|p| p.index());
                    HolderBlame {
                        holder: ProcId(h),
                        wait,
                        victims,
                    }
                })
                .collect();
            hs.sort_by_key(|h| (std::cmp::Reverse(h.wait), h.holder.index()));
            let total = hs
                .iter()
                .fold(SimDuration::ZERO, |a, h| a + h.wait);
            ResourceBlame {
                resource: ResourceId(ri as u32),
                total,
                holders: hs,
            }
        })
        .collect();
    blame.sort_by_key(|b| (std::cmp::Reverse(b.total), b.resource.index()));
    blame
}

/// Compute what-if bounds from the per-process accounting.
fn whatif_bounds(trace: &Trace) -> WhatIf {
    let observed = trace.makespan();
    // With infinite copies every wait collapses: each process finishes
    // `waiting` earlier, arrival staggering and work untouched.
    let no_contention = trace
        .procs
        .iter()
        .map(|p| {
            let finish = p.finished_at.unwrap_or(trace.end_time);
            SimDuration(
                (finish - SimTime::ZERO)
                    .millis()
                    .saturating_sub(p.waiting.millis()),
            )
        })
        .max()
        .unwrap_or(SimDuration::ZERO);
    let nprocs = trace.procs.len().max(1) as u64;
    let total_work = trace.total_busy().millis();
    let ideal_balance = SimDuration(total_work.div_ceil(nprocs));
    WhatIf {
        observed,
        no_contention,
        ideal_balance,
        contention_cost: SimDuration(observed.millis().saturating_sub(no_contention.millis())),
        imbalance_cost: SimDuration(
            no_contention.millis().saturating_sub(ideal_balance.millis()),
        ),
    }
}

/// ANSI escape prefix for critical-path highlighting.
const ANSI_CRIT: &str = "\x1b[1;31m";
/// ANSI reset.
const ANSI_RESET: &str = "\x1b[0m";

/// Render the per-process Gantt chart with the executed critical path
/// highlighted inline. Like [`Trace::gantt`], each cell shows the
/// dominant state in its bucket (`#` busy, `~` waiting, `.` idle); cells
/// whose bucket lies mostly on the critical path are drawn in bold red
/// and upper-cased (`#`→`X`, `~`→`W`, `.`→`o`), so the path survives
/// `strip-ansi` round trips and the string stays deterministic.
pub fn critical_gantt(trace: &Trace, analysis: &CausalAnalysis, width: usize) -> String {
    let width = width.max(1);
    let total = trace.end_time.millis().max(1);
    let name_w = trace
        .procs
        .iter()
        .map(|p| p.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    // Per-proc critical intervals.
    let mut crit: Vec<Vec<(u64, u64)>> = vec![Vec::new(); trace.procs.len()];
    for seg in &analysis.critical_path {
        if let Some(ivs) = crit.get_mut(seg.proc.index()) {
            ivs.push((seg.start.millis(), seg.end.millis()));
        }
    }
    let overlap = |ivs: &[(u64, u64)], t0: u64, t1: u64| {
        ivs.iter()
            .map(|&(a, b)| b.min(t1).saturating_sub(a.max(t0)))
            .sum::<u64>()
    };
    let mut out = String::new();
    for (pi, segs) in analysis.timelines.iter().enumerate() {
        let name = trace
            .procs
            .get(pi)
            .map(|p| p.name.as_str())
            .unwrap_or("?");
        let _ = write!(out, "{name:>name_w$} |");
        let busy_iv: Vec<(u64, u64)> = segs
            .iter()
            .filter(|s| s.kind == SegmentKind::Compute)
            .map(|s| (s.start.millis(), s.end.millis()))
            .collect();
        let wait_iv: Vec<(u64, u64)> = segs
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Wait { .. }))
            .map(|s| (s.start.millis(), s.end.millis()))
            .collect();
        let mut in_crit = false;
        for i in 0..width {
            let t0 = total * i as u64 / width as u64;
            let t1 = (total * (i + 1) as u64 / width as u64).max(t0 + 1);
            let b = overlap(&busy_iv, t0, t1);
            let w = overlap(&wait_iv, t0, t1);
            let c = crit
                .get(pi)
                .map(|ivs| overlap(ivs, t0, t1))
                .unwrap_or(0);
            let on_path = c * 2 >= t1 - t0;
            let base = if b == 0 && w == 0 {
                '.'
            } else if b >= w {
                '#'
            } else {
                '~'
            };
            if on_path && !in_crit {
                out.push_str(ANSI_CRIT);
                in_crit = true;
            } else if !on_path && in_crit {
                out.push_str(ANSI_RESET);
                in_crit = false;
            }
            out.push(if on_path {
                match base {
                    '#' => 'X',
                    '~' => 'W',
                    _ => 'o',
                }
            } else {
                base
            });
        }
        if in_crit {
            out.push_str(ANSI_RESET);
        }
        out.push_str("|\n");
    }
    let _ = writeln!(
        out,
        "{:>name_w$} |{}| {}  ({}critical path{} in X/W/o)",
        "",
        "-".repeat(width),
        trace.end_time,
        ANSI_CRIT,
        ANSI_RESET
    );
    out
}

/// Render the blame table as aligned text: one block per contended
/// resource, one row per holder with the waiting it inflicted and the
/// victims that waited behind it.
pub fn blame_table_text(trace: &Trace, analysis: &CausalAnalysis) -> String {
    if analysis.blame.is_empty() {
        return "no contention: nobody waited on any resource\n".to_owned();
    }
    let pname = |p: ProcId| {
        trace
            .procs
            .get(p.index())
            .map(|pr| pr.name.as_str())
            .unwrap_or("?")
            .to_owned()
    };
    let mut out = String::new();
    for b in &analysis.blame {
        let label = trace
            .resources
            .get(b.resource.index())
            .map(|r| r.label.as_str())
            .unwrap_or("?");
        let _ = writeln!(out, "{label}: {} total wait", b.total);
        for h in &b.holders {
            let victims: Vec<String> = h.victims.iter().map(|&v| pname(v)).collect();
            let _ = writeln!(
                out,
                "  held by {:<16} cost {:>8}  (waiting: {})",
                pname(h.holder),
                h.wait.to_string(),
                victims.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Action, Engine, FnProcess};
    use crate::trace::{ProcReport, ResourceReport, TraceEvent};

    /// Two workers contending for one marker with hand-off latency:
    /// worker B blocks while A holds it.
    fn contended_trace() -> Trace {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", SimDuration::from_millis(5));
        for name in ["A", "B"] {
            let mut step = 0;
            eng.add_process(Box::new(FnProcess::new(name, move |_| {
                step += 1;
                match step {
                    1 => Action::Acquire(marker),
                    2 => Action::Work(SimDuration::from_millis(40)),
                    3 => Action::Release(marker),
                    _ => Action::Done,
                }
            })));
        }
        eng.run()
    }

    #[test]
    fn timelines_tile_without_gaps_and_match_accounting() {
        let trace = contended_trace();
        let tl = build_timelines(&trace);
        for (pi, segs) in tl.iter().enumerate() {
            let mut cursor = SimTime::ZERO;
            let mut busy = SimDuration::ZERO;
            let mut waiting = SimDuration::ZERO;
            for s in segs {
                assert_eq!(s.start, cursor, "gap in proc {pi}");
                assert!(s.end > s.start);
                match s.kind {
                    SegmentKind::Compute => busy += s.duration(),
                    SegmentKind::Wait { .. } => waiting += s.duration(),
                    SegmentKind::Idle => {}
                }
                cursor = s.end;
            }
            assert_eq!(busy, trace.procs[pi].busy, "busy mismatch proc {pi}");
            assert_eq!(waiting, trace.procs[pi].waiting, "wait mismatch proc {pi}");
        }
    }

    #[test]
    fn handoff_edge_names_the_releasing_holder() {
        let trace = contended_trace();
        let tl = build_timelines(&trace);
        // Exactly one wait segment exists, on the second-granted worker,
        // and it points at the first-granted worker.
        let waits: Vec<&Segment> = tl
            .iter()
            .flatten()
            .filter(|s| matches!(s.kind, SegmentKind::Wait { .. }))
            .collect();
        assert_eq!(waits.len(), 1);
        if let SegmentKind::Wait {
            handoff_from: Some((holder, released_at)),
            ..
        } = waits[0].kind
        {
            assert_ne!(holder, waits[0].proc);
            // Transit = released_at .. released_at + 5ms.
            assert_eq!(waits[0].end, released_at + SimDuration::from_millis(5));
        } else {
            unreachable!("wait must carry a hand-off edge: {:?}", waits[0]);
        }
    }

    #[test]
    fn sync_edges_pair_contended_handoffs() {
        let trace = contended_trace();
        let edges = sync_edges(&trace);
        // B's grant is a contended hand-off from A at A's release time;
        // no other cross-process order exists.
        let contended: Vec<&SyncEdge> = edges.iter().filter(|e| e.contended).collect();
        assert_eq!(contended.len(), 1, "{edges:?}");
        let e = contended[0];
        assert_ne!(e.from, e.to);
        assert_eq!(e.released_at, e.acquired_at);
    }

    #[test]
    fn sync_edges_order_uncontended_mutex_reuse_but_not_pools() {
        // One capacity-1 resource reused without overlap -> an
        // uncontended edge; one capacity-2 pool grabbed by both at once
        // -> no edge (copy identity unknown).
        let mut eng = Engine::new();
        let mutex = eng.add_resource("mutex", SimDuration::ZERO);
        let pool = eng.add_resource_pool("pool", 2, SimDuration::ZERO);
        for (name, delay) in [("first", 0u64), ("second", 100)] {
            let mut step = 0;
            eng.add_process(Box::new(FnProcess::new(name, move |now| {
                step += 1;
                match step {
                    1 if delay > 0 && now < SimTime(delay) => {
                        step = 0;
                        Action::WaitUntil(SimTime(delay))
                    }
                    1 => Action::Acquire(pool),
                    2 => Action::Acquire(mutex),
                    3 => Action::Work(SimDuration::from_millis(10)),
                    4 => Action::Release(mutex),
                    5 => Action::Release(pool),
                    _ => Action::Done,
                }
            })));
        }
        let trace = eng.run();
        let edges = sync_edges(&trace);
        assert!(
            edges.iter().all(|e| e.resource == mutex),
            "pool grants must not claim order: {edges:?}"
        );
        // `second` starts at t=100, well after `first` released at t=10:
        // an uncontended mutex edge first -> second.
        assert!(
            edges.iter().any(|e| !e.contended && e.from != e.to),
            "expected an uncontended mutex edge: {edges:?}"
        );
    }

    #[test]
    fn critical_path_tiles_makespan_and_is_connected() {
        let trace = contended_trace();
        let a = analyze(&trace);
        let total: SimDuration = a
            .critical_path
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration());
        assert_eq!(total, trace.makespan());
        assert_eq!(a.critical_path.first().map(|s| s.start), Some(SimTime::ZERO));
        assert_eq!(a.critical_path.last().map(|s| s.end), Some(trace.end_time));
        for pair in a.critical_path.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // The path crosses the contended marker: one contention step.
        assert!(a
            .critical_path
            .iter()
            .any(|s| matches!(s.kind, CriticalKind::Contention(_))));
    }

    #[test]
    fn blame_totals_equal_trace_waiting() {
        let trace = contended_trace();
        let a = analyze(&trace);
        assert_eq!(a.blame_total(), trace.total_waiting());
        assert_eq!(a.blame.len(), 1);
        assert_eq!(a.blame[0].holders.len(), 1);
        assert_eq!(a.blame[0].holders[0].victims.len(), 1);
    }

    #[test]
    fn whatif_bounds_sandwich_the_observed_makespan() {
        let trace = contended_trace();
        let a = analyze(&trace);
        let w = a.whatif;
        assert!(w.no_contention <= w.observed);
        assert!(w.ideal_balance <= w.no_contention);
        assert_eq!(
            w.observed.millis(),
            w.ideal_balance.millis() + w.imbalance_cost.millis() + w.contention_cost.millis()
        );
        // Removing contention removes the wait + hand-off entirely here.
        assert_eq!(w.no_contention, SimDuration::from_millis(40));
    }

    #[test]
    fn uncontended_run_has_empty_blame_and_zero_contention_cost() {
        let mut eng = Engine::new();
        for name in ["A", "B"] {
            let mut step = 0;
            eng.add_process(Box::new(FnProcess::new(name, move |_| {
                step += 1;
                match step {
                    1 => Action::Work(SimDuration::from_millis(30)),
                    _ => Action::Done,
                }
            })));
        }
        let trace = eng.run();
        let a = analyze(&trace);
        assert!(a.blame.is_empty());
        assert_eq!(a.whatif.contention_cost, SimDuration::ZERO);
        let (compute, contention, _dep) = a.critical_split();
        assert_eq!(compute, SimDuration::from_millis(30));
        assert_eq!(contention, SimDuration::ZERO);
    }

    #[test]
    fn critical_split_sums_to_makespan() {
        let trace = contended_trace();
        let a = analyze(&trace);
        let (c, w, d) = a.critical_split();
        assert_eq!(c + w + d, trace.makespan());
    }

    #[test]
    fn critical_gantt_highlights_with_distinct_glyphs() {
        let trace = contended_trace();
        let a = analyze(&trace);
        let g = critical_gantt(&trace, &a, 40);
        assert!(g.contains('X'), "critical compute cells: {g}");
        assert!(g.contains("\x1b[1;31m"), "ANSI highlight present");
        assert!(g.contains("\x1b[0m"), "ANSI reset present");
        // Stripping ANSI still leaves the path visible.
        let stripped: String = {
            let mut s = g.clone();
            for code in ["\x1b[1;31m", "\x1b[0m"] {
                s = s.replace(code, "");
            }
            s
        };
        assert!(stripped.contains('X'));
    }

    #[test]
    fn blame_table_text_names_holder_and_victim() {
        let trace = contended_trace();
        let a = analyze(&trace);
        let t = blame_table_text(&trace, &a);
        assert!(t.contains("marker:"), "{t}");
        assert!(t.contains("held by"), "{t}");
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let trace = Trace {
            end_time: SimTime::ZERO,
            procs: vec![],
            resources: vec![],
            events: vec![],
        };
        let a = analyze(&trace);
        assert!(a.critical_path.is_empty());
        assert!(a.blame.is_empty());
        assert_eq!(a.whatif.observed, SimDuration::ZERO);
    }

    #[test]
    fn unresolved_wait_is_excluded_from_blame() {
        // Hand-built cutoff trace: P0 blocked at 50, never granted. The
        // engine charges the blocked tail `[50, 100]` to waiting, but
        // with no hand-off edge to pin it on, blame must stay empty
        // while the critical path still classifies the trailing stretch.
        let trace = Trace {
            end_time: SimTime(100),
            procs: vec![ProcReport {
                name: "P0".into(),
                busy: SimDuration(50),
                waiting: SimDuration(50),
                completed_work: 1,
                finished_at: None,
            }],
            resources: vec![ResourceReport {
                label: "marker".into(),
                capacity: 1,
                handoff: SimDuration::ZERO,
                stats: Default::default(),
            }],
            events: vec![
                TraceEvent {
                    time: SimTime(0),
                    proc: ProcId(0),
                    kind: EventKind::WorkStart {
                        dur: SimDuration(50),
                    },
                },
                TraceEvent {
                    time: SimTime(50),
                    proc: ProcId(0),
                    kind: EventKind::Blocked(ResourceId(0)),
                },
            ],
        };
        let a = analyze(&trace);
        // The engine charged the tail to waiting, but no holder can be
        // blamed for it: blame stays empty, strictly below total waiting.
        assert!(a.blame.is_empty());
        assert_eq!(a.blame_total(), SimDuration::ZERO);
        assert_eq!(trace.total_waiting(), SimDuration(50));
        let total: SimDuration = a
            .critical_path
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration());
        assert_eq!(total, trace.makespan());
        assert!(a
            .critical_path
            .iter()
            .any(|s| matches!(s.kind, CriticalKind::Contention(_))));
    }
}
