//! Simulation traces: accounting, event logs, and ASCII Gantt charts.

use crate::engine::ProcId;
use crate::resource::{ResourceId, ResourceStats};
use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Quote a CSV field RFC-4180-style when it contains a comma, quote, or
/// line break: the field is wrapped in double quotes and embedded quotes
/// are doubled. Fields without delimiters pass through unchanged.
pub fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains([',', '"', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut quoted = String::with_capacity(s.len() + 2);
    quoted.push('"');
    for c in s.chars() {
        if c == '"' {
            quoted.push('"');
        }
        quoted.push(c);
    }
    quoted.push('"');
    std::borrow::Cow::Owned(quoted)
}

/// Escape a string for interpolation into XML/SVG text content or a
/// double-quoted attribute: `&`, `<`, `>`, `"`, and `'` become entity
/// references. Strings without special characters pass through unchanged
/// (mirroring [`csv_field`]'s borrow-when-clean contract).
pub fn xml_escape(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains(['&', '<', '>', '"', '\'']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut escaped = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => escaped.push_str("&amp;"),
            '<' => escaped.push_str("&lt;"),
            '>' => escaped.push_str("&gt;"),
            '"' => escaped.push_str("&quot;"),
            '\'' => escaped.push_str("&apos;"),
            c => escaped.push(c),
        }
    }
    std::borrow::Cow::Owned(escaped)
}

/// What happened at one moment, for one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Began a chunk of work of the given duration.
    WorkStart {
        /// How long the work will take.
        dur: SimDuration,
    },
    /// Was granted a resource (instantly or after waiting + hand-off; the
    /// event is logged when the grant is decided).
    Acquired(ResourceId),
    /// Joined a resource's FIFO wait queue.
    Blocked(ResourceId),
    /// Released a resource.
    Released(ResourceId),
    /// Finished for good.
    Finished,
}

/// One log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which process.
    pub proc: ProcId,
    /// What happened.
    pub kind: EventKind,
}

/// Per-process accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcReport {
    /// Display name.
    pub name: String,
    /// Total time spent working.
    pub busy: SimDuration,
    /// Total time spent blocked on resources (including hand-offs).
    pub waiting: SimDuration,
    /// `Work` chunks that ran to completion — counted by the engine as
    /// wake events fire, so it is exact even when the event sink is off
    /// or a bell cut the run mid-chunk.
    pub completed_work: u64,
    /// When the process issued `Done` (None if it never finished).
    pub finished_at: Option<SimTime>,
}

impl ProcReport {
    /// The lifetime rates are computed against: from t=0 until the
    /// process finished, or until `trace_end` for a process that never
    /// finished — a downed worker is down for the whole run, not absent
    /// from it.
    pub fn lifetime(&self, trace_end: SimTime) -> SimDuration {
        self.finished_at.unwrap_or(trace_end) - SimTime::ZERO
    }

    /// Idle time: elapsed lifetime not spent busy or waiting.
    pub fn idle(&self, trace_end: SimTime) -> SimDuration {
        SimDuration(
            self.lifetime(trace_end)
                .millis()
                .saturating_sub(self.busy.millis() + self.waiting.millis()),
        )
    }

    /// Fraction of lifetime spent busy, in `[0, 1]` (0 for a zero-length
    /// lifetime). A process that never finished is measured against
    /// `trace_end`, so a downed or stalled worker reports its true (low)
    /// utilization instead of a spurious 100%.
    pub fn utilization(&self, trace_end: SimTime) -> f64 {
        let lifetime = self.lifetime(trace_end);
        if lifetime.millis() == 0 {
            0.0
        } else {
            self.busy.as_secs_f64() / lifetime.as_secs_f64()
        }
    }
}

/// Per-resource report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceReport {
    /// Display label.
    pub label: String,
    /// Number of interchangeable copies in the pool.
    pub capacity: usize,
    /// Hand-off latency charged on each contended grant.
    pub handoff: SimDuration,
    /// Contention statistics.
    pub stats: ResourceStats,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Time of the last event — the completion time the activity's timer
    /// student would report.
    pub end_time: SimTime,
    /// Per-process accounting, indexed by [`ProcId`].
    pub procs: Vec<ProcReport>,
    /// Per-resource contention stats, indexed by [`ResourceId`].
    pub resources: Vec<ResourceReport>,
    /// Full event log in chronological order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// The makespan (end time as a duration from zero).
    pub fn makespan(&self) -> SimDuration {
        self.end_time - SimTime::ZERO
    }

    /// Sum of all processes' busy time — the total "work".
    pub fn total_busy(&self) -> SimDuration {
        self.procs
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.busy)
    }

    /// Sum of all processes' waiting time — the total contention cost.
    pub fn total_waiting(&self) -> SimDuration {
        self.procs
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.waiting)
    }

    /// Sum of all processes' idle time (lifetime not spent busy or
    /// waiting) — the third column of the classroom work/wait/idle split.
    pub fn total_idle(&self) -> SimDuration {
        self.procs
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.idle(self.end_time))
    }

    /// Events for one process, in order.
    pub fn events_for(&self, pid: ProcId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.proc == pid)
    }

    /// Render an ASCII Gantt chart, one row per process, `width` characters
    /// across the full makespan: `#` busy, `~` waiting, `.` idle.
    ///
    /// The chart is a visual aid (the paper projects scenario slides; our
    /// equivalent is a terminal), not a precise plot: each character cell
    /// shows the dominant state in its time bucket.
    pub fn gantt(&self, width: usize) -> String {
        // Degenerate widths clamp to a one-column chart rather than
        // panicking or dividing by zero.
        let width = width.max(1);
        let total = self.end_time.millis().max(1);
        let name_w = self
            .procs
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for (idx, proc) in self.procs.iter().enumerate() {
            let pid = ProcId(idx as u32);
            // Build busy/wait intervals from the event log.
            let mut busy_iv: Vec<(u64, u64)> = Vec::new();
            let mut wait_iv: Vec<(u64, u64)> = Vec::new();
            let mut blocked_since: Option<u64> = None;
            for e in self.events_for(pid) {
                match e.kind {
                    EventKind::WorkStart { dur } => {
                        busy_iv.push((e.time.millis(), e.time.millis() + dur.millis()));
                    }
                    EventKind::Blocked(_) => blocked_since = Some(e.time.millis()),
                    EventKind::Acquired(_) => {
                        if let Some(s) = blocked_since.take() {
                            wait_iv.push((s, e.time.millis()));
                        }
                    }
                    _ => {}
                }
            }
            let _ = write!(out, "{:>name_w$} |", proc.name);
            for i in 0..width {
                let t0 = total * i as u64 / width as u64;
                let t1 = (total * (i + 1) as u64 / width as u64).max(t0 + 1);
                let overlap = |ivs: &[(u64, u64)]| {
                    ivs.iter()
                        .map(|&(a, b)| b.min(t1).saturating_sub(a.max(t0)))
                        .sum::<u64>()
                };
                let b = overlap(&busy_iv);
                let w = overlap(&wait_iv);
                out.push(if b == 0 && w == 0 {
                    '.'
                } else if b >= w {
                    '#'
                } else {
                    '~'
                });
            }
            out.push_str("|\n");
        }
        let _ = writeln!(
            out,
            "{:>name_w$} |{}| {}",
            "",
            "-".repeat(width),
            self.end_time
        );
        out
    }

    /// Export the event log as CSV (`time_ms,proc,proc_name,kind,resource`)
    /// for spreadsheet-side analysis of a run. Process names are quoted
    /// RFC-4180-style when they contain a delimiter, so a name like
    /// `P1, helper` cannot corrupt the column layout.
    pub fn events_csv(&self) -> String {
        let mut out = String::from("time_ms,proc,proc_name,kind,resource\n");
        for e in &self.events {
            let name = csv_field(
                self.procs
                    .get(e.proc.index())
                    .map(|p| p.name.as_str())
                    .unwrap_or("?"),
            );
            let (kind, res) = match e.kind {
                EventKind::WorkStart { dur } => (format!("work:{}", dur.millis()), String::new()),
                EventKind::Acquired(r) => ("acquired".to_owned(), r.index().to_string()),
                EventKind::Blocked(r) => ("blocked".to_owned(), r.index().to_string()),
                EventKind::Released(r) => ("released".to_owned(), r.index().to_string()),
                EventKind::Finished => ("finished".to_owned(), String::new()),
            };
            let _ = writeln!(out, "{},{},{},{},{}", e.time.millis(), e.proc.index(), name, kind, res);
        }
        out
    }

    /// Render per-resource holding timelines: one row per resource, `#`
    /// where some process holds it (including hand-off transit), `.` where
    /// it sits free. Shows at a glance which marker is the bottleneck.
    pub fn resource_gantt(&self, width: usize) -> String {
        // Same degenerate-width clamp as `gantt`.
        let width = width.max(1);
        let total = self.end_time.millis().max(1);
        let name_w = self
            .resources
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for (ri, res) in self.resources.iter().enumerate() {
            // Build held intervals: matched Acquired/Released per process.
            let mut held: Vec<(u64, u64)> = Vec::new();
            let mut open: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
            for e in &self.events {
                match e.kind {
                    EventKind::Acquired(r) if r.index() == ri => {
                        open.insert(e.proc.0, e.time.millis());
                    }
                    EventKind::Released(r) if r.index() == ri => {
                        if let Some(start) = open.remove(&e.proc.0) {
                            held.push((start, e.time.millis()));
                        }
                    }
                    _ => {}
                }
            }
            // Unreleased holds extend to the end.
            for (_, start) in open {
                held.push((start, total));
            }
            let _ = write!(out, "{:>name_w$} |", res.label);
            for i in 0..width {
                let t0 = total * i as u64 / width as u64;
                let t1 = (total * (i + 1) as u64 / width as u64).max(t0 + 1);
                let overlap: u64 = held
                    .iter()
                    .map(|&(a, b)| b.min(t1).saturating_sub(a.max(t0)))
                    .sum();
                out.push(if overlap * 2 >= (t1 - t0) { '#' } else { '.' });
            }
            out.push_str("|\n");
        }
        out
    }

    /// A per-process utilization table (busy/wait/idle percent of each
    /// process's lifetime).
    pub fn utilization_table(&self) -> String {
        let mut out = format!(
            "{:<16}{:>8}{:>8}{:>8}\n",
            "process", "busy%", "wait%", "idle%"
        );
        if self.procs.is_empty() {
            out.push_str("(no processes)\n");
            return out;
        }
        for p in &self.procs {
            let lifetime = p.lifetime(self.end_time).millis().max(1) as f64;
            let _ = writeln!(
                out,
                "{:<16}{:>7.1}%{:>7.1}%{:>7.1}%",
                p.name,
                100.0 * p.busy.millis() as f64 / lifetime,
                100.0 * p.waiting.millis() as f64 / lifetime,
                100.0 * p.idle(self.end_time).millis() as f64 / lifetime,
            );
        }
        out
    }

    /// Render the per-process timeline as an SVG Gantt chart (busy bars in
    /// color, waiting bars hatched gray) — a projectable version of
    /// [`Trace::gantt`]. Pure text output.
    pub fn svg_gantt(&self, width_px: u32) -> String {
        let total = self.end_time.millis().max(1) as f64;
        let row_h = 24u32;
        let label_w = 120u32;
        // A chart narrower than its label column (or zero-width) would
        // underflow the plot area; clamp to label column + a sliver.
        let width_px = width_px.max(label_w + 40);
        let height = row_h * (self.procs.len() as u32 + 1);
        let scale = |ms: u64| label_w as f64 + (ms as f64 / total) * (width_px - label_w) as f64;
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" \
             viewBox=\"0 0 {width_px} {height}\" font-family=\"monospace\" font-size=\"12\">\n"
        );
        for (idx, proc) in self.procs.iter().enumerate() {
            let pid = ProcId(idx as u32);
            let y = row_h * idx as u32 + 4;
            let _ = writeln!(
                out,
                "  <text x=\"4\" y=\"{}\">{}</text>",
                y + 12,
                xml_escape(&proc.name)
            );
            let mut blocked_since: Option<u64> = None;
            for e in self.events_for(pid) {
                match e.kind {
                    EventKind::WorkStart { dur } => {
                        let x0 = scale(e.time.millis());
                        let x1 = scale(e.time.millis() + dur.millis());
                        let _ = writeln!(
                            out,
                            "  <rect x=\"{x0:.1}\" y=\"{y}\" width=\"{:.1}\" height=\"16\" \
                             fill=\"#4a90d9\"/>",
                            (x1 - x0).max(0.5)
                        );
                    }
                    EventKind::Blocked(_) => blocked_since = Some(e.time.millis()),
                    EventKind::Acquired(_) => {
                        if let Some(s) = blocked_since.take() {
                            let x0 = scale(s);
                            let x1 = scale(e.time.millis());
                            let _ = writeln!(
                                out,
                                "  <rect x=\"{x0:.1}\" y=\"{y}\" width=\"{:.1}\" height=\"16\" \
                                 fill=\"#c0c0c0\"/>",
                                (x1 - x0).max(0.5)
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        let _ = writeln!(
            out,
            "  <text x=\"{label_w}\" y=\"{}\">0s .. {}</text>",
            height - 6,
            self.end_time
        );
        out.push_str("</svg>\n");
        out
    }

    /// A compact one-line summary, e.g. for classroom "times on the board".
    pub fn summary(&self) -> String {
        format!(
            "makespan {} | work {} | waiting {} | idle {} | {} procs",
            self.makespan(),
            self.total_busy(),
            self.total_waiting(),
            self.total_idle(),
            self.procs.len()
        )
    }

    /// Export the simulated timeline as Chrome `trace_event` JSON: one
    /// track per process (`tid` = process index) under a single
    /// `"flagsim"` pid, with balanced `B`/`E` pairs for work and wait
    /// phases and `"M"`-phase `process_name`/`thread_name` metadata so
    /// Perfetto / `chrome://tracing` show student names instead of bare
    /// thread ids. Times are in microseconds as the format requires.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let us = |ms: u64| ms * 1000;
        // Metadata first: process + one thread_name per process.
        out.push_str(
            "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"flagsim\"}}",
        );
        for (idx, p) in self.procs.iter().enumerate() {
            let _ = write!(
                out,
                ",\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{idx},\
                 \"args\":{{\"name\":{}}}}}",
                json_string_basic(&p.name)
            );
        }
        for (idx, _) in self.procs.iter().enumerate() {
            let pid = ProcId(idx as u32);
            let mut blocked_since: Option<(u64, usize)> = None;
            for e in self.events_for(pid) {
                match e.kind {
                    EventKind::WorkStart { dur } => {
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"work\",\"cat\":\"sim\",\"ph\":\"B\",\
                             \"pid\":1,\"tid\":{idx},\"ts\":{}}}",
                            us(e.time.millis())
                        );
                        let _ = write!(
                            out,
                            ",\n  {{\"name\":\"work\",\"cat\":\"sim\",\"ph\":\"E\",\
                             \"pid\":1,\"tid\":{idx},\"ts\":{}}}",
                            us(e.time.millis() + dur.millis())
                        );
                    }
                    EventKind::Blocked(r) => blocked_since = Some((e.time.millis(), r.index())),
                    EventKind::Acquired(_) => {
                        if let Some((since, ri)) = blocked_since.take() {
                            let label = self
                                .resources
                                .get(ri)
                                .map(|r| r.label.as_str())
                                .unwrap_or("resource");
                            let _ = write!(
                                out,
                                ",\n  {{\"name\":{},\"cat\":\"wait\",\"ph\":\"B\",\
                                 \"pid\":1,\"tid\":{idx},\"ts\":{}}}",
                                json_string_basic(&format!("wait: {label}")),
                                us(since)
                            );
                            let _ = write!(
                                out,
                                ",\n  {{\"name\":{},\"cat\":\"wait\",\"ph\":\"E\",\
                                 \"pid\":1,\"tid\":{idx},\"ts\":{}}}",
                                json_string_basic(&format!("wait: {label}")),
                                us(e.time.millis())
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal JSON string quoting for trace export (escapes quotes,
/// backslashes, and control characters). Kept local so desim stays
/// dependency-free; `telemetry::json` validates the result in tests.
fn json_string_basic(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            end_time: SimTime(100),
            procs: vec![
                ProcReport {
                    name: "P1".into(),
                    busy: SimDuration(60),
                    waiting: SimDuration(20),
                    completed_work: 1,
                    finished_at: Some(SimTime(100)),
                },
                ProcReport {
                    name: "P2".into(),
                    busy: SimDuration(50),
                    waiting: SimDuration(0),
                    completed_work: 1,
                    finished_at: Some(SimTime(50)),
                },
            ],
            resources: vec![],
            events: vec![
                TraceEvent {
                    time: SimTime(0),
                    proc: ProcId(0),
                    kind: EventKind::WorkStart {
                        dur: SimDuration(60),
                    },
                },
                TraceEvent {
                    time: SimTime(60),
                    proc: ProcId(0),
                    kind: EventKind::Blocked(ResourceId(0)),
                },
                TraceEvent {
                    time: SimTime(80),
                    proc: ProcId(0),
                    kind: EventKind::Acquired(ResourceId(0)),
                },
                TraceEvent {
                    time: SimTime(0),
                    proc: ProcId(1),
                    kind: EventKind::WorkStart {
                        dur: SimDuration(50),
                    },
                },
            ],
        }
    }

    #[test]
    fn totals() {
        let t = sample_trace();
        assert_eq!(t.makespan(), SimDuration(100));
        assert_eq!(t.total_busy(), SimDuration(110));
        assert_eq!(t.total_waiting(), SimDuration(20));
    }

    #[test]
    fn proc_report_idle_and_utilization() {
        let t = sample_trace();
        let end = t.end_time;
        assert_eq!(t.procs[0].idle(end), SimDuration(20)); // 100 - 60 - 20
        assert!((t.procs[0].utilization(end) - 0.6).abs() < 1e-12);
        assert_eq!(t.procs[1].idle(end), SimDuration(0));
    }

    #[test]
    fn downed_worker_utilization_measured_against_trace_end() {
        // Regression: a process that never finished used to report
        // utilization 1.0 — a downed worker showing 100% busy. It is
        // now measured against the trace end time.
        let p = ProcReport {
            name: "downed".into(),
            busy: SimDuration(30),
            waiting: SimDuration(10),
            completed_work: 0,
            finished_at: None,
        };
        let end = SimTime(100);
        assert!((p.utilization(end) - 0.3).abs() < 1e-12);
        assert_eq!(p.idle(end), SimDuration(60));
        assert_eq!(p.lifetime(end), SimDuration(100));
        // Degenerate zero-length trace: no division by zero, 0 not 100%.
        assert_eq!(p.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_table_shows_downed_worker_as_idle_not_busy() {
        let mut t = sample_trace();
        t.procs.push(ProcReport {
            name: "P3".into(),
            busy: SimDuration(0),
            waiting: SimDuration(0),
            completed_work: 0,
            finished_at: None,
        });
        let table = t.utilization_table();
        let p3 = table.lines().find(|l| l.starts_with("P3")).unwrap();
        assert!(p3.contains("  0.0%"), "no spurious busy time: {p3}");
        assert!(p3.contains("100.0%"), "fully idle against trace end: {p3}");
    }

    #[test]
    fn gantt_shape() {
        let t = sample_trace();
        let g = t.gantt(10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        // P1: 6 busy buckets, 2 wait buckets, 2 idle.
        assert!(lines[0].contains("######~~"));
        // P2: 5 busy buckets then idle.
        assert!(lines[1].contains("#####....."));
        assert!(lines[2].contains("0.100s"));
    }

    #[test]
    fn events_for_filters() {
        let t = sample_trace();
        assert_eq!(t.events_for(ProcId(0)).count(), 3);
        assert_eq!(t.events_for(ProcId(1)).count(), 1);
    }

    #[test]
    fn summary_mentions_makespan() {
        let t = sample_trace();
        assert!(t.summary().contains("makespan 0.100s"));
    }

    #[test]
    fn summary_includes_idle_total() {
        let t = sample_trace();
        // P1 idle 20ms (100 lifetime − 60 busy − 20 wait); P2 finished
        // at 50 with 50 busy, so 0 idle within its lifetime.
        assert_eq!(t.total_idle(), SimDuration(20));
        assert!(t.summary().contains("idle 0.020s"), "{}", t.summary());
    }

    #[test]
    fn chrome_trace_has_metadata_and_balanced_phases() {
        let t = trace_with_resource();
        let json = t.chrome_trace();
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"P1\""), "{json}");
        assert!(json.contains("wait: red marker"), "{json}");
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "balanced begin/end: {json}");
    }

    fn trace_with_resource() -> Trace {
        let mut t = sample_trace();
        t.resources = vec![ResourceReport {
            label: "red marker".into(),
            capacity: 1,
            handoff: SimDuration(0),
            stats: Default::default(),
        }];
        // P1 acquires at 80 and never releases (runs to end at 100).
        t
    }

    #[test]
    fn events_csv_rows() {
        let t = sample_trace();
        let csv = t.events_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ms,proc,proc_name,kind,resource");
        assert_eq!(lines.len(), 5); // header + 4 events
        assert!(lines[1].starts_with("0,0,P1,work:60,"));
        assert!(lines[2].contains("blocked,0"));
        assert!(lines[3].contains("acquired,0"));
    }

    #[test]
    fn events_csv_quotes_delimiters_in_process_names() {
        // Regression: a comma or quote in a process name used to shift
        // every later column of that row.
        let mut t = sample_trace();
        t.procs[0].name = "P1, \"helper\"".into();
        let csv = t.events_csv();
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "0,0,\"P1, \"\"helper\"\"\",work:60,");
        // Every row still has exactly five columns once quoted fields
        // are parsed RFC-4180-style.
        for line in csv.lines().skip(1) {
            let mut cols = 1;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => cols += 1,
                    _ => {}
                }
            }
            assert_eq!(cols, 5, "bad row: {line}");
        }
    }

    #[test]
    fn csv_field_quoting_rules() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn resource_gantt_marks_held_tail() {
        let t = trace_with_resource();
        let g = t.resource_gantt(10);
        // Acquired at 80ms of 100 → last two buckets held.
        assert!(g.contains("........##"), "{g}");
        assert!(g.starts_with("red marker |"));
    }

    #[test]
    fn svg_gantt_draws_busy_and_wait_bars() {
        let t = sample_trace();
        let svg = t.svg_gantt(600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("#4a90d9"), "busy bars present");
        assert!(svg.contains("#c0c0c0"), "wait bars present");
        assert!(svg.contains(">P1<"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn xml_escape_rules() {
        assert_eq!(xml_escape("plain"), "plain");
        assert!(matches!(xml_escape("plain"), std::borrow::Cow::Borrowed(_)));
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(xml_escape("say \"hi\" & 'bye'"), "say &quot;hi&quot; &amp; &apos;bye&apos;");
    }

    #[test]
    fn svg_gantt_escapes_process_names() {
        // Regression: a name like `P<1> & "co"` used to be interpolated
        // raw into the SVG, corrupting the document.
        let mut t = sample_trace();
        t.procs[0].name = "P<1> & \"co\"".into();
        let svg = t.svg_gantt(600);
        assert!(svg.contains(">P&lt;1&gt; &amp; &quot;co&quot;<"), "{svg}");
        assert!(!svg.contains(">P<1>"), "{svg}");
    }

    #[test]
    fn degenerate_chart_widths_clamp_instead_of_panicking() {
        let t = sample_trace();
        // Regression: width 0 used to assert; tiny svg widths underflowed
        // the plot area (u32 subtraction) and panicked.
        let g = t.gantt(0);
        assert_eq!(g.lines().count(), 3, "{g}");
        let rg = t.resource_gantt(0);
        assert!(rg.is_empty() || rg.lines().all(|l| l.ends_with('|')), "{rg}");
        let svg = t.svg_gantt(0);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
        let svg_small = t.svg_gantt(40); // smaller than the label column
        assert!(svg_small.contains("width=\"160\""), "{svg_small}");
    }

    #[test]
    fn utilization_table_handles_empty_trace() {
        let t = Trace {
            end_time: SimTime::ZERO,
            procs: vec![],
            resources: vec![],
            events: vec![],
        };
        let table = t.utilization_table();
        assert!(table.starts_with("process"), "{table}");
        assert!(table.contains("(no processes)"), "{table}");
        // The charts are degenerate but valid too.
        assert!(t.gantt(10).contains('|'));
        assert_eq!(t.resource_gantt(10), "");
    }

    #[test]
    fn utilization_table_sums_to_100() {
        let t = sample_trace();
        let table = t.utilization_table();
        assert!(table.contains("P1"));
        // P1: 60 busy + 20 wait + 20 idle of 100.
        assert!(table.contains("60.0%"));
        assert!(table.contains("20.0%"));
    }
}
