//! The event loop.

use crate::error::{SimError, WaitEdge, WaitForGraph};
use crate::resource::{ResourceId, ResourceState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, ProcReport, ResourceReport, Trace, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a process within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a process wants to do next. The engine performs the action and
/// polls the process again when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Be busy for a duration (coloring a cell), then get polled again.
    Work(SimDuration),
    /// Acquire an exclusive resource, waiting FIFO if it is held. The
    /// process is polled again once it holds the resource.
    Acquire(ResourceId),
    /// Release a held resource and get polled again immediately.
    Release(ResourceId),
    /// Sleep until an absolute time (e.g. a staggered start).
    WaitUntil(SimTime),
    /// Finished; the process is never polled again.
    Done,
}

/// A simulated actor, advanced as a state machine.
///
/// The engine calls [`Process::next`] exactly once per completed action:
/// after the initial wake-up, after each `Work` finishes, after each
/// `Acquire` is granted, after each `Release`/`WaitUntil` completes. The
/// implementation must therefore advance its internal state on every call.
pub trait Process {
    /// The next action, given the current simulation time.
    fn next(&mut self, now: SimTime) -> Action;

    /// Display name used in traces.
    fn name(&self) -> String {
        "process".to_owned()
    }
}

/// A [`Process`] built from a closure — handy for tests and small sims
/// that don't warrant a named state machine:
///
/// ```
/// use flagsim_desim::{Action, Engine, FnProcess, SimDuration};
///
/// let mut eng = Engine::new();
/// let mut remaining = 3;
/// eng.add_process(Box::new(FnProcess::new("worker", move |_now| {
///     if remaining == 0 {
///         Action::Done
///     } else {
///         remaining -= 1;
///         Action::Work(SimDuration::from_millis(10))
///     }
/// })));
/// assert_eq!(eng.run().end_time.millis(), 30);
/// ```
pub struct FnProcess<F: FnMut(SimTime) -> Action> {
    name: String,
    f: F,
}

impl<F: FnMut(SimTime) -> Action> FnProcess<F> {
    /// Wrap a closure as a process.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProcess {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(SimTime) -> Action> Process for FnProcess<F> {
    fn next(&mut self, now: SimTime) -> Action {
        (self.f)(now)
    }
    fn name(&self) -> String {
        self.name.clone()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Working,
    WaitingFor(ResourceId),
    Sleeping,
    Finished,
}

struct ProcSlot {
    process: Box<dyn Process>,
    state: ProcState,
    busy: SimDuration,
    waiting: SimDuration,
    wait_started: Option<SimTime>,
    finished_at: Option<SimTime>,
}

/// The deterministic discrete-event engine.
///
/// Build one, add resources and processes, then [`Engine::run`] to
/// completion. Event ordering is `(time, insertion sequence)` so equal-time
/// events fire in the order they were scheduled; resource queues are FIFO.
/// The same inputs always produce the same [`Trace`].
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, ProcId)>>,
    procs: Vec<ProcSlot>,
    resources: Vec<ResourceState>,
    events: Vec<TraceEvent>,
    max_events: u64,
    processed: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            procs: Vec::new(),
            resources: Vec::new(),
            events: Vec::new(),
            // Generous live-lock guard; a classroom run is ~1e3 events.
            max_events: 50_000_000,
            processed: 0,
        }
    }

    /// Configure the event-budget watchdog: runs that process more than
    /// `max` events fail with [`SimError::EventBudgetExceeded`] instead of
    /// spinning forever on a live-locked workload.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Register an exclusive resource with a hand-off latency applied when
    /// it passes from one process to a waiting one.
    pub fn add_resource(&mut self, label: impl Into<String>, handoff: SimDuration) -> ResourceId {
        self.add_resource_pool(label, 1, handoff)
    }

    /// Register a pool of `capacity` interchangeable units of a resource —
    /// e.g. a team with *two* red markers. Grants are still FIFO across
    /// the pool.
    pub fn add_resource_pool(
        &mut self,
        label: impl Into<String>,
        capacity: usize,
        handoff: SimDuration,
    ) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources
            .push(ResourceState::new(label.into(), capacity, handoff));
        id
    }

    /// Register a process, waking it at time zero.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> ProcId {
        self.add_process_at(process, SimTime::ZERO)
    }

    /// Register a process, waking it first at `start`.
    pub fn add_process_at(&mut self, process: Box<dyn Process>, start: SimTime) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(ProcSlot {
            process,
            state: ProcState::Runnable,
            busy: SimDuration::ZERO,
            waiting: SimDuration::ZERO,
            wait_started: None,
            finished_at: None,
        });
        self.schedule(start, id);
        id
    }

    fn schedule(&mut self, at: SimTime, pid: ProcId) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, pid)));
    }

    fn record(&mut self, pid: ProcId, kind: EventKind) {
        self.events.push(TraceEvent {
            time: self.now,
            proc: pid,
            kind,
        });
    }

    /// Run until no events remain, consuming the engine and returning the
    /// trace. Panicking compatibility wrapper around [`Engine::try_run`]:
    /// panics (with the [`SimError`] message) if the event budget trips or
    /// a process misbehaves — releasing a resource it doesn't hold, acting
    /// after `Done`, re-acquiring a resource it already holds — or if the
    /// run stalls with blocked waiters.
    pub fn run(self) -> Trace {
        match self.try_run() {
            Ok(trace) => trace,
            Err(e) => std::panic::panic_any(e.to_string()),
        }
    }

    /// Run until no events remain **or the bell rings**. Panicking
    /// compatibility wrapper around [`Engine::try_run_until`].
    pub fn run_until(self, deadline: SimTime) -> Trace {
        match self.try_run_until(deadline) {
            Ok(trace) => trace,
            Err(e) => std::panic::panic_any(e.to_string()),
        }
    }

    /// Run until no events remain, consuming the engine. Returns a typed
    /// [`SimError`] instead of panicking: misuse by a process, a tripped
    /// event budget, or a stall (the queue drained while processes still
    /// wait on resources — e.g. a circular wait) all surface as `Err`,
    /// with [`SimError::Stalled`] carrying the full wait-for graph.
    pub fn try_run(self) -> Result<Trace, SimError> {
        self.try_run_until(SimTime(u64::MAX))
    }

    /// Run until no events remain **or the bell rings**: events scheduled
    /// after `deadline` are not processed (work in flight past the
    /// deadline does not complete). The classroom reality behind §V-C's
    /// response-rate note — "the first of the three sections … had less
    /// time". The trace's `end_time` is the deadline when work was cut
    /// off, and unfinished processes report `finished_at: None`.
    ///
    /// Stall detection only applies to runs that drain naturally: a run
    /// cut off by the bell legitimately leaves processes blocked.
    pub fn try_run_until(mut self, deadline: SimTime) -> Result<Trace, SimError> {
        // One span per run, counters folded in at the end from stats the
        // engine already keeps — the event loop itself stays untouched,
        // so instrumentation cost is independent of event count.
        let run_span = flagsim_telemetry::span("sim", "desim.run")
            .arg("procs", self.procs.len())
            .arg("resources", self.resources.len());
        let mut cut_off = false;
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t > deadline {
                cut_off = true;
                break;
            }
            let Some(Reverse((t, _, pid))) = self.queue.pop() else {
                // peek() just returned Some; pop() cannot fail.
                break;
            };
            if t < self.now {
                return Err(SimError::InvariantViolated {
                    detail: format!(
                        "event queue went backwards ({}ms after {}ms)",
                        t.millis(),
                        self.now.millis()
                    ),
                    at: self.now,
                });
            }
            self.now = t;
            self.processed += 1;
            if self.processed > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    processed: self.processed,
                    budget: self.max_events,
                    at: self.now,
                });
            }
            self.advance(pid)?;
        }
        if cut_off {
            self.now = deadline;
        } else {
            let waiters = self.wait_for_graph();
            if !waiters.is_empty() {
                return Err(SimError::Stalled { waiters });
            }
        }
        self.record_run_metrics();
        drop(run_span);
        Ok(self.into_trace())
    }

    /// Fold the run's already-collected statistics into the telemetry
    /// registry. No-op (one atomic load) when telemetry is disabled.
    fn record_run_metrics(&self) {
        if !flagsim_telemetry::enabled() {
            return;
        }
        flagsim_telemetry::count("desim.runs", 1);
        flagsim_telemetry::count("desim.events_processed", self.processed);
        flagsim_telemetry::observe("desim.events_per_run", self.processed as f64);
        let mut acquisitions = 0u64;
        let mut contended = 0u64;
        let mut handoffs = 0u64;
        for res in &self.resources {
            acquisitions += res.stats.acquisitions;
            contended += res.stats.contended_acquisitions;
            handoffs += res.stats.handoffs;
        }
        flagsim_telemetry::count("desim.resource.acquisitions", acquisitions);
        flagsim_telemetry::count("desim.resource.contended", contended);
        flagsim_telemetry::count("desim.resource.handoffs", handoffs);
    }

    /// Snapshot the wait-for graph: one edge per process blocked on a
    /// resource, with the resource's current holders.
    fn wait_for_graph(&self) -> WaitForGraph {
        let mut edges = Vec::new();
        for (ridx, res) in self.resources.iter().enumerate() {
            for (queue_position, &wpid) in res.waiters.iter().enumerate() {
                edges.push(WaitEdge {
                    proc: wpid,
                    proc_name: self.procs[wpid.index()].process.name(),
                    resource: ResourceId(ridx as u32),
                    resource_label: res.label.clone(),
                    holders: res.holders.clone(),
                    queue_position,
                });
            }
        }
        WaitForGraph {
            edges,
            at: self.now,
        }
    }

    /// Poll `pid` repeatedly until it blocks, sleeps, works, or finishes.
    fn advance(&mut self, pid: ProcId) -> Result<(), SimError> {
        loop {
            let state = self.procs[pid.index()].state;
            if state == ProcState::Finished {
                return Err(SimError::ActedAfterDone {
                    proc: pid,
                    at: self.now,
                });
            }
            let action = self.procs[pid.index()].process.next(self.now);
            match action {
                Action::Work(dur) => {
                    self.procs[pid.index()].state = ProcState::Working;
                    self.procs[pid.index()].busy += dur;
                    self.record(pid, EventKind::WorkStart { dur });
                    let wake = self.now + dur;
                    self.schedule(wake, pid);
                    return Ok(());
                }
                Action::Acquire(rid) => {
                    let res = &mut self.resources[rid.index()];
                    if res.holds(pid) {
                        return Err(SimError::ReacquireHeld {
                            proc: pid,
                            proc_name: self.procs[pid.index()].process.name(),
                            resource: rid,
                            resource_label: self.resources[rid.index()].label.clone(),
                            at: self.now,
                        });
                    }
                    if res.has_free_unit() && res.waiters.is_empty() {
                        res.holders.push(pid);
                        res.stats.acquisitions += 1;
                        self.record(pid, EventKind::Acquired(rid));
                        // Granted instantly; keep polling at the same time.
                        continue;
                    }
                    res.waiters.push_back(pid);
                    res.stats.max_queue_len = res.stats.max_queue_len.max(res.waiters.len());
                    self.procs[pid.index()].state = ProcState::WaitingFor(rid);
                    self.procs[pid.index()].wait_started = Some(self.now);
                    self.record(pid, EventKind::Blocked(rid));
                    return Ok(());
                }
                Action::Release(rid) => {
                    let res = &mut self.resources[rid.index()];
                    let Some(pos) = res.holders.iter().position(|&h| h == pid) else {
                        return Err(SimError::ReleaseWithoutHold {
                            proc: pid,
                            proc_name: self.procs[pid.index()].process.name(),
                            resource: rid,
                            resource_label: self.resources[rid.index()].label.clone(),
                            at: self.now,
                        });
                    };
                    res.holders.swap_remove(pos);
                    self.record(pid, EventKind::Released(rid));
                    if let Some(next_pid) = self.resources[rid.index()].waiters.pop_front() {
                        self.grant_after_handoff(rid, next_pid)?;
                    }
                    // The releasing process keeps going at the same time.
                    continue;
                }
                Action::WaitUntil(t) => {
                    if t < self.now {
                        return Err(SimError::WaitUntilPast {
                            proc: pid,
                            target: t,
                            at: self.now,
                        });
                    }
                    self.procs[pid.index()].state = ProcState::Sleeping;
                    self.schedule(t, pid);
                    return Ok(());
                }
                Action::Done => {
                    self.procs[pid.index()].state = ProcState::Finished;
                    self.procs[pid.index()].finished_at = Some(self.now);
                    self.record(pid, EventKind::Finished);
                    return Ok(());
                }
            }
        }
    }

    /// Hand a released resource to the next FIFO waiter, charging the
    /// hand-off latency before the waiter is polled again.
    fn grant_after_handoff(&mut self, rid: ResourceId, pid: ProcId) -> Result<(), SimError> {
        let handoff = self.resources[rid.index()].handoff;
        let grant_time = self.now + handoff;
        let Some(started) = self.procs[pid.index()].wait_started.take() else {
            return Err(SimError::InvariantViolated {
                detail: format!(
                    "waiter {} granted \"{}\" without a recorded wait start",
                    pid.0,
                    self.resources[rid.index()].label
                ),
                at: self.now,
            });
        };
        // Wait covers queue time plus the hand-off itself.
        let waited = grant_time - started;
        let res = &mut self.resources[rid.index()];
        res.holders.push(pid); // in transit counts as held
        res.stats.acquisitions += 1;
        res.stats.contended_acquisitions += 1;
        res.stats.handoffs += 1;
        res.stats.total_wait += waited;
        let slot = &mut self.procs[pid.index()];
        slot.waiting += waited;
        slot.state = ProcState::Runnable;
        self.record(pid, EventKind::Acquired(rid));
        self.schedule(grant_time, pid);
        Ok(())
    }

    fn into_trace(self) -> Trace {
        let procs = self
            .procs
            .iter()
            .map(|p| ProcReport {
                name: p.process.name(),
                busy: p.busy,
                waiting: p.waiting,
                finished_at: p.finished_at,
            })
            .collect();
        let resources = self
            .resources
            .iter()
            .map(|r| ResourceReport {
                label: r.label.clone(),
                capacity: r.capacity,
                handoff: r.handoff,
                stats: r.stats.clone(),
            })
            .collect();
        Trace {
            end_time: self.now,
            procs,
            resources,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that performs a fixed script of actions.
    struct Scripted {
        name: String,
        script: Vec<Action>,
        cursor: usize,
    }

    impl Scripted {
        fn new(name: &str, script: Vec<Action>) -> Box<Self> {
            Box::new(Scripted {
                name: name.to_owned(),
                script,
                cursor: 0,
            })
        }
    }

    impl Process for Scripted {
        fn next(&mut self, _now: SimTime) -> Action {
            let a = self.script[self.cursor];
            self.cursor += 1;
            a
        }
        fn name(&self) -> String {
            self.name.clone()
        }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_worker_timing() {
        let mut eng = Engine::new();
        eng.add_process(Scripted::new(
            "solo",
            vec![Action::Work(ms(100)), Action::Work(ms(50)), Action::Done],
        ));
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(150));
        assert_eq!(trace.procs[0].busy, ms(150));
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[0].finished_at, Some(SimTime(150)));
    }

    #[test]
    fn two_independent_workers_overlap() {
        let mut eng = Engine::new();
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![Action::Work(ms(100)), Action::Done],
            ));
        }
        let trace = eng.run();
        // Parallel: both finish at 100, not 200.
        assert_eq!(trace.end_time, SimTime(100));
        assert_eq!(trace.makespan(), ms(100));
    }

    #[test]
    fn contention_serializes_and_charges_waiting() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("red marker", ms(0));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(100)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(200));
        // First-come-first-served: "a" was scheduled first.
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[1].waiting, ms(100));
        let stats = &trace.resources[0].stats;
        assert_eq!(stats.acquisitions, 2);
        assert_eq!(stats.contended_acquisitions, 1);
        assert_eq!(stats.handoffs, 1);
        assert_eq!(stats.total_wait, ms(100));
        assert_eq!(stats.max_queue_len, 1);
    }

    #[test]
    fn handoff_latency_delays_the_waiter() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", ms(30));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(100)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // b waits 100 (queue) + 30 (hand-off) then works 100.
        assert_eq!(trace.end_time, SimTime(230));
        assert_eq!(trace.procs[1].waiting, ms(130));
        // First acquisition was uncontended (no hand-off).
        assert_eq!(trace.resources[0].stats.handoffs, 1);
    }

    #[test]
    fn fifo_order_among_waiters() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", ms(0));
        for name in ["a", "b", "c"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(10)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // Finish order must be a, b, c at 10, 20, 30.
        let finishes: Vec<_> = trace
            .procs
            .iter()
            .map(|p| p.finished_at.unwrap().millis())
            .collect();
        assert_eq!(finishes, vec![10, 20, 30]);
        assert_eq!(trace.resources[0].stats.max_queue_len, 2);
    }

    #[test]
    fn wait_until_staggers_start() {
        let mut eng = Engine::new();
        eng.add_process(Scripted::new(
            "late",
            vec![
                Action::WaitUntil(SimTime(500)),
                Action::Work(ms(10)),
                Action::Done,
            ],
        ));
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(510));
    }

    #[test]
    fn add_process_at_delays_first_poll() {
        let mut eng = Engine::new();
        eng.add_process_at(
            Scripted::new("late", vec![Action::Work(ms(5)), Action::Done]),
            SimTime(100),
        );
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(105));
    }

    #[test]
    fn release_without_hold_is_typed_error() {
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new("bad", vec![Action::Release(r), Action::Done]));
        let err = eng.try_run().unwrap_err();
        match &err {
            SimError::ReleaseWithoutHold {
                proc,
                proc_name,
                resource,
                resource_label,
                at,
            } => {
                assert_eq!(proc.index(), 0);
                assert_eq!(proc_name, "bad");
                assert_eq!(*resource, r);
                assert_eq!(resource_label, "m");
                assert_eq!(*at, SimTime::ZERO);
            }
            other => panic!("expected ReleaseWithoutHold, got {other:?}"),
        }
        assert!(err.to_string().contains("does not hold"));
    }

    #[test]
    fn reacquire_is_typed_error() {
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new(
            "bad",
            vec![Action::Acquire(r), Action::Acquire(r), Action::Done],
        ));
        let err = eng.try_run().unwrap_err();
        assert!(
            matches!(&err, SimError::ReacquireHeld { proc, resource, .. }
                if proc.index() == 0 && *resource == r),
            "{err:?}"
        );
        assert!(err.to_string().contains("re-acquired"));
    }

    #[test]
    fn livelock_guard_is_typed_error() {
        struct Spinner;
        impl Process for Spinner {
            fn next(&mut self, _now: SimTime) -> Action {
                Action::Work(SimDuration::ZERO)
            }
        }
        let mut eng = Engine::new();
        eng.set_max_events(100);
        eng.add_process(Box::new(Spinner));
        let err = eng.try_run().unwrap_err();
        assert!(
            matches!(
                err,
                SimError::EventBudgetExceeded {
                    processed: 101,
                    budget: 100,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("live-lock"));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn run_compat_wrapper_still_panics() {
        // `run()` is the documented panicking wrapper; legacy callers keep
        // the old message substrings.
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new("bad", vec![Action::Release(r), Action::Done]));
        let _ = eng.run();
    }

    #[test]
    fn circular_wait_stalls_with_wait_for_graph() {
        // p0: holds A, wants B. p1: holds B, wants A. Classic deadlock:
        // the queue drains with both blocked, and try_run reports the full
        // wait-for graph instead of hanging.
        let mut eng = Engine::new();
        let a = eng.add_resource("marker A", ms(0));
        let b = eng.add_resource("marker B", ms(0));
        eng.add_process(Scripted::new(
            "p0",
            vec![
                Action::Acquire(a),
                Action::Work(ms(10)),
                Action::Acquire(b),
                Action::Done,
            ],
        ));
        eng.add_process(Scripted::new(
            "p1",
            vec![
                Action::Acquire(b),
                Action::Work(ms(10)),
                Action::Acquire(a),
                Action::Done,
            ],
        ));
        let err = eng.try_run().unwrap_err();
        let SimError::Stalled { waiters } = &err else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!(waiters.len(), 2, "{}", waiters.render());
        // p0 waits on B (held by p1); p1 waits on A (held by p0).
        let on_b = waiters.edges.iter().find(|e| e.resource_label == "marker B").unwrap();
        assert_eq!(on_b.proc.index(), 0);
        assert_eq!(on_b.holders, vec![ProcId(1)]);
        let on_a = waiters.edges.iter().find(|e| e.resource_label == "marker A").unwrap();
        assert_eq!(on_a.proc.index(), 1);
        assert_eq!(on_a.holders, vec![ProcId(0)]);
        let rendered = err.to_string();
        assert!(rendered.contains("stalled"), "{rendered}");
        assert!(rendered.contains("marker A"), "{rendered}");
    }

    #[test]
    fn finish_while_holding_starves_waiter_into_stall() {
        // A holder that never releases: the waiter starves, and the stall
        // report names the culprit as the holder.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new(
            "hog",
            vec![Action::Acquire(m), Action::Work(ms(5)), Action::Done],
        ));
        eng.add_process(Scripted::new(
            "starved",
            vec![Action::Acquire(m), Action::Done],
        ));
        let err = eng.try_run().unwrap_err();
        let SimError::Stalled { waiters } = err else {
            panic!("expected Stalled");
        };
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters.edges[0].proc_name, "starved");
        assert_eq!(waiters.edges[0].holders, vec![ProcId(0)]);
    }

    #[test]
    fn deadline_cutoff_is_not_a_stall() {
        // Blocked-at-the-bell is a legitimate outcome, not a deadlock.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(0));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(m),
                    Action::Work(ms(100)),
                    Action::Release(m),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.try_run_until(SimTime(50)).expect("cutoff is ok");
        assert_eq!(trace.end_time, SimTime(50));
        assert_eq!(trace.procs[1].finished_at, None);
    }

    #[test]
    fn try_run_matches_run_on_clean_workloads() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("m", ms(3));
            for name in ["a", "b"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Acquire(m),
                        Action::Work(ms(20)),
                        Action::Release(m),
                        Action::Done,
                    ],
                ));
            }
            eng
        };
        let ok = build().try_run().expect("clean workload");
        let compat = build().run();
        assert_eq!(ok.end_time, compat.end_time);
        assert_eq!(ok.events, compat.events);
    }

    #[test]
    fn resource_pool_grants_up_to_capacity() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("two markers", 2, ms(0));
        for name in ["a", "b", "c"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(pool),
                    Action::Work(ms(100)),
                    Action::Release(pool),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // a and b run together; c waits for one release.
        assert_eq!(trace.end_time, SimTime(200));
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[1].waiting, ms(0));
        assert_eq!(trace.procs[2].waiting, ms(100));
        assert_eq!(trace.resources[0].stats.contended_acquisitions, 1);
    }

    #[test]
    fn capacity_equal_to_demand_removes_contention() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("four markers", 4, ms(50));
        for name in ["a", "b", "c", "d"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(pool),
                    Action::Work(ms(100)),
                    Action::Release(pool),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(100));
        assert_eq!(trace.total_waiting(), ms(0));
        assert_eq!(trace.resources[0].stats.handoffs, 0);
    }

    #[test]
    fn deadline_cuts_off_unfinished_work() {
        let build = || {
            let mut eng = Engine::new();
            eng.add_process(Scripted::new(
                "slow",
                vec![
                    Action::Work(ms(100)),
                    Action::Work(ms(100)),
                    Action::Work(ms(100)),
                    Action::Done,
                ],
            ));
            eng
        };
        // Bell at 150ms: only the first work completed.
        let cut = build().run_until(SimTime(150));
        assert_eq!(cut.end_time, SimTime(150));
        assert_eq!(cut.procs[0].finished_at, None);
        // Work *started* before the bell still counts as busy time booked.
        assert_eq!(cut.procs[0].busy, ms(200));
        // Bell after the end: identical to run().
        let full = build().run_until(SimTime(10_000));
        assert_eq!(full.end_time, SimTime(300));
        assert_eq!(full.procs[0].finished_at, Some(SimTime(300)));
    }

    #[test]
    fn deterministic_repeat() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("m", ms(7));
            for name in ["a", "b", "c", "d"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Work(ms(13)),
                        Action::Acquire(m),
                        Action::Work(ms(31)),
                        Action::Release(m),
                        Action::Work(ms(5)),
                        Action::Done,
                    ],
                ));
            }
            eng.run()
        };
        let t1 = build();
        let t2 = build();
        assert_eq!(t1.end_time, t2.end_time);
        assert_eq!(t1.events, t2.events);
    }
}
