//! The event loop.
//!
//! Hot-path layout (the trainspotting-style rewrite, DESIGN.md §12):
//!
//! - **Slab-stored process slots.** Every process lives in a flat
//!   `Vec<ProcSlot>` addressed by its `usize` index; [`ProcId`] is a thin
//!   wrapper over that index and the loop never chases pointers beyond
//!   the one `Box<dyn Process>` per slot.
//! - **Index-keyed scheduler.** The ready queue is a
//!   flat `Vec<QueueEntry>` keyed `(time, seq)` with a monotonic
//!   tiebreak counter, scanned for its minimum each step — a process has
//!   at most one pending wake-up, so the queue never outgrows the team
//!   and a linear scan beats heap sifts. Equal-time events fire in
//!   schedule order; a compare touches two integers, never process
//!   state.
//! - **Integer time throughout** ([`SimTime`] is `u64` milliseconds).
//! - **Borrowed names.** [`Process::name`] returns `&str`; the poll path
//!   allocates no strings. Owned names are materialized only when a
//!   trace or error report is built (once per run, off the hot path).
//! - **Opt-out trace sink.** Event emission is a branch on a flag:
//!   stats-only runs ([`Engine::set_trace_events`]`(false)`) skip every
//!   event-vector push while keeping busy/waiting/completed accounting
//!   bit-identical to a recording run.

use crate::error::{SimError, WaitEdge, WaitForGraph};
use crate::resource::{ResourceId, ResourceState};
use crate::schedule::{ChoiceKind, ChoicePoint, SchedulePolicy};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventKind, ProcReport, ResourceReport, Trace, TraceEvent};

/// Identifies a process within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build from a raw index — for reconstructing a [`Trace`] from an
    /// external source (e.g. re-parsing an exported Chrome trace). Ids
    /// built this way are only meaningful against a trace whose `procs`
    /// table uses the same indexing.
    pub fn from_index(index: usize) -> ProcId {
        ProcId(index as u32)
    }
}

/// What a process wants to do next. The engine performs the action and
/// polls the process again when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Be busy for a duration (coloring a cell), then get polled again.
    Work(SimDuration),
    /// Acquire an exclusive resource, waiting FIFO if it is held. The
    /// process is polled again once it holds the resource.
    Acquire(ResourceId),
    /// Release a held resource and get polled again immediately.
    Release(ResourceId),
    /// Sleep until an absolute time (e.g. a staggered start).
    WaitUntil(SimTime),
    /// Finished; the process is never polled again.
    Done,
}

/// A simulated actor, advanced as a state machine.
///
/// The engine calls [`Process::next`] exactly once per completed action:
/// after the initial wake-up, after each `Work` finishes, after each
/// `Acquire` is granted, after each `Release`/`WaitUntil` completes. The
/// implementation must therefore advance its internal state on every call.
pub trait Process {
    /// The next action, given the current simulation time.
    fn next(&mut self, now: SimTime) -> Action;

    /// Display name used in traces. Borrowed: the engine calls this on
    /// poll-adjacent paths and must not pay a `String` allocation for it.
    fn name(&self) -> &str {
        "process"
    }
}

/// A [`Process`] built from a closure — handy for tests and small sims
/// that don't warrant a named state machine:
///
/// ```
/// use flagsim_desim::{Action, Engine, FnProcess, SimDuration};
///
/// let mut eng = Engine::new();
/// let mut remaining = 3;
/// eng.add_process(Box::new(FnProcess::new("worker", move |_now| {
///     if remaining == 0 {
///         Action::Done
///     } else {
///         remaining -= 1;
///         Action::Work(SimDuration::from_millis(10))
///     }
/// })));
/// assert_eq!(eng.run().end_time.millis(), 30);
/// ```
pub struct FnProcess<F: FnMut(SimTime) -> Action> {
    name: String,
    f: F,
}

impl<F: FnMut(SimTime) -> Action> FnProcess<F> {
    /// Wrap a closure as a process.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProcess {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(SimTime) -> Action> Process for FnProcess<F> {
    fn next(&mut self, now: SimTime) -> Action {
        (self.f)(now)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// One scheduled wake-up, keyed on `(at, seq)`: `seq` is unique per
/// entry, so two entries never compare equal and the process id stays
/// payload, not key.
///
/// The scheduler is a flat `Vec` scanned for its `(at, seq)` minimum at
/// each step, not a binary heap: a process has at most one pending
/// wake-up (it is blocked until its event fires), so the queue never
/// holds more entries than there are live processes — classroom scale,
/// a handful. At that size one branchy linear scan plus a `swap_remove`
/// beats a heap's sift-up/sift-down writes, and extraction order is
/// identical because `(at, seq)` is a strict total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    at: SimTime,
    seq: u64,
    pid: ProcId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Runnable,
    Working,
    WaitingFor(ResourceId),
    /// Granted a contended resource; the hand-off is in transit until
    /// the slot's `wake_at`.
    InTransit(ResourceId),
    Sleeping,
    Finished,
}

/// One slab entry. Everything the loop touches per event sits here,
/// addressed by the process index.
struct ProcSlot {
    process: Box<dyn Process>,
    state: ProcState,
    busy: SimDuration,
    waiting: SimDuration,
    wait_started: Option<SimTime>,
    /// When the pending `Work` chunk or in-transit hand-off completes.
    /// Meaningful only in the `Working` / `InTransit` states.
    wake_at: SimTime,
    /// `Work` chunks that ran to completion (the wake event fired).
    completed_work: u64,
    finished_at: Option<SimTime>,
    /// FNV-1a fingerprint of the poll history `(time, action)*` — a
    /// canonical proxy for the process's opaque internal state, since a
    /// deterministic process is a function of what it was asked and
    /// answered. Maintained only while a schedule policy is installed.
    history: u64,
}

/// The deterministic discrete-event engine.
///
/// Build one, add resources and processes, then [`Engine::run`] to
/// completion. Event ordering is `(time, insertion sequence)` so equal-time
/// events fire in the order they were scheduled; resource queues are FIFO.
/// The same inputs always produce the same [`Trace`].
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: Vec<QueueEntry>,
    procs: Vec<ProcSlot>,
    resources: Vec<ResourceState>,
    events: Vec<TraceEvent>,
    record_events: bool,
    max_events: u64,
    processed: u64,
    /// Installed tie-breaker, if any. `None` (the default) leaves the
    /// engine's behavior — and its hot path — exactly as before.
    policy: Option<Box<dyn SchedulePolicy>>,
    /// `policy.is_some()`, cached as a plain bool so the hot loop's
    /// guard is one predictable branch.
    policed: bool,
    /// Scratch: resources touched by the poll cascade in flight.
    cascade_buf: Vec<ResourceId>,
    /// Scratch: did the cascade in flight schedule an event at `now`?
    cascade_spawned: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Engine::with_capacity(0, 0, 0)
    }

    /// A fresh engine with pre-sized buffers: `procs` process slots,
    /// `resources` resource slots, and room for `events` trace entries.
    /// Callers that know their workload (one slot per student, ~4 events
    /// per cell) avoid every mid-run buffer growth.
    pub fn with_capacity(procs: usize, resources: usize, events: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: Vec::with_capacity(procs),
            procs: Vec::with_capacity(procs),
            resources: Vec::with_capacity(resources),
            events: Vec::with_capacity(events),
            record_events: true,
            // Generous live-lock guard; a classroom run is ~1e3 events.
            max_events: 50_000_000,
            processed: 0,
            policy: None,
            policed: false,
            cascade_buf: Vec::new(),
            cascade_spawned: false,
        }
    }

    /// Install a [`SchedulePolicy`]: from here on the engine's two
    /// tie-break rules (equal-time wake-ups; grants among waiters blocked
    /// since the same instant) become explicit choice points the policy
    /// resolves, with candidates presented in canonical (process-id)
    /// order. Without a policy those ties fall to insertion order, and
    /// the run is bit-for-bit what it always was.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = Some(policy);
        self.policed = true;
    }

    /// Configure the event-budget watchdog: runs that process more than
    /// `max` events fail with [`SimError::EventBudgetExceeded`] instead of
    /// spinning forever on a live-locked workload.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Opt out of (or back into) trace-event emission. With the sink off
    /// the returned [`Trace`] has an empty event log but identical
    /// accounting (busy, waiting, completed work, resource stats, end
    /// time) — the mode stats-only sweep repetitions run in.
    pub fn set_trace_events(&mut self, record: bool) {
        self.record_events = record;
    }

    /// Pre-reserve room for `additional` trace events.
    pub fn reserve_events(&mut self, additional: usize) {
        if self.record_events {
            self.events.reserve(additional);
        }
    }

    /// Register an exclusive resource with a hand-off latency applied when
    /// it passes from one process to a waiting one.
    pub fn add_resource(&mut self, label: impl Into<String>, handoff: SimDuration) -> ResourceId {
        self.add_resource_pool(label, 1, handoff)
    }

    /// Register a pool of `capacity` interchangeable units of a resource —
    /// e.g. a team with *two* red markers. Grants are still FIFO across
    /// the pool.
    pub fn add_resource_pool(
        &mut self,
        label: impl Into<String>,
        capacity: usize,
        handoff: SimDuration,
    ) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources
            .push(ResourceState::new(label.into(), capacity, handoff));
        id
    }

    /// Register a process, waking it at time zero.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> ProcId {
        self.add_process_at(process, SimTime::ZERO)
    }

    /// Register a process, waking it first at `start`.
    pub fn add_process_at(&mut self, process: Box<dyn Process>, start: SimTime) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(ProcSlot {
            process,
            state: ProcState::Runnable,
            busy: SimDuration::ZERO,
            waiting: SimDuration::ZERO,
            wait_started: None,
            wake_at: SimTime::ZERO,
            completed_work: 0,
            finished_at: None,
            history: crate::schedule::FNV_OFFSET,
        });
        self.schedule(start, id);
        id
    }

    #[inline]
    fn schedule(&mut self, at: SimTime, pid: ProcId) {
        self.seq += 1;
        if self.policed && at == self.now {
            self.cascade_spawned = true;
        }
        self.queue.push(QueueEntry {
            at,
            seq: self.seq,
            pid,
        });
    }

    /// Index of the earliest-`(at, seq)` entry, or `None` when the queue
    /// is empty. `(at, seq)` is a strict total order (`seq` is unique),
    /// so the minimum — and with it the whole extraction sequence — is
    /// exactly what the old binary heap produced.
    #[inline]
    fn min_entry(queue: &[QueueEntry]) -> Option<usize> {
        // One u128 per entry keeps the scan's compare branchless: time in
        // the high bits, tiebreak sequence in the low bits — the same
        // lexicographic `(at, seq)` order as a tuple compare.
        let key = |e: &QueueEntry| ((e.at.millis() as u128) << 64) | e.seq as u128;
        let mut it = queue.iter().enumerate();
        let (mut best, first) = it.next()?;
        let mut best_key = key(first);
        // Written as two selects (not a conditional block) so the
        // data-dependent comparison compiles to conditional moves:
        // wake-up times are effectively random, and a mispredicted
        // branch per compare would dominate the whole extraction.
        for (i, e) in it {
            let k = key(e);
            let lt = k < best_key;
            best = if lt { i } else { best };
            best_key = if lt { k } else { best_key };
        }
        Some(best)
    }

    #[inline]
    fn record(&mut self, pid: ProcId, kind: EventKind) {
        if self.record_events {
            self.events.push(TraceEvent {
                time: self.now,
                proc: pid,
                kind,
            });
        }
    }

    /// Run until no events remain, consuming the engine and returning the
    /// trace. Panicking compatibility wrapper around [`Engine::try_run`]:
    /// panics (with the [`SimError`] message) if the event budget trips or
    /// a process misbehaves — releasing a resource it doesn't hold, acting
    /// after `Done`, re-acquiring a resource it already holds — or if the
    /// run stalls with blocked waiters.
    pub fn run(self) -> Trace {
        match self.try_run() {
            Ok(trace) => trace,
            Err(e) => std::panic::panic_any(e.to_string()),
        }
    }

    /// Run until no events remain **or the bell rings**. Panicking
    /// compatibility wrapper around [`Engine::try_run_until`].
    pub fn run_until(self, deadline: SimTime) -> Trace {
        match self.try_run_until(deadline) {
            Ok(trace) => trace,
            Err(e) => std::panic::panic_any(e.to_string()),
        }
    }

    /// Run until no events remain, consuming the engine. Returns a typed
    /// [`SimError`] instead of panicking: misuse by a process, a tripped
    /// event budget, or a stall (the queue drained while processes still
    /// wait on resources — e.g. a circular wait) all surface as `Err`,
    /// with [`SimError::Stalled`] carrying the full wait-for graph.
    pub fn try_run(self) -> Result<Trace, SimError> {
        self.try_run_until(SimTime(u64::MAX))
    }

    /// Run until no events remain **or the bell rings**: events scheduled
    /// after `deadline` are not processed (work in flight past the
    /// deadline does not complete). The classroom reality behind §V-C's
    /// response-rate note — "the first of the three sections … had less
    /// time". The trace's `end_time` is the deadline when work was cut
    /// off, and unfinished processes report `finished_at: None`.
    ///
    /// A cut-off run settles its in-flight accounting to the wall clock:
    /// busy time for work still under way is clamped to the deadline, and
    /// processes still queued at the bell are charged their blocked tail
    /// — so `busy ≤ elapsed` and waiting matches the causal timeline
    /// reconstruction, per process and in aggregate.
    ///
    /// Stall detection only applies to runs that drain naturally: a run
    /// cut off by the bell legitimately leaves processes blocked.
    pub fn try_run_until(mut self, deadline: SimTime) -> Result<Trace, SimError> {
        // One span per run, counters folded in at the end from stats the
        // engine already keeps — the event loop itself stays untouched,
        // so instrumentation cost is independent of event count.
        let run_span = flagsim_telemetry::span("sim", "desim.run")
            .arg("procs", self.procs.len())
            .arg("resources", self.resources.len());
        let mut cut_off = false;
        while let Some(mut min) = Self::min_entry(&self.queue) {
            if self.policed {
                min = self.choose_tied_wakeup(min);
            }
            let t = self.queue[min].at;
            if t > deadline {
                cut_off = true;
                break;
            }
            let QueueEntry { pid, .. } = self.queue.swap_remove(min);
            if t < self.now {
                return Err(SimError::InvariantViolated {
                    detail: format!(
                        "event queue went backwards ({}ms after {}ms)",
                        t.millis(),
                        self.now.millis()
                    ),
                    at: self.now,
                });
            }
            self.now = t;
            self.processed += 1;
            if self.processed > self.max_events {
                return Err(SimError::EventBudgetExceeded {
                    processed: self.processed,
                    budget: self.max_events,
                    at: self.now,
                });
            }
            self.advance(pid).map_err(|e| *e)?;
        }
        if cut_off {
            self.now = deadline;
            self.settle_cutoff(deadline);
        } else {
            let waiters = self.wait_for_graph();
            if !waiters.is_empty() {
                return Err(SimError::Stalled { waiters });
            }
        }
        self.record_run_metrics();
        drop(run_span);
        Ok(self.into_trace())
    }

    /// The bell rang at `deadline` with events still queued: reconcile
    /// every in-flight slot's accounting with the wall clock. Any slot
    /// still `Working`/`InTransit` here has `wake_at > deadline` — its
    /// wake event is exactly what the cutoff refused to process.
    fn settle_cutoff(&mut self, deadline: SimTime) {
        for slot in &mut self.procs {
            match slot.state {
                ProcState::Working => {
                    // Busy over-charge fix: `WorkStart` booked the full
                    // chunk up front; the part past the bell never ran.
                    let unrun = slot.wake_at.since(deadline);
                    slot.busy = SimDuration(slot.busy.millis().saturating_sub(unrun.millis()));
                }
                ProcState::WaitingFor(rid) => {
                    // Waiting under-count fix: a process still queued at
                    // the bell has been waiting since it blocked; charge
                    // the tail to it and to the resource.
                    if let Some(started) = slot.wait_started.take() {
                        let tail = deadline.since(started);
                        slot.waiting += tail;
                        self.resources[rid.index()].stats.total_wait += tail;
                    }
                }
                ProcState::InTransit(rid) => {
                    // The grant charged wait through the hand-off's end;
                    // the transit portion past the bell never elapsed.
                    let overshoot = slot.wake_at.since(deadline).millis();
                    slot.waiting = SimDuration(slot.waiting.millis().saturating_sub(overshoot));
                    let stats = &mut self.resources[rid.index()].stats;
                    stats.total_wait =
                        SimDuration(stats.total_wait.millis().saturating_sub(overshoot));
                    stats.handoff_time =
                        SimDuration(stats.handoff_time.millis().saturating_sub(overshoot));
                }
                ProcState::Runnable | ProcState::Sleeping | ProcState::Finished => {}
            }
        }
    }

    /// Fold the run's already-collected statistics into the telemetry
    /// registry. No-op (one atomic load) when telemetry is disabled.
    fn record_run_metrics(&self) {
        if !flagsim_telemetry::enabled() {
            return;
        }
        flagsim_telemetry::count("desim.runs", 1);
        flagsim_telemetry::count("desim.events_processed", self.processed);
        flagsim_telemetry::observe("desim.events_per_run", self.processed as f64);
        let mut acquisitions = 0u64;
        let mut contended = 0u64;
        let mut handoffs = 0u64;
        for res in &self.resources {
            acquisitions += res.stats.acquisitions;
            contended += res.stats.contended_acquisitions;
            handoffs += res.stats.handoffs;
        }
        flagsim_telemetry::count("desim.resource.acquisitions", acquisitions);
        flagsim_telemetry::count("desim.resource.contended", contended);
        flagsim_telemetry::count("desim.resource.handoffs", handoffs);
    }

    /// With a policy installed: if several wake-ups are due at the
    /// minimum time, let the policy pick which fires first. Candidates
    /// are presented sorted by process id — a canonical order
    /// independent of the insertion sequence that the default tie-break
    /// uses — so equivalent states present identical choice points.
    /// Returns the queue index to extract. Cold: only runs under a
    /// policy, and only allocates when there is a real tie.
    #[cold]
    fn choose_tied_wakeup(&mut self, min: usize) -> usize {
        let t = self.queue[min].at;
        let mut tied: Vec<(ProcId, usize)> = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, e)| e.at == t)
            .map(|(i, e)| (e.pid, i))
            .collect();
        if tied.len() < 2 {
            return min;
        }
        tied.sort_unstable_by_key(|&(pid, _)| pid);
        let candidates: Vec<ProcId> = tied.iter().map(|&(pid, _)| pid).collect();
        let state_hash = self.state_hash();
        let Some(policy) = self.policy.as_mut() else {
            return min;
        };
        let chosen = policy
            .choose(&ChoicePoint {
                kind: ChoiceKind::Wakeup,
                at: t,
                candidates: &candidates,
                state_hash,
            })
            .min(candidates.len() - 1);
        tied[chosen].1
    }

    /// With a policy installed: pick which waiter a freed unit of `rid`
    /// goes to. FIFO order between *distinct* blocking instants is
    /// semantic (first-come-first-served) and preserved; only waiters
    /// blocked since the same instant as the queue head are candidates
    /// (arrival order keeps equal wait-starts contiguous at the front).
    /// Removal is order-preserving so the rest of the queue keeps its
    /// FIFO discipline.
    #[cold]
    fn choose_tied_grant(&mut self, rid: ResourceId) -> Option<ProcId> {
        let res = &self.resources[rid.index()];
        let front = *res.waiters.first()?;
        let front_started = self.procs[front.index()].wait_started;
        let mut tied: Vec<(ProcId, usize)> = Vec::new();
        for (i, &w) in res.waiters.iter().enumerate() {
            if self.procs[w.index()].wait_started == front_started {
                tied.push((w, i));
            } else {
                break;
            }
        }
        if tied.len() < 2 {
            return self.resources[rid.index()].waiters.pop_front();
        }
        tied.sort_unstable_by_key(|&(pid, _)| pid);
        let candidates: Vec<ProcId> = tied.iter().map(|&(pid, _)| pid).collect();
        let state_hash = self.state_hash();
        let at = self.now;
        let chosen = match self.policy.as_mut() {
            Some(policy) => policy
                .choose(&ChoicePoint {
                    kind: ChoiceKind::Grant(rid),
                    at,
                    candidates: &candidates,
                    state_hash,
                })
                .min(candidates.len() - 1),
            None => 0,
        };
        self.resources[rid.index()].waiters.remove(tied[chosen].1)
    }

    /// Canonical FNV-1a fingerprint of the semantic engine state —
    /// everything that determines the rest of the run, nothing that is
    /// an accident of how this state was reached. Insertion sequence
    /// numbers, queue slot order, and event-log contents are excluded;
    /// pending wake-ups are hashed as a sorted `(time, pid)` multiset,
    /// holders sorted by pid, and waiters by `(wait-start, pid)` (FIFO
    /// order within an equal-start run is the accident being abstracted
    /// away — the grant choice point re-exposes it explicitly). Process
    /// internals are represented by the slot's poll-history hash.
    fn state_hash(&self) -> u64 {
        use crate::schedule::{fnv_mix, FNV_OFFSET};
        let mut h = fnv_mix(FNV_OFFSET, self.now.millis());
        let mut pending: Vec<(u64, u32)> = self
            .queue
            .iter()
            .map(|e| (e.at.millis(), e.pid.0))
            .collect();
        pending.sort_unstable();
        h = fnv_mix(h, pending.len() as u64);
        for (at, pid) in pending {
            h = fnv_mix(fnv_mix(h, at), u64::from(pid));
        }
        for slot in &self.procs {
            let (disc, rid) = match slot.state {
                ProcState::Runnable => (0u64, 0u64),
                ProcState::Working => (1, 0),
                ProcState::WaitingFor(r) => (2, u64::from(r.0) + 1),
                ProcState::InTransit(r) => (3, u64::from(r.0) + 1),
                ProcState::Sleeping => (4, 0),
                ProcState::Finished => (5, 0),
            };
            h = fnv_mix(h, disc);
            h = fnv_mix(h, rid);
            h = fnv_mix(h, slot.busy.millis());
            h = fnv_mix(h, slot.waiting.millis());
            h = fnv_mix(h, slot.wait_started.map_or(0, |t| t.millis() + 1));
            // `wake_at` is stale outside Working/InTransit; canonicalize.
            let wake = match slot.state {
                ProcState::Working | ProcState::InTransit(_) => slot.wake_at.millis() + 1,
                _ => 0,
            };
            h = fnv_mix(h, wake);
            h = fnv_mix(h, slot.completed_work);
            h = fnv_mix(h, slot.finished_at.map_or(0, |t| t.millis() + 1));
            h = fnv_mix(h, slot.history);
        }
        for res in &self.resources {
            let mut holders: Vec<u32> = res.holders.iter().map(|p| p.0).collect();
            holders.sort_unstable();
            h = fnv_mix(h, holders.len() as u64);
            for p in holders {
                h = fnv_mix(h, u64::from(p));
            }
            let mut canon: Vec<(u64, u32)> = res
                .waiters
                .iter()
                .map(|&w| {
                    let start = self.procs[w.index()].wait_started;
                    (start.map_or(0, |t| t.millis() + 1), w.0)
                })
                .collect();
            canon.sort_unstable();
            h = fnv_mix(h, canon.len() as u64);
            for (start, pid) in canon {
                h = fnv_mix(fnv_mix(h, start), u64::from(pid));
            }
            let s = &res.stats;
            h = fnv_mix(h, s.acquisitions);
            h = fnv_mix(h, s.contended_acquisitions);
            h = fnv_mix(h, s.handoffs);
            h = fnv_mix(h, s.total_wait.millis());
            h = fnv_mix(h, s.handoff_time.millis());
            h = fnv_mix(h, s.max_queue_len as u64);
        }
        h
    }

    /// Fold one poll result into a slot's history fingerprint.
    fn mix_action(h: u64, now: SimTime, action: &Action) -> u64 {
        use crate::schedule::fnv_mix;
        let h = fnv_mix(h, now.millis());
        match action {
            Action::Work(d) => fnv_mix(fnv_mix(h, 1), d.millis()),
            Action::Acquire(r) => fnv_mix(fnv_mix(h, 2), u64::from(r.0)),
            Action::Release(r) => fnv_mix(fnv_mix(h, 3), u64::from(r.0)),
            Action::WaitUntil(t) => fnv_mix(fnv_mix(h, 4), t.millis()),
            Action::Done => fnv_mix(h, 5),
        }
    }

    /// Snapshot the wait-for graph: one edge per process blocked on a
    /// resource, with the resource's current holders.
    fn wait_for_graph(&self) -> WaitForGraph {
        let mut edges = Vec::new();
        for (ridx, res) in self.resources.iter().enumerate() {
            for (queue_position, &wpid) in res.waiters.iter().enumerate() {
                edges.push(WaitEdge {
                    proc: wpid,
                    proc_name: self.procs[wpid.index()].process.name().to_owned(),
                    resource: ResourceId(ridx as u32),
                    resource_label: res.label.clone(),
                    holders: res.holders.to_vec(),
                    queue_position,
                });
            }
        }
        WaitForGraph {
            edges,
            at: self.now,
        }
    }

    /// Poll `pid` repeatedly until it blocks, sleeps, works, or finishes.
    ///
    /// Errors come back boxed: `SimError` is a 72-byte enum, and an
    /// unboxed `Result` would be returned through memory on every event
    /// this loop processes. Boxed, the happy path fits in a register;
    /// the allocation only happens on the (cold, run-ending) error path.
    ///
    /// Under a schedule policy the cascade's resource footprint is
    /// collected and reported to the policy afterwards — the raw
    /// material for exploration's commutativity pruning.
    fn advance(&mut self, pid: ProcId) -> Result<(), Box<SimError>> {
        if !self.policed {
            return self.advance_inner(pid);
        }
        self.cascade_buf.clear();
        self.cascade_spawned = false;
        let result = self.advance_inner(pid);
        let buf = std::mem::take(&mut self.cascade_buf);
        let (now, spawned) = (self.now, self.cascade_spawned);
        if let Some(policy) = self.policy.as_mut() {
            policy.observe_cascade(pid, now, &buf, spawned);
        }
        self.cascade_buf = buf;
        result
    }

    fn advance_inner(&mut self, pid: ProcId) -> Result<(), Box<SimError>> {
        {
            // Resolve what this wake-up means before polling: a `Working`
            // slot's chunk just completed (count it); an `InTransit`
            // slot's hand-off just landed. `Finished` means the process
            // was scheduled after `Done` — a misuse error. A process
            // cannot become `Finished` mid-loop and be polled again
            // (Done returns immediately), so this entry check is the
            // only one needed.
            let slot = &mut self.procs[pid.index()];
            match slot.state {
                ProcState::Finished => {
                    return Err(Box::new(SimError::ActedAfterDone {
                        proc: pid,
                        at: self.now,
                    }));
                }
                ProcState::Working => {
                    slot.completed_work += 1;
                    slot.state = ProcState::Runnable;
                }
                ProcState::InTransit(_) => slot.state = ProcState::Runnable,
                ProcState::Runnable | ProcState::WaitingFor(_) | ProcState::Sleeping => {}
            }
        }
        // `now` is constant for the whole call; keep it in a local so
        // the poll loop never reloads it through `&mut self`.
        let now = self.now;
        let idx = pid.index();
        loop {
            let action = self.procs[idx].process.next(now);
            if self.policed {
                let slot = &mut self.procs[idx];
                slot.history = Self::mix_action(slot.history, now, &action);
            }
            match action {
                Action::Work(dur) => {
                    let wake = now + dur;
                    let slot = &mut self.procs[idx];
                    slot.state = ProcState::Working;
                    slot.busy += dur;
                    slot.wake_at = wake;
                    self.record(pid, EventKind::WorkStart { dur });
                    self.schedule(wake, pid);
                    return Ok(());
                }
                Action::Acquire(rid) => {
                    if self.policed {
                        self.cascade_buf.push(rid);
                    }
                    let res = &mut self.resources[rid.index()];
                    if res.holds(pid) {
                        return Err(Box::new(SimError::ReacquireHeld {
                            proc: pid,
                            proc_name: self.procs[idx].process.name().to_owned(),
                            resource: rid,
                            resource_label: self.resources[rid.index()].label.clone(),
                            at: now,
                        }));
                    }
                    if res.has_free_unit() && res.waiters.is_empty() {
                        res.holders.push(pid);
                        res.stats.acquisitions += 1;
                        self.record(pid, EventKind::Acquired(rid));
                        // Granted instantly; keep polling at the same time.
                        continue;
                    }
                    res.waiters.push(pid);
                    res.stats.max_queue_len = res.stats.max_queue_len.max(res.waiters.len());
                    let slot = &mut self.procs[idx];
                    slot.state = ProcState::WaitingFor(rid);
                    slot.wait_started = Some(now);
                    self.record(pid, EventKind::Blocked(rid));
                    return Ok(());
                }
                Action::Release(rid) => {
                    if self.policed {
                        self.cascade_buf.push(rid);
                    }
                    let res = &mut self.resources[rid.index()];
                    let Some(pos) = res.holders.iter().position(|&h| h == pid) else {
                        return Err(Box::new(SimError::ReleaseWithoutHold {
                            proc: pid,
                            proc_name: self.procs[idx].process.name().to_owned(),
                            resource: rid,
                            resource_label: self.resources[rid.index()].label.clone(),
                            at: now,
                        }));
                    };
                    res.holders.swap_remove(pos);
                    self.record(pid, EventKind::Released(rid));
                    let next_pid = if self.policed {
                        self.choose_tied_grant(rid)
                    } else {
                        self.resources[rid.index()].waiters.pop_front()
                    };
                    if let Some(next_pid) = next_pid {
                        self.grant_after_handoff(rid, next_pid)?;
                    }
                    // The releasing process keeps going at the same time.
                    continue;
                }
                Action::WaitUntil(t) => {
                    if t < now {
                        return Err(Box::new(SimError::WaitUntilPast {
                            proc: pid,
                            target: t,
                            at: now,
                        }));
                    }
                    self.procs[idx].state = ProcState::Sleeping;
                    self.schedule(t, pid);
                    return Ok(());
                }
                Action::Done => {
                    let slot = &mut self.procs[idx];
                    slot.state = ProcState::Finished;
                    slot.finished_at = Some(now);
                    self.record(pid, EventKind::Finished);
                    return Ok(());
                }
            }
        }
    }

    /// Hand a released resource to the next FIFO waiter, charging the
    /// hand-off latency before the waiter is polled again.
    fn grant_after_handoff(&mut self, rid: ResourceId, pid: ProcId) -> Result<(), Box<SimError>> {
        let handoff = self.resources[rid.index()].handoff;
        let grant_time = self.now + handoff;
        let Some(started) = self.procs[pid.index()].wait_started.take() else {
            return Err(Box::new(SimError::InvariantViolated {
                detail: format!(
                    "waiter {} granted \"{}\" without a recorded wait start",
                    pid.0,
                    self.resources[rid.index()].label
                ),
                at: self.now,
            }));
        };
        // Wait covers queue time plus the hand-off itself.
        let waited = grant_time - started;
        let res = &mut self.resources[rid.index()];
        res.holders.push(pid); // in transit counts as held
        res.stats.acquisitions += 1;
        res.stats.contended_acquisitions += 1;
        res.stats.handoffs += 1;
        res.stats.total_wait += waited;
        res.stats.handoff_time += handoff;
        let slot = &mut self.procs[pid.index()];
        slot.waiting += waited;
        slot.state = ProcState::InTransit(rid);
        slot.wake_at = grant_time;
        self.record(pid, EventKind::Acquired(rid));
        self.schedule(grant_time, pid);
        Ok(())
    }

    fn into_trace(self) -> Trace {
        let procs = self
            .procs
            .iter()
            .map(|p| ProcReport {
                name: p.process.name().to_owned(),
                busy: p.busy,
                waiting: p.waiting,
                completed_work: p.completed_work,
                finished_at: p.finished_at,
            })
            .collect();
        // The engine is consumed: labels and stats move into the report
        // rather than cloning per run.
        let resources = self
            .resources
            .into_iter()
            .map(|r| ResourceReport {
                label: r.label,
                capacity: r.capacity,
                handoff: r.handoff,
                stats: r.stats,
            })
            .collect();
        Trace {
            end_time: self.now,
            procs,
            resources,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that performs a fixed script of actions.
    struct Scripted {
        name: String,
        script: Vec<Action>,
        cursor: usize,
    }

    impl Scripted {
        fn new(name: &str, script: Vec<Action>) -> Box<Self> {
            Box::new(Scripted {
                name: name.to_owned(),
                script,
                cursor: 0,
            })
        }
    }

    impl Process for Scripted {
        fn next(&mut self, _now: SimTime) -> Action {
            let a = self.script[self.cursor];
            self.cursor += 1;
            a
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_worker_timing() {
        let mut eng = Engine::new();
        eng.add_process(Scripted::new(
            "solo",
            vec![Action::Work(ms(100)), Action::Work(ms(50)), Action::Done],
        ));
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(150));
        assert_eq!(trace.procs[0].busy, ms(150));
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[0].completed_work, 2);
        assert_eq!(trace.procs[0].finished_at, Some(SimTime(150)));
    }

    /// A capacity-1 pool with three same-instant contenders: the forced
    /// schedule's grant decisions pick service order, and the engine's
    /// decision log records both choice points (3-way then 2-way) with
    /// FIFO preserved for everyone else.
    #[test]
    fn forced_schedule_steers_grant_order() {
        use crate::schedule::{ChoiceKind, ForcedSchedule};
        let build = || {
            let mut eng = Engine::new();
            let pool = eng.add_resource("marker", SimDuration::ZERO);
            for (name, dur) in [("a", 10), ("b", 20), ("c", 30)] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Acquire(pool),
                        Action::Work(ms(dur)),
                        Action::Release(pool),
                        Action::Done,
                    ],
                ));
            }
            eng
        };
        // Default script: wake order a,b,c (pid order) — a holds, b and c
        // queue; grants then go b, c.
        let (policy, log) = ForcedSchedule::new(vec![]);
        let mut eng = build();
        eng.set_schedule_policy(policy);
        let base = eng.try_run().expect("runs");
        assert_eq!(base.procs[0].finished_at, Some(SimTime(10)));
        assert_eq!(base.procs[1].finished_at, Some(SimTime(30)));
        assert_eq!(base.procs[2].finished_at, Some(SimTime(60)));
        {
            let log = log.borrow();
            // Decision 0: the 3-way wake-up tie; decision 1: the 2-way
            // tie among the remaining same-instant wake-ups (b, c);
            // decision 2: the 2-way grant tie when a releases at t=10.
            // The final grant is a singleton, not a choice point.
            assert_eq!(log.decisions.len(), 3);
            assert_eq!(log.decisions[0].kind, ChoiceKind::Wakeup);
            assert_eq!(log.decisions[0].candidates.len(), 3);
            assert_eq!(log.decisions[1].kind, ChoiceKind::Wakeup);
            assert!(matches!(log.decisions[2].kind, ChoiceKind::Grant(_)));
            assert_eq!(log.decisions[2].candidates.len(), 2);
            // Cascades carry the pool in their footprints.
            assert!(log.cascades.iter().any(|c| !c.resources.is_empty()));
        }
        // Alternative: same wake order, but grant c before b.
        let (policy, _log) = ForcedSchedule::new(vec![0, 0, 1]);
        let mut eng = build();
        eng.set_schedule_policy(policy);
        let alt = eng.try_run().expect("runs");
        assert_eq!(alt.procs[2].finished_at, Some(SimTime(40)), "c served second");
        assert_eq!(alt.procs[1].finished_at, Some(SimTime(60)), "b served last");
        assert_eq!(alt.end_time, base.end_time, "work conserved");
    }

    /// Replaying the same forced schedule is byte-deterministic, and the
    /// canonical state hash at each choice point matches run for run.
    #[test]
    fn forced_schedule_replay_is_deterministic() {
        use crate::schedule::ForcedSchedule;
        let run = || {
            let mut eng = Engine::new();
            let pool = eng.add_resource("marker", ms(5));
            for name in ["a", "b"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Acquire(pool),
                        Action::Work(ms(10)),
                        Action::Release(pool),
                        Action::Done,
                    ],
                ));
            }
            let (policy, log) = ForcedSchedule::new(vec![1]);
            eng.set_schedule_policy(policy);
            let trace = eng.try_run().expect("runs");
            let log = std::rc::Rc::try_unwrap(log).expect("engine dropped").into_inner();
            (trace, log)
        };
        let (t1, l1) = run();
        let (t2, l2) = run();
        assert_eq!(t1, t2);
        assert_eq!(l1, l2);
        assert!(!l1.decisions.is_empty());
    }

    #[test]
    fn two_independent_workers_overlap() {
        let mut eng = Engine::new();
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![Action::Work(ms(100)), Action::Done],
            ));
        }
        let trace = eng.run();
        // Parallel: both finish at 100, not 200.
        assert_eq!(trace.end_time, SimTime(100));
        assert_eq!(trace.makespan(), ms(100));
    }

    #[test]
    fn contention_serializes_and_charges_waiting() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("red marker", ms(0));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(100)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(200));
        // First-come-first-served: "a" was scheduled first.
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[1].waiting, ms(100));
        let stats = &trace.resources[0].stats;
        assert_eq!(stats.acquisitions, 2);
        assert_eq!(stats.contended_acquisitions, 1);
        assert_eq!(stats.handoffs, 1);
        assert_eq!(stats.total_wait, ms(100));
        assert_eq!(stats.max_queue_len, 1);
    }

    #[test]
    fn handoff_latency_delays_the_waiter() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", ms(30));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(100)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // b waits 100 (queue) + 30 (hand-off) then works 100.
        assert_eq!(trace.end_time, SimTime(230));
        assert_eq!(trace.procs[1].waiting, ms(130));
        // First acquisition was uncontended (no hand-off).
        assert_eq!(trace.resources[0].stats.handoffs, 1);
    }

    #[test]
    fn total_wait_splits_queue_time_from_handoff_transit() {
        // Same workload as `handoff_latency_delays_the_waiter`, pinning
        // the documented `total_wait` semantics: queue + hand-off
        // combined, with `handoff_time` isolating the transit portion
        // and `queue_wait()` the pure queue component.
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", ms(30));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(100)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let stats = eng.run().resources[0].stats.clone();
        assert_eq!(stats.total_wait, ms(130));
        assert_eq!(stats.handoff_time, ms(30));
        assert_eq!(stats.queue_wait(), ms(100));
    }

    #[test]
    fn fifo_order_among_waiters() {
        let mut eng = Engine::new();
        let marker = eng.add_resource("marker", ms(0));
        for name in ["a", "b", "c"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(marker),
                    Action::Work(ms(10)),
                    Action::Release(marker),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // Finish order must be a, b, c at 10, 20, 30.
        let finishes: Vec<_> = trace
            .procs
            .iter()
            .map(|p| p.finished_at.unwrap().millis())
            .collect();
        assert_eq!(finishes, vec![10, 20, 30]);
        assert_eq!(trace.resources[0].stats.max_queue_len, 2);
    }

    #[test]
    fn wait_until_staggers_start() {
        let mut eng = Engine::new();
        eng.add_process(Scripted::new(
            "late",
            vec![
                Action::WaitUntil(SimTime(500)),
                Action::Work(ms(10)),
                Action::Done,
            ],
        ));
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(510));
    }

    #[test]
    fn add_process_at_delays_first_poll() {
        let mut eng = Engine::new();
        eng.add_process_at(
            Scripted::new("late", vec![Action::Work(ms(5)), Action::Done]),
            SimTime(100),
        );
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(105));
    }

    #[test]
    fn release_without_hold_is_typed_error() {
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new("bad", vec![Action::Release(r), Action::Done]));
        let err = eng.try_run().unwrap_err();
        match &err {
            SimError::ReleaseWithoutHold {
                proc,
                proc_name,
                resource,
                resource_label,
                at,
            } => {
                assert_eq!(proc.index(), 0);
                assert_eq!(proc_name, "bad");
                assert_eq!(*resource, r);
                assert_eq!(resource_label, "m");
                assert_eq!(*at, SimTime::ZERO);
            }
            other => panic!("expected ReleaseWithoutHold, got {other:?}"),
        }
        assert!(err.to_string().contains("does not hold"));
    }

    #[test]
    fn reacquire_is_typed_error() {
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new(
            "bad",
            vec![Action::Acquire(r), Action::Acquire(r), Action::Done],
        ));
        let err = eng.try_run().unwrap_err();
        assert!(
            matches!(&err, SimError::ReacquireHeld { proc, resource, .. }
                if proc.index() == 0 && *resource == r),
            "{err:?}"
        );
        assert!(err.to_string().contains("re-acquired"));
    }

    #[test]
    fn livelock_guard_is_typed_error() {
        struct Spinner;
        impl Process for Spinner {
            fn next(&mut self, _now: SimTime) -> Action {
                Action::Work(SimDuration::ZERO)
            }
        }
        let mut eng = Engine::new();
        eng.set_max_events(100);
        eng.add_process(Box::new(Spinner));
        let err = eng.try_run().unwrap_err();
        assert!(
            matches!(
                err,
                SimError::EventBudgetExceeded {
                    processed: 101,
                    budget: 100,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("live-lock"));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn run_compat_wrapper_still_panics() {
        // `run()` is the documented panicking wrapper; legacy callers keep
        // the old message substrings.
        let mut eng = Engine::new();
        let r = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new("bad", vec![Action::Release(r), Action::Done]));
        let _ = eng.run();
    }

    #[test]
    fn circular_wait_stalls_with_wait_for_graph() {
        // p0: holds A, wants B. p1: holds B, wants A. Classic deadlock:
        // the queue drains with both blocked, and try_run reports the full
        // wait-for graph instead of hanging.
        let mut eng = Engine::new();
        let a = eng.add_resource("marker A", ms(0));
        let b = eng.add_resource("marker B", ms(0));
        eng.add_process(Scripted::new(
            "p0",
            vec![
                Action::Acquire(a),
                Action::Work(ms(10)),
                Action::Acquire(b),
                Action::Done,
            ],
        ));
        eng.add_process(Scripted::new(
            "p1",
            vec![
                Action::Acquire(b),
                Action::Work(ms(10)),
                Action::Acquire(a),
                Action::Done,
            ],
        ));
        let err = eng.try_run().unwrap_err();
        let SimError::Stalled { waiters } = &err else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!(waiters.len(), 2, "{}", waiters.render());
        // p0 waits on B (held by p1); p1 waits on A (held by p0).
        let on_b = waiters.edges.iter().find(|e| e.resource_label == "marker B").unwrap();
        assert_eq!(on_b.proc.index(), 0);
        assert_eq!(on_b.holders, vec![ProcId(1)]);
        let on_a = waiters.edges.iter().find(|e| e.resource_label == "marker A").unwrap();
        assert_eq!(on_a.proc.index(), 1);
        assert_eq!(on_a.holders, vec![ProcId(0)]);
        let rendered = err.to_string();
        assert!(rendered.contains("stalled"), "{rendered}");
        assert!(rendered.contains("marker A"), "{rendered}");
    }

    #[test]
    fn finish_while_holding_starves_waiter_into_stall() {
        // A holder that never releases: the waiter starves, and the stall
        // report names the culprit as the holder.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(0));
        eng.add_process(Scripted::new(
            "hog",
            vec![Action::Acquire(m), Action::Work(ms(5)), Action::Done],
        ));
        eng.add_process(Scripted::new(
            "starved",
            vec![Action::Acquire(m), Action::Done],
        ));
        let err = eng.try_run().unwrap_err();
        let SimError::Stalled { waiters } = err else {
            panic!("expected Stalled");
        };
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters.edges[0].proc_name, "starved");
        assert_eq!(waiters.edges[0].holders, vec![ProcId(0)]);
    }

    #[test]
    fn deadline_cutoff_is_not_a_stall() {
        // Blocked-at-the-bell is a legitimate outcome, not a deadlock.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(0));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(m),
                    Action::Work(ms(100)),
                    Action::Release(m),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.try_run_until(SimTime(50)).expect("cutoff is ok");
        assert_eq!(trace.end_time, SimTime(50));
        assert_eq!(trace.procs[1].finished_at, None);
    }

    #[test]
    fn cutoff_charges_blocked_tail_to_waiting() {
        // b has been queued on m since t=0 when the bell rings at 50: the
        // engine must charge the in-progress wait `[0, 50]` to both the
        // process and the resource — and clamp a's in-flight work chunk,
        // so nobody's busy or waiting exceeds the elapsed wall clock.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(0));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(m),
                    Action::Work(ms(100)),
                    Action::Release(m),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.try_run_until(SimTime(50)).expect("cutoff is ok");
        assert_eq!(trace.procs[1].waiting, ms(50));
        assert_eq!(trace.resources[0].stats.total_wait, ms(50));
        assert_eq!(trace.total_waiting(), ms(50));
        assert_eq!(trace.procs[0].busy, ms(50));
        for p in &trace.procs {
            assert!(p.busy <= trace.makespan(), "{}: busy > elapsed", p.name);
            assert!(p.waiting <= trace.makespan(), "{}: waiting > elapsed", p.name);
        }
    }

    #[test]
    fn cutoff_clamps_in_transit_handoff() {
        // a releases at 100; b's grant lands at 130 after the 30ms
        // hand-off — but the bell rings at 110, mid-transit. The grant
        // charged b the full 130ms of wait up front; the 20ms of transit
        // past the bell never elapsed and must be refunded everywhere:
        // process waiting, resource total_wait, and the hand-off split.
        let mut eng = Engine::new();
        let m = eng.add_resource("m", ms(30));
        for name in ["a", "b"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(m),
                    Action::Work(ms(100)),
                    Action::Release(m),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.try_run_until(SimTime(110)).expect("cutoff is ok");
        assert_eq!(trace.end_time, SimTime(110));
        assert_eq!(trace.procs[1].waiting, ms(110));
        let stats = &trace.resources[0].stats;
        assert_eq!(stats.total_wait, ms(110));
        assert_eq!(stats.handoff_time, ms(10));
        assert_eq!(stats.queue_wait(), ms(100));
        for p in &trace.procs {
            assert!(p.waiting <= trace.makespan(), "{}: waiting > elapsed", p.name);
        }
    }

    #[test]
    fn try_run_matches_run_on_clean_workloads() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("m", ms(3));
            for name in ["a", "b"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Acquire(m),
                        Action::Work(ms(20)),
                        Action::Release(m),
                        Action::Done,
                    ],
                ));
            }
            eng
        };
        let ok = build().try_run().expect("clean workload");
        let compat = build().run();
        assert_eq!(ok.end_time, compat.end_time);
        assert_eq!(ok.events, compat.events);
    }

    #[test]
    fn resource_pool_grants_up_to_capacity() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("two markers", 2, ms(0));
        for name in ["a", "b", "c"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(pool),
                    Action::Work(ms(100)),
                    Action::Release(pool),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        // a and b run together; c waits for one release.
        assert_eq!(trace.end_time, SimTime(200));
        assert_eq!(trace.procs[0].waiting, ms(0));
        assert_eq!(trace.procs[1].waiting, ms(0));
        assert_eq!(trace.procs[2].waiting, ms(100));
        assert_eq!(trace.resources[0].stats.contended_acquisitions, 1);
    }

    #[test]
    fn capacity_equal_to_demand_removes_contention() {
        let mut eng = Engine::new();
        let pool = eng.add_resource_pool("four markers", 4, ms(50));
        for name in ["a", "b", "c", "d"] {
            eng.add_process(Scripted::new(
                name,
                vec![
                    Action::Acquire(pool),
                    Action::Work(ms(100)),
                    Action::Release(pool),
                    Action::Done,
                ],
            ));
        }
        let trace = eng.run();
        assert_eq!(trace.end_time, SimTime(100));
        assert_eq!(trace.total_waiting(), ms(0));
        assert_eq!(trace.resources[0].stats.handoffs, 0);
    }

    #[test]
    fn deadline_cuts_off_unfinished_work() {
        let build = || {
            let mut eng = Engine::new();
            eng.add_process(Scripted::new(
                "slow",
                vec![
                    Action::Work(ms(100)),
                    Action::Work(ms(100)),
                    Action::Work(ms(100)),
                    Action::Done,
                ],
            ));
            eng
        };
        // Bell at 150ms: the first chunk completed, the second is cut off
        // halfway. Busy is clamped to the wall clock — 100ms of finished
        // work plus 50ms of the chunk under way, never more than elapsed.
        let cut = build().run_until(SimTime(150));
        assert_eq!(cut.end_time, SimTime(150));
        assert_eq!(cut.procs[0].finished_at, None);
        assert_eq!(cut.procs[0].busy, ms(150));
        assert_eq!(cut.procs[0].completed_work, 1);
        assert!(cut.procs[0].busy <= cut.makespan());
        // Bell after the end: identical to run().
        let full = build().run_until(SimTime(10_000));
        assert_eq!(full.end_time, SimTime(300));
        assert_eq!(full.procs[0].finished_at, Some(SimTime(300)));
        assert_eq!(full.procs[0].busy, ms(300));
        assert_eq!(full.procs[0].completed_work, 3);
    }

    #[test]
    fn trace_sink_opt_out_keeps_accounting() {
        // With the event sink off the trace has no events but identical
        // accounting — the contract that lets stats-only sweep reps skip
        // event pushes entirely.
        let build = |record: bool| {
            let mut eng = Engine::new();
            let m = eng.add_resource("m", ms(7));
            eng.set_trace_events(record);
            for name in ["a", "b", "c"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Acquire(m),
                        Action::Work(ms(40)),
                        Action::Release(m),
                        Action::Work(ms(5)),
                        Action::Done,
                    ],
                ));
            }
            eng.run()
        };
        let on = build(true);
        let off = build(false);
        assert!(!on.events.is_empty());
        assert!(off.events.is_empty());
        assert_eq!(on.end_time, off.end_time);
        assert_eq!(on.procs, off.procs);
        assert_eq!(on.resources, off.resources);
    }

    #[test]
    fn deterministic_repeat() {
        let build = || {
            let mut eng = Engine::new();
            let m = eng.add_resource("m", ms(7));
            for name in ["a", "b", "c", "d"] {
                eng.add_process(Scripted::new(
                    name,
                    vec![
                        Action::Work(ms(13)),
                        Action::Acquire(m),
                        Action::Work(ms(31)),
                        Action::Release(m),
                        Action::Work(ms(5)),
                        Action::Done,
                    ],
                ));
            }
            eng.run()
        };
        let t1 = build();
        let t2 = build();
        assert_eq!(t1.end_time, t2.end_time);
        assert_eq!(t1.events, t2.events);
    }
}
