//! # flagsim-desim
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! This is the substrate under the activity simulator: virtual students are
//! [`Process`]es that alternate between doing timed work (coloring a cell)
//! and acquiring/releasing exclusive [`resource`]s (the team's single
//! marker of each color — the source of scenario 4's contention). The
//! engine is generic: nothing in this crate knows about flags, cells, or
//! students.
//!
//! Design points:
//!
//! * **Integer time.** [`SimTime`] counts milliseconds as a `u64`; no
//!   float-comparison hazards in the event queue.
//! * **Determinism.** Events are ordered by `(time, sequence-number)`, and
//!   resource wait queues are strict FIFO, so a simulation is a pure
//!   function of its inputs. All randomness lives *outside* the engine (in
//!   the cost model that produces work durations).
//! * **State-machine processes.** Rust has no native coroutines to suspend
//!   mid-`fn`, so a process is a state machine the engine polls for its
//!   next [`Action`]: work for a duration, acquire a resource (possibly
//!   waiting), release one, or finish. This mirrors how classic DES
//!   libraries are built atop explicit continuations.
//! * **Tracing built in.** The [`Trace`] records per-process busy/wait
//!   accounting, per-resource contention stats, and a full event log that
//!   higher layers render as Gantt charts.
//! * **Typed failures.** Misuse (releasing a resource you don't hold,
//!   re-acquiring, acting after `Done`), live-lock (the event-budget
//!   watchdog), and deadlock/starvation (the queue drains with blocked
//!   waiters) surface as [`SimError`] from [`Engine::try_run`], with
//!   stalls carrying the full [`WaitForGraph`]. [`Engine::run`] stays as
//!   the panicking wrapper for infallible workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod engine;
pub mod error;
pub mod resource;
pub mod schedule;
pub mod time;
pub mod trace;

pub use causal::{
    analyze, blame_table_text, critical_gantt, sync_edges, CausalAnalysis, CriticalKind,
    CriticalSegment, HolderBlame, ResourceBlame, Segment, SegmentKind, SyncEdge, WhatIf,
};
pub use engine::{Action, Engine, FnProcess, ProcId, Process};
pub use error::{SimError, WaitEdge, WaitForGraph};
pub use resource::ResourceId;
pub use schedule::{
    CascadeRec, ChoiceKind, ChoicePoint, Decision, ForcedSchedule, ScheduleLog, SchedulePolicy,
};
pub use time::{SimDuration, SimTime};
pub use trace::{csv_field, xml_escape, EventKind, Trace, TraceEvent};
