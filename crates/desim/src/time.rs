//! Simulation time.
//!
//! Time is measured in integer milliseconds. The activity's real
//! completion times are tens of seconds to a few minutes, so `u64`
//! milliseconds gives more than enough range and keeps event ordering
//! exact (no float ties).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (milliseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since the epoch.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reports).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration from `earlier` to `self`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Build from float seconds, rounding to the nearest millisecond.
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Milliseconds.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t, SimTime(1500));
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t - SimTime(500), SimDuration(1000));
        let mut d = SimDuration::from_millis(2);
        d += SimDuration::from_millis(3);
        assert_eq!(d, SimDuration(5));
    }

    #[test]
    fn from_secs_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0014), SimDuration(1));
        assert_eq!(SimDuration::from_secs_f64(0.0016), SimDuration(2));
        assert_eq!(SimDuration::from_secs_f64(2.5), SimDuration(2500));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-0.1);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_backwards() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(2500).to_string(), "2.500s");
        assert_eq!(SimDuration(40).to_string(), "0.040s");
    }
}
