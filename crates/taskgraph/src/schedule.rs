//! Deterministic list scheduling.
//!
//! Schedules a [`TaskGraph`] onto `p` identical processors: repeatedly pick
//! the highest-priority ready task and place it on the processor that can
//! start it earliest. This is the classic non-preemptive list scheduler —
//! simple, deterministic, and within Graham's bound of optimal — which is
//! all the activity analysis needs (we're explaining classroom phenomena,
//! not shaving makespans).

#[cfg(test)]
use crate::analysis;
use crate::graph::{TaskGraph, TaskId};
use std::fmt::Write as _;

/// Task-ordering heuristics for the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Highest Level First: prioritize tasks with the longest downstream
    /// critical path (weight-inclusive). The default, and the one that
    /// matches how a well-coordinated team attacks a layered flag.
    #[default]
    CriticalPath,
    /// First-in-first-out by task id — what an unplanned team does.
    Fifo,
    /// Heaviest task first, ignoring structure.
    LongestTask,
}

/// One placed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// Which processor runs it.
    pub proc: usize,
    /// Start time.
    pub start: u64,
    /// Finish time (start + weight).
    pub finish: u64,
}

/// A complete schedule of a graph on `p` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of processors.
    pub procs: usize,
    /// Placements in the order they were scheduled.
    pub placements: Vec<Placement>,
    /// Completion time.
    pub makespan: u64,
}

impl Schedule {
    /// The placement of a given task.
    pub fn placement(&self, task: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == task)
    }

    /// Total busy time of one processor.
    pub fn proc_busy(&self, proc: usize) -> u64 {
        self.placements
            .iter()
            .filter(|p| p.proc == proc)
            .map(|p| p.finish - p.start)
            .sum()
    }

    /// Idle time of one processor within the makespan.
    pub fn proc_idle(&self, proc: usize) -> u64 {
        self.makespan - self.proc_busy(proc)
    }

    /// Average processor utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let busy: u64 = (0..self.procs).map(|p| self.proc_busy(p)).sum();
        busy as f64 / (self.makespan * self.procs as u64) as f64
    }

    /// Check the schedule against its graph: every task placed exactly
    /// once, processors never overlap, dependencies respected.
    pub fn validate(&self, g: &TaskGraph) -> Result<(), String> {
        if self.placements.len() != g.len() {
            return Err(format!(
                "{} placements for {} tasks",
                self.placements.len(),
                g.len()
            ));
        }
        for t in g.ids() {
            let pl = self
                .placement(t)
                .ok_or_else(|| format!("task {t} not placed"))?;
            if pl.finish - pl.start != g.weight(t) {
                return Err(format!("task {t} placed with wrong duration"));
            }
            for pre in g.preds(t) {
                let pp = self
                    .placement(pre)
                    .ok_or_else(|| format!("pred {pre} not placed"))?;
                if pp.finish > pl.start {
                    return Err(format!(
                        "dependency violated: {pre} finishes at {} but {t} starts at {}",
                        pp.finish, pl.start
                    ));
                }
            }
        }
        // Processor exclusivity.
        for proc in 0..self.procs {
            let mut spans: Vec<(u64, u64)> = self
                .placements
                .iter()
                .filter(|p| p.proc == proc)
                .map(|p| (p.start, p.finish))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[0].1 > w[1].0 {
                    return Err(format!("processor {proc} double-booked"));
                }
            }
        }
        // Makespan consistency.
        let max_finish = self.placements.iter().map(|p| p.finish).max().unwrap_or(0);
        if max_finish != self.makespan {
            return Err(format!(
                "makespan {} != max finish {max_finish}",
                self.makespan
            ));
        }
        Ok(())
    }

    /// Export placements as CSV (`task,label,proc,start,finish`) in
    /// schedule order.
    pub fn to_csv(&self, g: &TaskGraph) -> String {
        let mut out = String::from("task,label,proc,start,finish\n");
        for p in &self.placements {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                p.task.index(),
                g.label(p.task),
                p.proc,
                p.start,
                p.finish
            );
        }
        out
    }

    /// Render the schedule as an SVG Gantt (one lane per processor, task
    /// labels inside the bars). Pure text output for handouts.
    pub fn svg_gantt(&self, g: &TaskGraph, width_px: u32) -> String {
        assert!(width_px > 0);
        let total = self.makespan.max(1) as f64;
        let row_h = 26u32;
        let label_w = 48u32;
        let height = row_h * (self.procs as u32 + 1);
        let scale = |t: u64| label_w as f64 + (t as f64 / total) * (width_px - label_w) as f64;
        let palette = ["#4a90d9", "#50b36a", "#e2a93b", "#c75d5d", "#8a6fc9", "#4fb3b3"];
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" \
             viewBox=\"0 0 {width_px} {height}\" font-family=\"monospace\" font-size=\"11\">\n"
        );
        for proc in 0..self.procs {
            let y = row_h * proc as u32 + 4;
            let _ = writeln!(out, "  <text x=\"4\" y=\"{}\">P{proc}</text>", y + 13);
            for p in self.placements.iter().filter(|p| p.proc == proc) {
                let x0 = scale(p.start);
                let w = (scale(p.finish) - x0).max(1.0);
                let fill = palette[p.task.index() % palette.len()];
                let _ = writeln!(
                    out,
                    "  <rect x=\"{x0:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"18\" \
                     fill=\"{fill}\" stroke=\"#333\" stroke-width=\"0.5\"/>"
                );
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{}\" fill=\"#fff\">{}</text>",
                    x0 + 3.0,
                    y + 13,
                    g.label(p.task)
                );
            }
        }
        let _ = writeln!(
            out,
            "  <text x=\"{label_w}\" y=\"{}\">makespan {}</text>",
            height - 6,
            self.makespan
        );
        out.push_str("</svg>\n");
        out
    }

    /// Render the schedule as an *animated* SVG: task bars sweep in at
    /// their scheduled moments (SMIL animation, `secs_per_unit` wall
    /// seconds per weight unit). This is our stand-in for the paper's
    /// reference \[34\] — the Webster instructor's "custom-created
    /// animations to visualize schedules with different numbers of
    /// processors".
    pub fn animated_svg(&self, g: &TaskGraph, width_px: u32, secs_per_unit: f64) -> String {
        assert!(width_px > 0 && secs_per_unit > 0.0);
        let total = self.makespan.max(1) as f64;
        let row_h = 26u32;
        let label_w = 48u32;
        let height = row_h * (self.procs as u32 + 1);
        let scale = |t: u64| label_w as f64 + (t as f64 / total) * (width_px - label_w) as f64;
        let palette = ["#4a90d9", "#50b36a", "#e2a93b", "#c75d5d", "#8a6fc9", "#4fb3b3"];
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" \
             viewBox=\"0 0 {width_px} {height}\" font-family=\"monospace\" font-size=\"11\">\n"
        );
        for proc in 0..self.procs {
            let y = row_h * proc as u32 + 4;
            let _ = writeln!(out, "  <text x=\"4\" y=\"{}\">P{proc}</text>", y + 13);
            for p in self.placements.iter().filter(|p| p.proc == proc) {
                let x0 = scale(p.start);
                let w = (scale(p.finish) - x0).max(1.0);
                let fill = palette[p.task.index() % palette.len()];
                let begin = p.start as f64 * secs_per_unit;
                let dur = ((p.finish - p.start) as f64 * secs_per_unit).max(0.01);
                let _ = writeln!(
                    out,
                    "  <rect x=\"{x0:.1}\" y=\"{y}\" width=\"0\" height=\"18\" \
                     fill=\"{fill}\" stroke=\"#333\" stroke-width=\"0.5\">\
                     <animate attributeName=\"width\" begin=\"{begin:.2}s\" \
                     dur=\"{dur:.2}s\" from=\"0\" to=\"{w:.1}\" fill=\"freeze\"/></rect>"
                );
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{}\" fill=\"#fff\" opacity=\"0\">{}\
                     <animate attributeName=\"opacity\" begin=\"{begin:.2}s\" dur=\"0.01s\" \
                     from=\"0\" to=\"1\" fill=\"freeze\"/></text>",
                    x0 + 3.0,
                    y + 13,
                    g.label(p.task)
                );
            }
        }
        out.push_str("</svg>\n");
        out
    }

    /// ASCII Gantt: one row per processor, labels at start positions.
    pub fn gantt(&self, g: &TaskGraph, width: usize) -> String {
        assert!(width > 0);
        let total = self.makespan.max(1);
        let mut out = String::new();
        for proc in 0..self.procs {
            let mut row = vec![b'.'; width];
            for p in self.placements.iter().filter(|p| p.proc == proc) {
                let a = (p.start as usize * width) / total as usize;
                let b = (((p.finish as usize) * width) / total as usize).max(a + 1);
                let label = g.label(p.task).as_bytes();
                for (k, slot) in row[a..b.min(width)].iter_mut().enumerate() {
                    *slot = if k < label.len() { label[k] } else { b'#' };
                }
            }
            let _ = writeln!(out, "P{proc} |{}|", String::from_utf8_lossy(&row));
        }
        let _ = writeln!(out, "    makespan = {}", self.makespan);
        out
    }
}

/// Schedule `g` on `p` processors with the given priority. Deterministic:
/// ties break by task id, then by processor index.
pub fn list_schedule(g: &TaskGraph, p: usize, priority: Priority) -> Schedule {
    assert!(p > 0, "need at least one processor");
    // Priority ranks (higher = schedule sooner).
    let rank: Vec<u64> = match priority {
        Priority::CriticalPath => downward_rank(g),
        Priority::Fifo => g.ids().map(|t| u64::MAX - u64::from(t.0)).collect(),
        Priority::LongestTask => g.ids().map(|t| g.weight(t)).collect(),
    };

    let n = g.len();
    let mut placed: Vec<Option<Placement>> = vec![None; n];
    let mut proc_free: Vec<u64> = vec![0; p];
    let mut scheduled = 0usize;
    let mut placements = Vec::with_capacity(n);

    while scheduled < n {
        // Ready = unplaced with all preds placed.
        let candidate = g
            .ids()
            .filter(|t| placed[t.index()].is_none())
            .filter(|t| g.preds(*t).all(|pr| placed[pr.index()].is_some()))
            .max_by_key(|t| (rank[t.index()], std::cmp::Reverse(t.0)))
            .expect("acyclic graph always has a ready task");
        let ready_at = g
            .preds(candidate)
            .map(|pr| placed[pr.index()].map_or(0, |p| p.finish))
            .max()
            .unwrap_or(0);
        // Earliest-start processor (`p > 0` is asserted above, so the
        // minimum always exists).
        let Some((proc, &free)) = proc_free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f.max(ready_at), i))
        else {
            break;
        };
        let start = free.max(ready_at);
        let finish = start + g.weight(candidate);
        let pl = Placement {
            task: candidate,
            proc,
            start,
            finish,
        };
        placed[candidate.index()] = Some(pl);
        proc_free[proc] = finish;
        placements.push(pl);
        scheduled += 1;
    }
    let makespan = placements.iter().map(|p| p.finish).max().unwrap_or(0);
    Schedule {
        procs: p,
        placements,
        makespan,
    }
}

/// Downward rank: task weight plus the heaviest chain below it — the HLF
/// priority.
fn downward_rank(g: &TaskGraph) -> Vec<u64> {
    let order = g.topo_order();
    let mut rank = vec![0u64; g.len()];
    for &t in order.iter().rev() {
        let below = g.succs(t).map(|s| rank[s.index()]).max().unwrap_or(0);
        rank[t.index()] = g.weight(t) + below;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork_join() -> TaskGraph {
        // a → {b,c,d} → e, weights 10 each.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 10);
        let b = g.add_task("b", 10);
        let c = g.add_task("c", 10);
        let d = g.add_task("d", 10);
        let e = g.add_task("e", 10);
        for m in [b, c, d] {
            g.add_dep(a, m).unwrap();
            g.add_dep(m, e).unwrap();
        }
        g
    }

    #[test]
    fn single_proc_serializes() {
        let g = fork_join();
        let s = list_schedule(&g, 1, Priority::CriticalPath);
        s.validate(&g).unwrap();
        assert_eq!(s.makespan, 50);
        assert_eq!(s.proc_busy(0), 50);
        assert_eq!(s.proc_idle(0), 0);
    }

    #[test]
    fn three_procs_exploit_fork() {
        let g = fork_join();
        let s = list_schedule(&g, 3, Priority::CriticalPath);
        s.validate(&g).unwrap();
        // a(10) then b,c,d in parallel (10) then e(10).
        assert_eq!(s.makespan, 30);
    }

    #[test]
    fn extra_procs_do_not_beat_span() {
        let g = fork_join();
        let s = list_schedule(&g, 16, Priority::CriticalPath);
        s.validate(&g).unwrap();
        assert_eq!(s.makespan, analysis::span(&g));
    }

    #[test]
    fn schedule_within_theory_bounds() {
        let g = fork_join();
        for p in 1..=6 {
            for pr in [Priority::CriticalPath, Priority::Fifo, Priority::LongestTask] {
                let s = list_schedule(&g, p, pr);
                s.validate(&g).unwrap();
                assert!(s.makespan >= analysis::makespan_lower_bound(&g, p));
                assert!(s.makespan <= analysis::greedy_upper_bound(&g, p));
            }
        }
    }

    #[test]
    fn critical_path_priority_beats_or_ties_fifo_on_skewed_graph() {
        // Two chains: long chain (30,30) and short tasks; CP priority should
        // start the long chain first.
        let mut g = TaskGraph::new();
        let a1 = g.add_task("a1", 30);
        let a2 = g.add_task("a2", 30);
        g.add_dep(a1, a2).unwrap();
        for i in 0..4 {
            g.add_task(format!("s{i}"), 10);
        }
        let cp = list_schedule(&g, 2, Priority::CriticalPath);
        let ff = list_schedule(&g, 2, Priority::Fifo);
        cp.validate(&g).unwrap();
        ff.validate(&g).unwrap();
        assert!(cp.makespan <= ff.makespan);
        assert_eq!(cp.makespan, 60);
    }

    #[test]
    fn utilization_and_idle() {
        let g = fork_join();
        let s = list_schedule(&g, 3, Priority::CriticalPath);
        // Work 50, makespan 30, 3 procs → 50/90.
        assert!((s.utilization() - 50.0 / 90.0).abs() < 1e-12);
        let total_idle: u64 = (0..3).map(|p| s.proc_idle(p)).sum();
        assert_eq!(total_idle, 40);
    }

    #[test]
    fn gantt_renders_rows() {
        let g = fork_join();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        let chart = s.gantt(&g, 40);
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains("P0 |"));
        assert!(chart.contains("makespan"));
    }

    #[test]
    fn animated_svg_has_timed_sweeps() {
        let g = fork_join();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        let svg = s.animated_svg(&g, 640, 0.1);
        assert_eq!(svg.matches("<animate attributeName=\"width\"").count(), 5);
        assert!(svg.contains("begin=\"0.00s\""));
        assert!(svg.contains("fill=\"freeze\""));
        // A task starting at weight-10 begins at 1.0s with 0.1 s/unit.
        assert!(svg.contains("begin=\"1.00s\""), "{svg}");
    }

    #[test]
    fn svg_gantt_has_a_bar_per_task() {
        let g = fork_join();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        let svg = s.svg_gantt(&g, 640);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains(">a<") || svg.contains(">a</text>"));
        assert!(svg.contains("makespan"));
    }

    #[test]
    fn csv_export_lists_every_placement() {
        let g = fork_join();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        let csv = s.to_csv(&g);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "task,label,proc,start,finish");
        assert_eq!(lines.len(), 6); // header + 5 tasks
        assert!(lines.iter().any(|l| l.contains(",a,")));
    }

    #[test]
    fn validate_catches_tampering() {
        let g = fork_join();
        let mut s = list_schedule(&g, 2, Priority::CriticalPath);
        s.placements[0].start += 1; // break duration
        assert!(s.validate(&g).is_err());
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = TaskGraph::new();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        s.validate(&g).unwrap();
        assert_eq!(s.makespan, 0);
        assert_eq!(s.utilization(), 1.0);
    }
}
