//! The weighted task DAG.

use std::collections::BTreeSet;
use std::fmt;

/// Identifies a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Task {
    label: String,
    weight: u64,
}

/// A directed acyclic graph of labeled, weighted tasks.
///
/// Weights are integer work units (milliseconds in the activity model —
/// the time to color that element of the flag). Edges point from a
/// prerequisite to its dependent: `a → b` means *b must wait for a*, e.g.
/// "blue field" → "white diagonals" for the flag of Great Britain.
///
/// Edges may be inserted in any order; acyclicity is checked on insertion
/// (an edge that would close a cycle is rejected with an error).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    succs: Vec<BTreeSet<TaskId>>,
    preds: Vec<BTreeSet<TaskId>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a task with a display label and a work weight, returning its id.
    pub fn add_task(&mut self, label: impl Into<String>, weight: u64) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            label: label.into(),
            weight,
        });
        self.succs.push(BTreeSet::new());
        self.preds.push(BTreeSet::new());
        id
    }

    /// Add a dependency edge `from → to` (to waits for from). Fails if the
    /// edge would create a cycle; duplicates are ignored. Self-edges are
    /// cycles by definition.
    pub fn add_dep(&mut self, from: TaskId, to: TaskId) -> Result<(), String> {
        assert!(from.index() < self.len() && to.index() < self.len(), "unknown task id");
        if from == to || self.reaches(to, from) {
            return Err(format!("edge {from} -> {to} would create a cycle"));
        }
        self.succs[from.index()].insert(to);
        self.preds[to.index()].insert(from);
        Ok(())
    }

    /// Whether `from` reaches `to` via directed edges (DFS).
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.len()];
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            stack.extend(self.succs[t.index()].iter().copied());
        }
        false
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// A task's label.
    pub fn label(&self, id: TaskId) -> &str {
        &self.tasks[id.index()].label
    }

    /// A task's work weight.
    pub fn weight(&self, id: TaskId) -> u64 {
        self.tasks[id.index()].weight
    }

    /// Find a task by exact label.
    pub fn find(&self, label: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.label == label)
            .map(|i| TaskId(i as u32))
    }

    /// All task ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = TaskId> + 'static {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Direct successors (dependents) of a task.
    pub fn succs(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[id.index()].iter().copied()
    }

    /// Direct predecessors (prerequisites) of a task.
    pub fn preds(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[id.index()].iter().copied()
    }

    /// All edges `(from, to)`.
    pub fn edges(&self) -> Vec<(TaskId, TaskId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for id in self.ids() {
            for s in self.succs(id) {
                out.push((id, s));
            }
        }
        out
    }

    /// Tasks with no prerequisites.
    pub fn roots(&self) -> Vec<TaskId> {
        self.ids().filter(|t| self.preds[t.index()].is_empty()).collect()
    }

    /// Tasks with no dependents.
    pub fn leaves(&self) -> Vec<TaskId> {
        self.ids().filter(|t| self.succs[t.index()].is_empty()).collect()
    }

    /// A topological order (Kahn's algorithm; ties broken by task id so the
    /// order is deterministic).
    pub fn topo_order(&self) -> Vec<TaskId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(BTreeSet::len).collect();
        let mut ready: BTreeSet<TaskId> = self
            .ids()
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut out = Vec::with_capacity(self.len());
        while let Some(&t) = ready.iter().next() {
            ready.remove(&t);
            out.push(t);
            for s in self.succs(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.insert(s);
                }
            }
        }
        debug_assert_eq!(out.len(), self.len(), "graph has a cycle");
        out
    }

    /// The transitive closure as a set of `(from, to)` pairs.
    pub fn transitive_closure(&self) -> BTreeSet<(TaskId, TaskId)> {
        let mut closure = BTreeSet::new();
        // Reverse topological order: successors' reach sets are complete.
        let order = self.topo_order();
        let mut reach: Vec<BTreeSet<TaskId>> = vec![BTreeSet::new(); self.len()];
        for &t in order.iter().rev() {
            let mut r = BTreeSet::new();
            for s in self.succs(t) {
                r.insert(s);
                r.extend(reach[s.index()].iter().copied());
            }
            for &to in &r {
                closure.insert((t, to));
            }
            reach[t.index()] = r;
        }
        closure
    }

    /// A new graph with the same tasks but the transitive reduction of the
    /// edges — the minimal graph with the same reachability. This is the
    /// form the paper draws in Fig. 9 (stripes → triangle → dot, with no
    /// redundant stripe → dot edges).
    pub fn transitive_reduction(&self) -> TaskGraph {
        let mut out = TaskGraph::new();
        for t in &self.tasks {
            out.add_task(t.label.clone(), t.weight);
        }
        for (from, to) in self.edges() {
            // Keep from→to only if no other successor of `from` reaches `to`.
            let redundant = self
                .succs(from)
                .filter(|&m| m != to)
                .any(|m| self.reaches(m, to));
            if !redundant {
                out.add_dep(from, to).expect("reduction preserves acyclicity");
            }
        }
        out
    }

    /// GraphViz DOT output with labels and weights.
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = format!("digraph \"{name}\" {{\n  rankdir=TB;\n");
        for id in self.ids() {
            s.push_str(&format!(
                "  {} [label=\"{} ({})\"];\n",
                id,
                self.label(id),
                self.weight(id)
            ));
        }
        for (a, b) in self.edges() {
            s.push_str(&format!("  {a} -> {b};\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: a → b, a → c, b → d, c → d.
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 10);
        let b = g.add_task("b", 20);
        let c = g.add_task("c", 30);
        let d = g.add_task("d", 40);
        g.add_dep(a, b).unwrap();
        g.add_dep(a, c).unwrap();
        g.add_dep(b, d).unwrap();
        g.add_dep(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn construction_and_queries() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.leaves(), vec![d]);
        assert_eq!(g.find("c"), Some(c));
        assert_eq!(g.find("zzz"), None);
        assert_eq!(g.label(b), "b");
        assert_eq!(g.weight(d), 40);
    }

    #[test]
    fn cycle_rejected() {
        let (mut g, [a, _, _, d]) = diamond();
        assert!(g.add_dep(d, a).is_err());
        assert!(g.add_dep(a, a).is_err());
        // Graph unchanged.
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let (mut g, [a, b, ..]) = diamond();
        g.add_dep(a, b).unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn topo_order_respects_deps() {
        let (g, _) = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), 4);
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for (from, to) in g.edges() {
            assert!(pos(from) < pos(to));
        }
    }

    #[test]
    fn reaches_is_transitive() {
        let (g, [a, b, _, d]) = diamond();
        assert!(g.reaches(a, d));
        assert!(g.reaches(b, d));
        assert!(!g.reaches(d, a));
        assert!(!g.reaches(b, TaskId(2))); // b does not reach c
        assert!(g.reaches(a, a));
    }

    #[test]
    fn closure_counts_paths() {
        let (g, [a, b, c, d]) = diamond();
        let closure = g.transitive_closure();
        assert_eq!(closure.len(), 5); // ab ac ad bd cd
        assert!(closure.contains(&(a, d)));
        assert!(!closure.contains(&(b, c)));
    }

    #[test]
    fn reduction_removes_redundant_edge() {
        let (mut g, [a, _, _, d]) = diamond();
        // Add the redundant a → d edge; reduction must strip it.
        g.add_dep(a, d).unwrap();
        assert_eq!(g.edge_count(), 5);
        let red = g.transitive_reduction();
        assert_eq!(red.edge_count(), 4);
        assert_eq!(red.transitive_closure(), g.transitive_closure());
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let (g, _) = diamond();
        let dot = g.to_dot("diamond");
        assert!(dot.contains("digraph \"diamond\""));
        assert!(dot.contains("t0 [label=\"a (10)\"]"));
        assert!(dot.contains("t0 -> t1;"));
    }
}
