//! Ergonomic graph construction by label.
//!
//! The rest of the crate works with [`TaskId`](crate::TaskId)s; humans (and the CLI)
//! think in labels. The builder accepts tasks and edges by label, in any
//! order (edges may name tasks that arrive later), and reports all
//! problems at build time.

use crate::graph::TaskGraph;

/// Accumulates labeled tasks and label-to-label edges.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    tasks: Vec<(String, u64)>,
    edges: Vec<(String, String)>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Add a task (label must be unique, case-insensitively).
    pub fn task(mut self, label: impl Into<String>, weight: u64) -> Self {
        self.tasks.push((label.into(), weight));
        self
    }

    /// Add a dependency `from → to` by label (order of calls irrelevant).
    pub fn dep(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.edges.push((from.into(), to.into()));
        self
    }

    /// Build, reporting duplicate labels, unknown edge endpoints, or
    /// cycles.
    pub fn build(self) -> Result<TaskGraph, String> {
        let mut g = TaskGraph::new();
        for (label, weight) in &self.tasks {
            if g.find(label).is_some()
                || g.ids().any(|t| g.label(t).eq_ignore_ascii_case(label))
            {
                return Err(format!("duplicate task label {label:?}"));
            }
            g.add_task(label.clone(), *weight);
        }
        for (from, to) in &self.edges {
            let find = |label: &str| {
                g.ids()
                    .find(|&t| g.label(t).eq_ignore_ascii_case(label))
                    .ok_or_else(|| format!("edge references unknown task {label:?}"))
            };
            let (f, t) = (find(from)?, find(to)?);
            g.add_dep(f, t)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn builds_fig9_by_label() {
        let g = GraphBuilder::new()
            .task("black stripe", 48)
            .task("white stripe", 48)
            .task("green stripe", 48)
            .task("red triangle", 30)
            .task("white dot", 2)
            .dep("black stripe", "red triangle")
            .dep("white stripe", "red triangle")
            .dep("green stripe", "red triangle")
            .dep("red triangle", "white dot")
            .build()
            .unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(analysis::span(&g), 48 + 30 + 2);
    }

    #[test]
    fn edges_may_precede_tasks_in_call_order() {
        // dep() before the second task() — still fine, edges resolve at
        // build.
        let g = GraphBuilder::new()
            .task("a", 1)
            .dep("a", "b")
            .task("b", 2)
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn labels_resolve_case_insensitively() {
        let g = GraphBuilder::new()
            .task("Blue Field", 10)
            .task("Red Cross", 5)
            .dep("blue field", "RED CROSS")
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors() {
        assert!(GraphBuilder::new()
            .task("a", 1)
            .task("A", 2)
            .build()
            .unwrap_err()
            .contains("duplicate"));
        assert!(GraphBuilder::new()
            .task("a", 1)
            .dep("a", "ghost")
            .build()
            .unwrap_err()
            .contains("unknown task"));
        assert!(GraphBuilder::new()
            .task("a", 1)
            .task("b", 1)
            .dep("a", "b")
            .dep("b", "a")
            .build()
            .unwrap_err()
            .contains("cycle"));
    }
}
