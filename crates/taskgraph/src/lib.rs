//! # flagsim-taskgraph
//!
//! Dependency graphs for layered flag coloring — and for anything else.
//!
//! The paper's Knox follow-up activity formalizes what students discover
//! when coloring the flag of Great Britain in layers: "vertices are tasks
//! and directed edges denote dependencies". This crate provides that
//! formalism as a reusable substrate:
//!
//! * [`TaskGraph`] — a weighted DAG with labeled tasks: construction,
//!   cycle detection, topological orders, transitive closure/reduction.
//! * [`analysis`] — work, span (critical path), the work/span laws, and
//!   the parallelism bound `work / span`.
//! * [`schedule`] — deterministic list scheduling onto `p` processors with
//!   pluggable priorities (critical-path/HLF, FIFO, longest-task), plus
//!   schedule validation and an ASCII Gantt.
//! * [`grade`] — the Section V-C rubric for classifying student-drawn
//!   dependency graphs (perfect / mostly correct / linear chain /
//!   incomplete / no learning), generalized over a reference graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod generators;
pub mod grade;
pub mod graph;
pub mod schedule;

pub use builder::GraphBuilder;
pub use grade::{classify, GradeOptions, SubmissionGrade, SubmittedGraph};
pub use graph::{TaskGraph, TaskId};
pub use schedule::{list_schedule, Priority, Schedule};
