//! Synthetic DAG generators for tests, benches and demonstrations.
//!
//! Beyond the flags' own graphs, the scheduling discussion benefits from
//! classic shapes: chains (no parallelism), independent sets (perfect
//! parallelism), fork–joins, layered random DAGs, and series–parallel
//! compositions. All generators are deterministic (seeded xorshift — no
//! RNG dependency in this crate).

use crate::graph::{TaskGraph, TaskId};

/// A tiny deterministic xorshift for the random generators.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // Splitmix-style scramble so adjacent seeds diverge (a plain
        // `seed | 1` would alias 42 and 43).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift((z ^ (z >> 31)) | 1)
    }
    fn next(&mut self) -> u64 {
        let x = &mut self.0;
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A chain of `n` tasks with the given weights cycle.
pub fn chain(n: usize, weights: &[u64]) -> TaskGraph {
    assert!(n > 0 && !weights.is_empty());
    let mut g = TaskGraph::new();
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let t = g.add_task(format!("c{i}"), weights[i % weights.len()]);
        if let Some(p) = prev {
            g.add_dep(p, t).expect("forward edge");
        }
        prev = Some(t);
    }
    g
}

/// `n` independent tasks.
pub fn independent(n: usize, weights: &[u64]) -> TaskGraph {
    assert!(n > 0 && !weights.is_empty());
    let mut g = TaskGraph::new();
    for i in 0..n {
        g.add_task(format!("i{i}"), weights[i % weights.len()]);
    }
    g
}

/// Fork–join: a source, `width` parallel tasks, a sink.
pub fn fork_join(width: usize, src_w: u64, mid_w: u64, sink_w: u64) -> TaskGraph {
    assert!(width > 0);
    let mut g = TaskGraph::new();
    let src = g.add_task("fork", src_w);
    let sink_pred: Vec<TaskId> = (0..width)
        .map(|i| {
            let t = g.add_task(format!("branch{i}"), mid_w);
            g.add_dep(src, t).expect("forward");
            t
        })
        .collect();
    let sink = g.add_task("join", sink_w);
    for t in sink_pred {
        g.add_dep(t, sink).expect("forward");
    }
    g
}

/// A layered random DAG: `layers` levels of `width` tasks; each task
/// depends on 1..=`fan_in` random tasks of the previous level. Weights in
/// `1..=max_weight`. Deterministic in `seed`.
pub fn layered_random(
    layers: usize,
    width: usize,
    fan_in: usize,
    max_weight: u64,
    seed: u64,
) -> TaskGraph {
    assert!(layers > 0 && width > 0 && fan_in > 0 && max_weight > 0);
    let mut rng = XorShift::new(seed);
    let mut g = TaskGraph::new();
    let mut prev_level: Vec<TaskId> = Vec::new();
    for l in 0..layers {
        let level: Vec<TaskId> = (0..width)
            .map(|i| g.add_task(format!("l{l}t{i}"), 1 + rng.below(max_weight)))
            .collect();
        if !prev_level.is_empty() {
            for &t in &level {
                let k = 1 + rng.below(fan_in as u64) as usize;
                for _ in 0..k {
                    let p = prev_level[rng.below(prev_level.len() as u64) as usize];
                    let _ = g.add_dep(p, t); // duplicates are no-ops
                }
            }
        }
        prev_level = level;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::{list_schedule, Priority};

    #[test]
    fn chain_has_no_parallelism() {
        let g = chain(10, &[5]);
        assert_eq!(g.len(), 10);
        assert_eq!(analysis::span(&g), 50);
        assert!((analysis::parallelism(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_perfectly_parallel() {
        let g = independent(8, &[5]);
        assert_eq!(g.edge_count(), 0);
        assert!((analysis::parallelism(&g) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(6, 1, 10, 1);
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(analysis::span(&g), 12);
        assert_eq!(analysis::work(&g), 62);
    }

    #[test]
    fn layered_random_is_schedulable_and_deterministic() {
        let a = layered_random(5, 6, 3, 50, 42);
        let b = layered_random(5, 6, 3, 50, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        // Every non-root level task has at least one predecessor.
        for t in a.ids() {
            let label = a.label(t).to_owned();
            if !label.starts_with("l0") {
                assert!(a.preds(t).count() >= 1, "{label}");
            }
        }
        for p in [1, 2, 4] {
            let s = list_schedule(&a, p, Priority::CriticalPath);
            s.validate(&a).unwrap();
        }
        // Different seeds differ.
        assert_ne!(a, layered_random(5, 6, 3, 50, 43));
    }
}
