//! Work/span analysis.
//!
//! The quantities behind the discussion the instructor leads after the
//! activity: how much *total* coloring there is (work), the longest chain
//! of dependent coloring steps (span / critical path), and what those two
//! numbers say about the best possible completion time on `p` students —
//! the work law `T_p ≥ work / p` and the span law `T_p ≥ span`.

use crate::graph::{TaskGraph, TaskId};

/// Total work: the sum of all task weights.
pub fn work(g: &TaskGraph) -> u64 {
    g.ids().map(|t| g.weight(t)).sum()
}

/// Span (critical-path length): the weight of the heaviest dependency
/// chain. Zero for an empty graph.
pub fn span(g: &TaskGraph) -> u64 {
    critical_path(g).1
}

/// The critical path itself and its total weight: the chain of tasks that
/// lower-bounds every schedule. Ties are broken deterministically (smaller
/// task ids win).
pub fn critical_path(g: &TaskGraph) -> (Vec<TaskId>, u64) {
    if g.is_empty() {
        return (Vec::new(), 0);
    }
    let order = g.topo_order();
    // dist[t] = weight of heaviest path ending at t (inclusive).
    let mut dist: Vec<u64> = vec![0; g.len()];
    let mut best_pred: Vec<Option<TaskId>> = vec![None; g.len()];
    for &t in &order {
        let own = g.weight(t);
        let mut best = 0;
        let mut pred = None;
        for p in g.preds(t) {
            if dist[p.index()] > best {
                best = dist[p.index()];
                pred = Some(p);
            }
        }
        dist[t.index()] = best + own;
        best_pred[t.index()] = pred;
    }
    let end = g
        .ids()
        .max_by_key(|t| (dist[t.index()], std::cmp::Reverse(t.0)))
        .expect("nonempty");
    let total = dist[end.index()];
    let mut path = vec![end];
    let mut cur = end;
    while let Some(p) = best_pred[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    (path, total)
}

/// The maximum useful parallelism `work / span` — adding students beyond
/// this cannot help (the Knox lesson: the Union Jack's layer chain caps
/// speedup no matter the team size). Returns `f64::INFINITY` for an empty
/// graph with zero span.
pub fn parallelism(g: &TaskGraph) -> f64 {
    let s = span(g);
    if s == 0 {
        return f64::INFINITY;
    }
    work(g) as f64 / s as f64
}

/// Lower bound on any `p`-processor schedule: `max(⌈work/p⌉, span)` — the
/// work and span laws combined.
pub fn makespan_lower_bound(g: &TaskGraph, p: usize) -> u64 {
    assert!(p > 0, "need at least one processor");
    let w = work(g);
    let per_proc = w.div_ceil(p as u64);
    per_proc.max(span(g))
}

/// Upper bound achieved by any greedy schedule (Graham/Brent):
/// `work/p + span`. A sanity envelope for the list scheduler.
pub fn greedy_upper_bound(g: &TaskGraph, p: usize) -> u64 {
    assert!(p > 0, "need at least one processor");
    work(g) / p as u64 + span(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(weights: &[u64]) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids: Vec<TaskId> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| g.add_task(format!("t{i}"), w))
            .collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1]).unwrap();
        }
        g
    }

    fn independent(weights: &[u64]) -> TaskGraph {
        let mut g = TaskGraph::new();
        for (i, &w) in weights.iter().enumerate() {
            g.add_task(format!("t{i}"), w);
        }
        g
    }

    #[test]
    fn chain_span_equals_work() {
        let g = chain(&[5, 10, 15]);
        assert_eq!(work(&g), 30);
        assert_eq!(span(&g), 30);
        assert!((parallelism(&g) - 1.0).abs() < 1e-12);
        let (path, total) = critical_path(&g);
        assert_eq!(total, 30);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn independent_tasks_span_is_max() {
        let g = independent(&[5, 10, 15]);
        assert_eq!(work(&g), 30);
        assert_eq!(span(&g), 15);
        assert!((parallelism(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_critical_path_picks_heavier_branch() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 10);
        let b = g.add_task("b", 20);
        let c = g.add_task("c", 30);
        let d = g.add_task("d", 40);
        g.add_dep(a, b).unwrap();
        g.add_dep(a, c).unwrap();
        g.add_dep(b, d).unwrap();
        g.add_dep(c, d).unwrap();
        let (path, total) = critical_path(&g);
        assert_eq!(total, 80); // a + c + d
        assert_eq!(path, vec![a, c, d]);
        assert_eq!(work(&g), 100);
    }

    #[test]
    fn bounds_behave() {
        let g = independent(&[10, 10, 10, 10]);
        assert_eq!(makespan_lower_bound(&g, 1), 40);
        assert_eq!(makespan_lower_bound(&g, 2), 20);
        assert_eq!(makespan_lower_bound(&g, 8), 10); // span dominates
        assert!(greedy_upper_bound(&g, 2) >= makespan_lower_bound(&g, 2));
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(work(&g), 0);
        assert_eq!(span(&g), 0);
        assert!(parallelism(&g).is_infinite());
        assert_eq!(critical_path(&g).0.len(), 0);
    }

    #[test]
    fn zero_weight_tasks_do_not_break_path() {
        let g = chain(&[0, 0, 7]);
        assert_eq!(span(&g), 7);
    }
}
