//! Grading student-drawn dependency graphs — the Section V-C rubric.
//!
//! At Knox, students drew a dependency graph for coloring the flag of
//! Jordan, and the submissions were classified as: **perfect** (34%),
//! **mostly correct** (24% — split the red triangle in two, merged all
//! stripes into one task, or conveyed the dependencies spatially without
//! arrows), **linear chain** (the most common error: thinking in
//! sequential code), **incomplete**, or **no learning** (drew the flag or
//! wrote code instead). This module implements that rubric generically:
//! given a reference [`TaskGraph`] and per-flag allowances (optional
//! tasks, allowed splits/merges), it classifies any [`SubmittedGraph`].

use crate::graph::TaskGraph;
use std::collections::{BTreeMap, BTreeSet};

/// A student's submission, as transcribed from paper: task labels in their
/// own words (matched case-insensitively) and arrows between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmittedGraph {
    /// Task labels as written.
    pub tasks: Vec<String>,
    /// Arrows `(from, to)` as indices into `tasks`.
    pub edges: Vec<(usize, usize)>,
    /// The student conveyed ordering spatially (layout implies layers) but
    /// omitted the arrows — one real submission did this and was counted
    /// mostly correct.
    pub spatial_only: bool,
    /// Whether the drawing was finished (a couple of real submissions
    /// weren't).
    pub complete: bool,
}

impl SubmittedGraph {
    /// A finished, arrow-bearing submission.
    pub fn new(tasks: Vec<String>, edges: Vec<(usize, usize)>) -> Self {
        SubmittedGraph {
            tasks,
            edges,
            spatial_only: false,
            complete: true,
        }
    }
}

/// Flag-specific grading allowances.
#[derive(Debug, Clone, Default)]
pub struct GradeOptions {
    /// Reference tasks that may be omitted entirely (Jordan's white stripe:
    /// "the background is initially white so a white stripe can be achieved
    /// by not drawing anything").
    pub optional_tasks: Vec<String>,
    /// Allowed task splits: `(canonical, parts)` — a student may replace
    /// `canonical` with the given part labels (Jordan's red triangle split
    /// into two right triangles). Using a split caps the grade at
    /// mostly-correct.
    pub splits: Vec<(String, Vec<String>)>,
    /// Allowed task merges: `(merged label, members)` — one submitted task
    /// standing for several reference tasks ("stripes" for all three).
    /// Using a merge caps the grade at mostly-correct.
    pub merges: Vec<(String, Vec<String>)>,
}

/// The mostly-correct sub-variants observed in Section V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MostlyVariant {
    /// Split a reference task into allowed parts (e.g. the red triangle
    /// into two right triangles) without refining the dependencies.
    SplitTask,
    /// Merged several reference tasks into one (e.g. one task for all the
    /// stripes).
    MergedTasks,
    /// Correct grouping and ordering conveyed spatially, arrows omitted.
    SpatialNoArrows,
}

/// The rubric's outcome for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubmissionGrade {
    /// Dependency structure exactly matches the reference (up to optional
    /// task omission).
    Perfect,
    /// Correct understanding with an allowed deviation.
    MostlyCorrect(MostlyVariant),
    /// A single sequential chain — "they either thought about the graph in
    /// terms of sequential code or misunderstood the meaning of a
    /// dependency".
    LinearChain,
    /// Unfinished drawing.
    Incomplete,
    /// Structurally wrong in some other way (tasks right, dependencies
    /// neither correct nor a chain).
    IncorrectStructure,
    /// No evidence of the concept — drew the flag, wrote code, or used
    /// unrecognizable tasks.
    NoLearning,
}

impl SubmissionGrade {
    /// Whether the paper would count this among the "at least mostly
    /// correct" 59%.
    pub fn is_at_least_mostly_correct(self) -> bool {
        matches!(
            self,
            SubmissionGrade::Perfect | SubmissionGrade::MostlyCorrect(_)
        )
    }
}

fn norm(s: &str) -> String {
    s.trim().to_ascii_lowercase()
}

/// Classify a submission against a reference graph.
pub fn classify(
    submission: &SubmittedGraph,
    reference: &TaskGraph,
    options: &GradeOptions,
) -> SubmissionGrade {
    let ref_labels: BTreeMap<String, crate::graph::TaskId> = reference
        .ids()
        .map(|t| (norm(reference.label(t)), t))
        .collect();
    let optional: BTreeSet<String> = options.optional_tasks.iter().map(|s| norm(s)).collect();

    // Map each submitted task index to the set of canonical reference
    // labels it stands for.
    let mut mapping: Vec<Option<BTreeSet<String>>> = Vec::with_capacity(submission.tasks.len());
    let mut used_split = false;
    let mut used_merge = false;
    for label in &submission.tasks {
        let l = norm(label);
        if ref_labels.contains_key(&l) {
            mapping.push(Some(BTreeSet::from([l])));
            continue;
        }
        // Split part?
        if let Some((canon, _)) = options
            .splits
            .iter()
            .find(|(_, parts)| parts.iter().any(|p| norm(p) == l))
        {
            used_split = true;
            mapping.push(Some(BTreeSet::from([norm(canon)])));
            continue;
        }
        // Merge label?
        if let Some((_, members)) = options.merges.iter().find(|(m, _)| norm(m) == l) {
            used_merge = true;
            mapping.push(Some(members.iter().map(|m| norm(m)).collect()));
            continue;
        }
        mapping.push(None);
    }

    let recognized = mapping.iter().flatten().count();
    if recognized == 0 {
        return SubmissionGrade::NoLearning;
    }
    if !submission.complete {
        return SubmissionGrade::Incomplete;
    }

    // Coverage: every required reference task must be represented.
    let covered: BTreeSet<String> = mapping.iter().flatten().flatten().cloned().collect();
    let required: BTreeSet<String> = ref_labels
        .keys()
        .filter(|l| !optional.contains(*l))
        .cloned()
        .collect();
    if !required.is_subset(&covered) {
        return SubmissionGrade::Incomplete;
    }

    // Unrecognized extra tasks beyond the reference are fine as long as the
    // real structure is right; they simply don't participate.

    // Spatial submissions with no arrows: correct grouping earns
    // mostly-correct.
    if submission.spatial_only && submission.edges.is_empty() {
        return SubmissionGrade::MostlyCorrect(MostlyVariant::SpatialNoArrows);
    }

    // Canonicalized submitted dependency closure.
    let sub_closure = canonical_closure(submission, &mapping);

    // Reference closure restricted to required ∪ covered-optional tasks.
    let mut ref_closure: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, b) in reference.transitive_closure() {
        let (la, lb) = (norm(reference.label(a)), norm(reference.label(b)));
        let a_in = covered.contains(&la);
        let b_in = covered.contains(&lb);
        if a_in && b_in {
            ref_closure.insert((la, lb));
        }
    }

    if sub_closure == ref_closure {
        return if used_split {
            SubmissionGrade::MostlyCorrect(MostlyVariant::SplitTask)
        } else if used_merge {
            SubmissionGrade::MostlyCorrect(MostlyVariant::MergedTasks)
        } else {
            SubmissionGrade::Perfect
        };
    }

    // Linear chain: the submitted tasks form one total order.
    if is_chain(submission) && submission.tasks.len() >= 3 {
        return SubmissionGrade::LinearChain;
    }

    SubmissionGrade::IncorrectStructure
}

/// The transitive closure of the submission's arrows, expressed over
/// canonical labels (split parts collapse; merge labels expand).
fn canonical_closure(
    submission: &SubmittedGraph,
    mapping: &[Option<BTreeSet<String>>],
) -> BTreeSet<(String, String)> {
    let n = submission.tasks.len();
    // Closure over submitted indices first (Floyd-Warshall-ish; n is tiny).
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in &submission.edges {
        if a < n && b < n {
            reach[a][b] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let row_k = reach[k].clone();
                for (j, r) in reach[i].iter_mut().enumerate() {
                    if row_k[j] {
                        *r = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for i in 0..n {
        for j in 0..n {
            if !reach[i][j] {
                continue;
            }
            let (Some(from), Some(to)) = (&mapping[i], &mapping[j]) else {
                continue;
            };
            for f in from {
                for t in to {
                    if f != t {
                        out.insert((f.clone(), t.clone()));
                    }
                }
            }
        }
    }
    out
}

/// Whether the submitted arrows form a single chain covering all tasks:
/// exactly one start, one end, everyone else one-in-one-out, connected.
fn is_chain(submission: &SubmittedGraph) -> bool {
    let n = submission.tasks.len();
    if n == 0 {
        return false;
    }
    let mut indeg = vec![0usize; n];
    let mut outdeg = vec![0usize; n];
    for &(a, b) in &submission.edges {
        if a >= n || b >= n {
            return false;
        }
        outdeg[a] += 1;
        indeg[b] += 1;
    }
    if submission.edges.len() != n - 1 {
        return false;
    }
    let starts = (0..n).filter(|&i| indeg[i] == 0).count();
    let ends = (0..n).filter(|&i| outdeg[i] == 0).count();
    starts == 1
        && ends == 1
        && (0..n).all(|i| indeg[i] <= 1 && outdeg[i] <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 9 reference: three stripes → red triangle → white dot.
    fn jordan_reference() -> TaskGraph {
        let mut g = TaskGraph::new();
        let black = g.add_task("black stripe", 10);
        let white = g.add_task("white stripe", 10);
        let green = g.add_task("green stripe", 10);
        let tri = g.add_task("red triangle", 8);
        let dot = g.add_task("white dot", 1);
        for s in [black, white, green] {
            g.add_dep(s, tri).unwrap();
        }
        g.add_dep(tri, dot).unwrap();
        g
    }

    fn jordan_options() -> GradeOptions {
        GradeOptions {
            optional_tasks: vec!["white stripe".into()],
            splits: vec![(
                "red triangle".into(),
                vec!["top triangle".into(), "bottom triangle".into()],
            )],
            merges: vec![(
                "stripes".into(),
                vec![
                    "black stripe".into(),
                    "white stripe".into(),
                    "green stripe".into(),
                ],
            )],
        }
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn perfect_submission() {
        let sub = SubmittedGraph::new(
            s(&[
                "black stripe",
                "white stripe",
                "green stripe",
                "red triangle",
                "white dot",
            ]),
            vec![(0, 3), (1, 3), (2, 3), (3, 4)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Perfect
        );
    }

    #[test]
    fn perfect_with_omitted_white_stripe() {
        // "we counted the graph as correct if it omitted the box for
        // drawing the white stripe".
        let sub = SubmittedGraph::new(
            s(&["black stripe", "green stripe", "red triangle", "white dot"]),
            vec![(0, 2), (1, 2), (2, 3)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Perfect
        );
    }

    #[test]
    fn split_triangle_is_mostly_correct() {
        // 5 students split the triangle horizontally into two right
        // triangles; none refined the dependencies, still mostly correct.
        let sub = SubmittedGraph::new(
            s(&[
                "black stripe",
                "white stripe",
                "green stripe",
                "top triangle",
                "bottom triangle",
                "white dot",
            ]),
            vec![
                (0, 3),
                (1, 3),
                (2, 3),
                (0, 4),
                (1, 4),
                (2, 4),
                (3, 5),
                (4, 5),
            ],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::MostlyCorrect(MostlyVariant::SplitTask)
        );
    }

    #[test]
    fn merged_stripes_is_mostly_correct() {
        // "one who used one task for all the stripes".
        let sub = SubmittedGraph::new(
            s(&["stripes", "red triangle", "white dot"]),
            vec![(0, 1), (1, 2)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::MostlyCorrect(MostlyVariant::MergedTasks)
        );
    }

    #[test]
    fn spatial_without_arrows_is_mostly_correct() {
        let mut sub = SubmittedGraph::new(
            s(&[
                "black stripe",
                "white stripe",
                "green stripe",
                "red triangle",
                "white dot",
            ]),
            vec![],
        );
        sub.spatial_only = true;
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::MostlyCorrect(MostlyVariant::SpatialNoArrows)
        );
    }

    #[test]
    fn linear_chain_detected() {
        // "the most common error ... a linear chain of tasks".
        let sub = SubmittedGraph::new(
            s(&[
                "black stripe",
                "white stripe",
                "green stripe",
                "red triangle",
                "white dot",
            ]),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::LinearChain
        );
    }

    #[test]
    fn incomplete_detected() {
        let mut sub = SubmittedGraph::new(
            s(&["black stripe", "green stripe"]),
            vec![(0, 1)],
        );
        sub.complete = false;
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Incomplete
        );
        // Missing required tasks is also incomplete even if "finished".
        let sub2 = SubmittedGraph::new(s(&["black stripe", "red triangle"]), vec![(0, 1)]);
        assert_eq!(
            classify(&sub2, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Incomplete
        );
    }

    #[test]
    fn no_learning_detected() {
        // "they drew the flag or started giving code to draw it".
        let sub = SubmittedGraph::new(s(&["for loop", "draw()"]), vec![(0, 1)]);
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::NoLearning
        );
    }

    #[test]
    fn reversed_dependency_is_incorrect_structure() {
        // Dot before triangle, triangle before stripes: wrong but not a
        // chain (stripes fan in).
        let sub = SubmittedGraph::new(
            s(&[
                "white dot",
                "red triangle",
                "black stripe",
                "white stripe",
                "green stripe",
            ]),
            vec![(0, 1), (1, 2), (1, 3), (1, 4)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::IncorrectStructure
        );
    }

    #[test]
    fn extra_redundant_edges_still_perfect() {
        // Adding stripe → dot edges doesn't change the closure.
        let sub = SubmittedGraph::new(
            s(&[
                "black stripe",
                "white stripe",
                "green stripe",
                "red triangle",
                "white dot",
            ]),
            vec![(0, 3), (1, 3), (2, 3), (3, 4), (0, 4), (1, 4), (2, 4)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Perfect
        );
    }

    #[test]
    fn at_least_mostly_correct_helper() {
        assert!(SubmissionGrade::Perfect.is_at_least_mostly_correct());
        assert!(SubmissionGrade::MostlyCorrect(MostlyVariant::SplitTask)
            .is_at_least_mostly_correct());
        assert!(!SubmissionGrade::LinearChain.is_at_least_mostly_correct());
        assert!(!SubmissionGrade::NoLearning.is_at_least_mostly_correct());
    }

    #[test]
    fn labels_match_case_insensitively() {
        let sub = SubmittedGraph::new(
            s(&[
                "Black Stripe",
                "WHITE STRIPE",
                "green stripe ",
                "Red Triangle",
                "White Dot",
            ]),
            vec![(0, 3), (1, 3), (2, 3), (3, 4)],
        );
        assert_eq!(
            classify(&sub, &jordan_reference(), &jordan_options()),
            SubmissionGrade::Perfect
        );
    }
}
