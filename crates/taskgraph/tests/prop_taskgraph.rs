//! Property tests: random DAGs must satisfy the work/span laws, schedule
//! validity, and closure/reduction identities.

use flagsim_taskgraph::analysis::{
    critical_path, greedy_upper_bound, makespan_lower_bound, span, work,
};
use flagsim_taskgraph::{list_schedule, Priority, TaskGraph};
use proptest::prelude::*;

/// Build a random DAG: `n` tasks, edges only forward (i → j with i < j),
/// so acyclicity is guaranteed by construction.
fn random_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..18).prop_flat_map(|n| {
        let weights = proptest::collection::vec(1u64..100, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        (weights, edges).prop_map(|(weights, edges)| {
            let mut g = TaskGraph::new();
            let ids: Vec<_> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| g.add_task(format!("t{i}"), w))
                .collect();
            for (a, b) in edges {
                if a < b {
                    g.add_dep(ids[a], ids[b]).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every list schedule is valid and sits inside the theory envelope.
    #[test]
    fn schedules_valid_and_bounded(g in random_dag(), p in 1usize..6) {
        for pr in [Priority::CriticalPath, Priority::Fifo, Priority::LongestTask] {
            let s = list_schedule(&g, p, pr);
            prop_assert!(s.validate(&g).is_ok(), "invalid schedule: {pr:?}");
            prop_assert!(s.makespan >= makespan_lower_bound(&g, p));
            prop_assert!(s.makespan <= greedy_upper_bound(&g, p));
        }
    }

    /// One processor serializes exactly the work; enough processors hit
    /// the span for chain-free... rather: makespan is non-increasing in p
    /// is NOT guaranteed for list scheduling in general, but the p=1 case
    /// must equal work and p=n with critical-path priority must be ≥ span.
    #[test]
    fn single_proc_equals_work(g in random_dag()) {
        let s = list_schedule(&g, 1, Priority::CriticalPath);
        prop_assert_eq!(s.makespan, work(&g));
    }

    /// The critical path is a real dependency chain whose weights sum to
    /// the span.
    #[test]
    fn critical_path_is_a_chain(g in random_dag()) {
        let (path, total) = critical_path(&g);
        prop_assert_eq!(total, span(&g));
        let sum: u64 = path.iter().map(|&t| g.weight(t)).sum();
        prop_assert_eq!(sum, total);
        for w in path.windows(2) {
            prop_assert!(g.reaches(w[0], w[1]), "path edge not a dependency");
        }
    }

    /// Transitive reduction preserves reachability with a minimal edge set.
    #[test]
    fn reduction_preserves_closure(g in random_dag()) {
        let red = g.transitive_reduction();
        prop_assert_eq!(red.transitive_closure(), g.transitive_closure());
        prop_assert!(red.edge_count() <= g.edge_count());
        // Reducing twice changes nothing.
        let red2 = red.transitive_reduction();
        prop_assert_eq!(red.edge_count(), red2.edge_count());
    }

    /// Topological order is a permutation respecting every edge.
    #[test]
    fn topo_order_is_valid(g in random_dag()) {
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for (a, b) in g.edges() {
            prop_assert!(pos[&a] < pos[&b]);
        }
    }

    /// Span never exceeds work; parallelism ≥ 1.
    #[test]
    fn span_le_work(g in random_dag()) {
        prop_assert!(span(&g) <= work(&g));
    }
}
