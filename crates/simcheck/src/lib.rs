//! # flagsim-simcheck
//!
//! Static scenario analysis and happens-before race detection for the
//! simulated classroom.
//!
//! The simulator (`flagsim-core` on `flagsim-desim`) tells you what *did*
//! happen on one seed. This crate tells you what *could* happen — before
//! the run, or by analyzing a run's trace:
//!
//! * [`scenario_check`] — the static pre-run checker: flag-spec lints at
//!   the raster the scenario actually uses, partition coverage (every
//!   colorable cell exactly once, right color), lock-order cycles
//!   (potential deadlocks found without simulating), and fault-plan
//!   validation.
//! * [`hb`] — a vector-clock happens-before race detector over a run's
//!   event trace: sync edges come from the same-timestamp
//!   `Released`/`Acquired` hand-off pairing, and same-cell writes that
//!   are not HB-ordered are reported as races together with the
//!   acquire-order tie that hid them.
//! * [`explore`] — the bounded model checker behind `flagsim verify`:
//!   enumerate every resolution of the engine's scheduler ties (with
//!   sleep-set partial-order reduction and state-hash cutting) and prove
//!   outcome invariance or produce a minimal divergent witness pair /
//!   reachable-deadlock schedule.
//! * [`lockorder`] — the lock-order graph the static checker builds,
//!   usable directly for custom scripts like the demo-deadlock drill.
//! * [`diag`] — the shared diagnostics framework: stable `SC###` IDs,
//!   `error`/`warning`/`note` severities, allow-lists, and deterministic
//!   text/JSON exposition.
//! * [`catalog`] — every `SC###` ID with its default severity.
//!
//! Everything renders deterministically: the same findings produce the
//! same bytes, in text and in JSON, independent of thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod diag;
pub mod explore;
pub mod hb;
pub mod lockorder;
pub mod scenario_check;

pub use catalog::{describe, CatalogEntry, CATALOG};
pub use diag::{from_flag_lints, Diag, Report, Severity};
pub use explore::{
    annotate_ties, deadlock_matches_cycle, demo_deadlock_engine, explore, explore_activity,
    explore_engine, format_script, verify_diags, ActivityExploration, Exploration, ExploreConfig,
    Outcome, OutcomeClass, WitnessPair,
};
pub use hb::{analyze_hb, cell_accesses, check_run, CellAccess, HbAnalysis};
pub use lockorder::{
    demo_deadlock_seqs, scenario_lock_seqs, LockOp, LockOrderGraph, LockSeq,
};
pub use scenario_check::{
    check_advice, check_fault_plan, check_flag_spec, check_lock_order, check_partition,
    full_report, static_report, CheckTarget,
};
