//! Static lock-order analysis: predict deadlocks without simulating.
//!
//! Each process contributes an ordered sequence of acquire/release
//! operations on named resources (for a scenario: the marker colors its
//! work list demands, under the configured release policy). An edge
//! `A -> B` is recorded whenever some process requests `B` while still
//! holding `A`. A cycle in that graph is the classic circular-wait
//! precondition: some interleaving can deadlock, even if the FIFO event
//! queue happens to dodge it on every seed you tried.
//!
//! The runtime counterpart is the engine's wait-for graph
//! (`flagsim_desim::WaitForGraph`, reported by the stall detector): the
//! static cycle names exactly the resources a stalled run's waiters are
//! parked on — `prop_check.rs` pins that agreement on the classic
//! demo-deadlock setup.

use crate::diag::{Diag, Severity};
use flagsim_core::{ActivityConfig, ReleasePolicy, Scenario};
use flagsim_core::work::PreparedFlag;
use std::collections::{BTreeMap, BTreeSet};

/// One lock operation in a process's script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOp {
    /// Request (and eventually hold) the named resource.
    Acquire(String),
    /// Release it.
    Release(String),
}

/// One process's ordered lock script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSeq {
    /// Display name ("P1", "grabs-red-then-blue").
    pub name: String,
    /// The operations, in program order.
    pub ops: Vec<LockOp>,
}

/// The lock-order graph: resources as nodes, held-while-requesting as
/// edges, each edge remembering one witnessing process.
#[derive(Debug, Clone, Default)]
pub struct LockOrderGraph {
    /// Node labels, sorted.
    pub resources: Vec<String>,
    /// Edges `held -> requested` with one witness name per edge.
    pub edges: BTreeMap<(String, String), String>,
}

impl LockOrderGraph {
    /// Build the graph from every process's script.
    pub fn build(seqs: &[LockSeq]) -> LockOrderGraph {
        let mut resources = BTreeSet::new();
        let mut edges = BTreeMap::new();
        for seq in seqs {
            let mut held: Vec<String> = Vec::new();
            for op in &seq.ops {
                match op {
                    LockOp::Acquire(r) => {
                        resources.insert(r.clone());
                        for h in &held {
                            if h != r {
                                edges
                                    .entry((h.clone(), r.clone()))
                                    .or_insert_with(|| seq.name.clone());
                            }
                        }
                        held.push(r.clone());
                    }
                    LockOp::Release(r) => {
                        if let Some(pos) = held.iter().rposition(|h| h == r) {
                            held.remove(pos);
                        }
                    }
                }
            }
        }
        LockOrderGraph {
            resources: resources.into_iter().collect(),
            edges,
        }
    }

    /// Every elementary cycle's node set, as sorted resource-name lists
    /// (deduplicated). Deterministic: nodes are visited in sorted order.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        // Iterative DFS with an explicit stack over the (small) graph:
        // standard color marking, recording the stack slice when a back
        // edge closes a cycle.
        let index: BTreeMap<&str, usize> = self
            .resources
            .iter()
            .enumerate()
            .map(|(i, r)| (r.as_str(), i))
            .collect();
        let n = self.resources.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (h, r) in self.edges.keys() {
            if let (Some(&a), Some(&b)) = (index.get(h.as_str()), index.get(r.as_str())) {
                adj[a].push(b);
            }
        }
        let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();

        // Depth-first walk from every root; path-based cycle extraction.
        fn dfs(
            v: usize,
            adj: &[Vec<usize>],
            on_stack: &mut [bool],
            stack: &mut Vec<usize>,
            names: &[String],
            found: &mut BTreeSet<Vec<String>>,
            depth: usize,
        ) {
            if depth > names.len() {
                return;
            }
            on_stack[v] = true;
            stack.push(v);
            for &w in &adj[v] {
                if on_stack[w] {
                    if let Some(pos) = stack.iter().position(|&s| s == w) {
                        let mut cycle: Vec<String> =
                            stack[pos..].iter().map(|&i| names[i].clone()).collect();
                        cycle.sort();
                        found.insert(cycle);
                    }
                } else {
                    dfs(w, adj, on_stack, stack, names, found, depth + 1);
                }
            }
            stack.pop();
            on_stack[v] = false;
        }
        for v in 0..n {
            dfs(v, &adj, &mut on_stack, &mut stack, &self.resources, &mut found, 0);
        }
        found.into_iter().collect()
    }

    /// Cycle findings as SC204 diagnostics (empty when deadlock-free).
    pub fn diags(&self) -> Vec<Diag> {
        self.cycles()
            .into_iter()
            .map(|cycle| {
                let mut d = Diag::new(
                    "SC204",
                    Severity::Error,
                    cycle.join(" / "),
                    format!(
                        "lock-order cycle between {{{}}} — some interleaving deadlocks",
                        cycle.join(", ")
                    ),
                );
                for ((h, r), witness) in &self.edges {
                    if cycle.contains(h) && cycle.contains(r) {
                        d = d.with_detail(format!(
                            "{witness} requests \"{r}\" while holding \"{h}\""
                        ));
                    }
                }
                d
            })
            .collect()
    }
}

/// Derive each student's lock script from a scenario, statically: the
/// work list's color sequence becomes marker acquire/releases under the
/// configured [`ReleasePolicy`]. (Students hold one implement at a time,
/// so scenario scripts are always deadlock-free — the analyzer earns its
/// keep on custom scripts like the demo-deadlock drill.)
pub fn scenario_lock_seqs(
    scenario: &Scenario,
    flag: &PreparedFlag,
    config: &ActivityConfig,
) -> Vec<LockSeq> {
    let assignments = scenario
        .strategy
        .assignments(flag, scenario.order, &config.skip_colors);
    assignments
        .iter()
        .enumerate()
        .map(|(i, items)| {
            let mut ops = Vec::new();
            let mut held: Option<String> = None;
            for item in items {
                let marker = format!("{} marker", item.color);
                match config.policy {
                    ReleasePolicy::ReleaseEachCell => {
                        ops.push(LockOp::Acquire(marker.clone()));
                        ops.push(LockOp::Release(marker));
                    }
                    ReleasePolicy::KeepUntilColorChange => {
                        if held.as_ref() != Some(&marker) {
                            if let Some(old) = held.take() {
                                ops.push(LockOp::Release(old));
                            }
                            ops.push(LockOp::Acquire(marker.clone()));
                            held = Some(marker);
                        }
                    }
                }
            }
            if let Some(old) = held {
                ops.push(LockOp::Release(old));
            }
            LockSeq {
                name: format!("P{}", i + 1),
                ops,
            }
        })
        .collect()
}

/// The classic two-students/two-markers circular-wait drill (the same
/// setup `flagsim faults --demo-deadlock` runs live).
pub fn demo_deadlock_seqs() -> Vec<LockSeq> {
    vec![
        LockSeq {
            name: "grabs-red-then-blue".to_owned(),
            ops: vec![
                LockOp::Acquire("red marker".to_owned()),
                LockOp::Acquire("blue marker".to_owned()),
            ],
        },
        LockSeq {
            name: "grabs-blue-then-red".to_owned(),
            ops: vec![
                LockOp::Acquire("blue marker".to_owned()),
                LockOp::Acquire("red marker".to_owned()),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    use flagsim_flags::library;

    #[test]
    fn demo_deadlock_has_exactly_one_cycle() {
        let g = LockOrderGraph::build(&demo_deadlock_seqs());
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0], vec!["blue marker".to_owned(), "red marker".to_owned()]);
        let diags = g.diags();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].id, "SC204");
        assert!(diags[0].detail.iter().any(|l| l.contains("while holding")));
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let seqs = vec![
            LockSeq {
                name: "a".into(),
                ops: vec![
                    LockOp::Acquire("x".into()),
                    LockOp::Acquire("y".into()),
                    LockOp::Release("y".into()),
                    LockOp::Release("x".into()),
                ],
            },
            LockSeq {
                name: "b".into(),
                ops: vec![LockOp::Acquire("x".into()), LockOp::Acquire("y".into())],
            },
        ];
        assert!(LockOrderGraph::build(&seqs).cycles().is_empty());
    }

    #[test]
    fn three_way_rotation_cycles() {
        let names = ["x", "y", "z"];
        let seqs: Vec<LockSeq> = (0..3)
            .map(|i| LockSeq {
                name: format!("p{i}"),
                ops: vec![
                    LockOp::Acquire(names[i].to_owned()),
                    LockOp::Acquire(names[(i + 1) % 3].to_owned()),
                ],
            })
            .collect();
        let cycles = LockOrderGraph::build(&seqs).cycles();
        assert!(
            cycles.iter().any(|c| c.len() == 3),
            "expected the 3-cycle: {cycles:?}"
        );
    }

    #[test]
    fn scenario_scripts_hold_one_marker_and_are_acyclic() {
        let flag = PreparedFlag::new(&library::mauritius());
        let cfg = ActivityConfig::default();
        for scenario in [
            Scenario::fig1(4),
            Scenario::alternating_slices(),
            Scenario::new(
                "by color",
                PartitionStrategy::ByColor,
                CellOrder::RowMajor,
            ),
        ] {
            let seqs = scenario_lock_seqs(&scenario, &flag, &cfg);
            assert!(!seqs.is_empty());
            let g = LockOrderGraph::build(&seqs);
            assert!(g.edges.is_empty(), "{}: {:?}", scenario.name, g.edges);
            assert!(g.cycles().is_empty());
        }
    }
}
