//! The lint catalog: every stable `SC###` ID this crate (or
//! `flagsim_flags::lint`) can emit, with its default severity and a
//! one-line description.
//!
//! IDs are grouped by analyzer:
//!
//! * `SC1xx` — flag-spec lints (emitted by `flagsim_flags::lint`)
//! * `SC2xx` — static pre-run checks (partition, lock order, fault plan)
//! * `SC3xx` — dynamic happens-before analysis over a run's trace
//! * `SC4xx` — the §IV dry-run advice checklist, mapped into the framework
//!
//! IDs are append-only: an ID, once shipped, keeps its meaning forever
//! (allow-lists and CI greps depend on that), and retired IDs are never
//! reused.

use crate::diag::Severity;

/// One catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The stable ID.
    pub id: &'static str,
    /// Severity the analyzer assigns by default.
    pub severity: Severity,
    /// What the lint means.
    pub summary: &'static str,
}

/// Every lint this crate knows about, in ID order.
pub const CATALOG: &[CatalogEntry] = &[
    // SC1xx — flag-spec lints.
    CatalogEntry {
        id: "SC101",
        severity: Severity::Error,
        summary: "the flag paints no cells at all at this raster — nothing to color",
    },
    CatalogEntry {
        id: "SC102",
        severity: Severity::Warning,
        summary: "a layer paints no cells at this raster (shape too small or off the flag)",
    },
    CatalogEntry {
        id: "SC103",
        severity: Severity::Warning,
        summary: "a layer is completely overpainted by later layers",
    },
    CatalogEntry {
        id: "SC104",
        severity: Severity::Note,
        summary: "heavy overpainting: under a quarter of a layer's painted cells stay visible",
    },
    CatalogEntry {
        id: "SC105",
        severity: Severity::Note,
        summary: "blank cells no layer covers (fine if paper-white is intended)",
    },
    // SC2xx — static pre-run checks.
    CatalogEntry {
        id: "SC201",
        severity: Severity::Error,
        summary: "partition leaves colorable cells uncovered",
    },
    CatalogEntry {
        id: "SC202",
        severity: Severity::Error,
        summary: "a cell is assigned to more than one student",
    },
    CatalogEntry {
        id: "SC203",
        severity: Severity::Error,
        summary: "an assignment's color disagrees with the flag's reference raster",
    },
    CatalogEntry {
        id: "SC204",
        severity: Severity::Error,
        summary: "the lock-order graph has a cycle — a potential deadlock",
    },
    CatalogEntry {
        id: "SC205",
        severity: Severity::Note,
        summary: "a student has an empty assignment (sits the scenario out)",
    },
    CatalogEntry {
        id: "SC210",
        severity: Severity::Error,
        summary: "a fault targets a student outside the team",
    },
    CatalogEntry {
        id: "SC211",
        severity: Severity::Warning,
        summary: "a fault targets a color the scenario never uses — it can never bite",
    },
    CatalogEntry {
        id: "SC212",
        severity: Severity::Error,
        summary: "the recovery policy cannot succeed (every student drops out, nobody left to rebalance onto)",
    },
    CatalogEntry {
        id: "SC213",
        severity: Severity::Warning,
        summary: "spare exhaustion: more implement failures of one color than spares on hand",
    },
    CatalogEntry {
        id: "SC214",
        severity: Severity::Error,
        summary: "a fault has a nonsensical time (negative, non-finite, or a bell at/before the start)",
    },
    // SC3xx — happens-before analysis.
    CatalogEntry {
        id: "SC301",
        severity: Severity::Error,
        summary: "data race: the same cell written by two students with no happens-before order",
    },
    CatalogEntry {
        id: "SC302",
        severity: Severity::Note,
        summary: "acquire-order tie: simultaneous requests resolved only by event-queue insertion order",
    },
    // SC4xx — dry-run advice checklist.
    CatalogEntry {
        id: "SC401",
        severity: Severity::Error,
        summary: "the kit is missing (or has dead) implements for a needed color",
    },
    CatalogEntry {
        id: "SC402",
        severity: Severity::Warning,
        summary: "worn implements slow every stroke",
    },
    CatalogEntry {
        id: "SC403",
        severity: Severity::Warning,
        summary: "crayons in the kit — expect breakage (the paper's students preferred markers)",
    },
    CatalogEntry {
        id: "SC404",
        severity: Severity::Error,
        summary: "the team is too small for the scenario",
    },
    CatalogEntry {
        id: "SC409",
        severity: Severity::Warning,
        summary: "other dry-run advice finding",
    },
    CatalogEntry {
        id: "SC410",
        severity: Severity::Warning,
        summary: "schedule-divergent: some tie resolution changes the outcome (witness pair attached)",
    },
    CatalogEntry {
        id: "SC411",
        severity: Severity::Error,
        summary: "deadlock is reachable: a concrete schedule stalls the run (witness attached)",
    },
    CatalogEntry {
        id: "SC412",
        severity: Severity::Note,
        summary: "schedule-invariant: every explored tie resolution produces the same outcome",
    },
    CatalogEntry {
        id: "SC413",
        severity: Severity::Warning,
        summary: "exploration bound exhausted before the schedule space was covered",
    },
];

/// Look up a catalog entry by ID.
pub fn describe(id: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_sorted_and_well_formed() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
        for e in CATALOG {
            assert!(e.id.starts_with("SC") && e.id.len() == 5, "bad id {}", e.id);
            assert!(e.id[2..].chars().all(|c| c.is_ascii_digit()));
            assert!(!e.summary.is_empty());
        }
    }

    #[test]
    fn describe_finds_known_and_rejects_unknown() {
        assert_eq!(describe("SC301").map(|e| e.severity), Some(Severity::Error));
        assert!(describe("SC999").is_none());
    }
}
