//! The static pre-run checker: everything that can be verified about a
//! planned session *without simulating it*.
//!
//! Orchestrates, in a fixed order:
//!
//! 1. flag-spec lints (`SC1xx`) at the recommended raster **and** at the
//!    raster the scenario actually uses — a thin stripe can vanish
//!    between the cell centers of a coarser grid;
//! 2. partition coverage (`SC201`/`SC202`/`SC203`/`SC205`) — a
//!    report-everything generalization of
//!    `flagsim_core::partition::verify_assignments`, which stops at the
//!    first problem;
//! 3. lock-order cycles (`SC204`) via [`crate::lockorder`];
//! 4. fault-plan validation (`SC210`–`SC214`);
//! 5. optionally, the §IV dry-run advice checklist mapped into the
//!    framework (`SC4xx`) — advisory, so [`static_report`] skips it and
//!    the CLI preflight only blocks on the rest.

use crate::diag::{from_flag_lints, Diag, Report, Severity};
use crate::lockorder::{scenario_lock_seqs, LockOrderGraph};
use flagsim_core::advice;
use flagsim_core::faults::{FaultEvent, FaultPlan};
use flagsim_core::work::PreparedFlag;
use flagsim_core::{ActivityConfig, Scenario, TeamKit};
use flagsim_flags::FlagSpec;
use flagsim_grid::Color;
use std::collections::BTreeMap;

/// Everything the static checker needs to know about a planned session.
pub struct CheckTarget<'a> {
    /// The flag spec (linted at both rasters).
    pub spec: &'a FlagSpec,
    /// The prepared flag at the raster the scenario will use.
    pub flag: &'a PreparedFlag,
    /// The task decomposition.
    pub scenario: &'a Scenario,
    /// The team's drawing kit.
    pub kit: &'a TeamKit,
    /// Students available (coloring roles plus the timer).
    pub team_size: usize,
    /// Run configuration (skip colors, release policy, …).
    pub config: &'a ActivityConfig,
    /// The fault plan, if the session is a drill ([`FaultPlan::none`]
    /// otherwise).
    pub plan: &'a FaultPlan,
}

/// Lint a flag spec at its recommended raster, and — when different — at
/// the raster a scenario actually uses.
pub fn check_flag_spec(spec: &FlagSpec, width: u32, height: u32) -> Vec<Diag> {
    let mut out = from_flag_lints(&flagsim_flags::lint(spec));
    if (width, height) != (spec.default_width, spec.default_height) {
        out.extend(from_flag_lints(&flagsim_flags::lint_at(spec, width, height)));
    }
    out
}

/// Check that the scenario's assignments cover every colorable cell
/// exactly once with the right color. Unlike
/// `partition::verify_assignments` this reports *all* problems, not just
/// the first.
pub fn check_partition(
    flag: &PreparedFlag,
    scenario: &Scenario,
    config: &ActivityConfig,
) -> Vec<Diag> {
    let assignments = scenario
        .strategy
        .assignments(flag, scenario.order, &config.skip_colors);
    let mut out = Vec::new();
    let mut owners: BTreeMap<flagsim_grid::CellId, Vec<usize>> = BTreeMap::new();
    for (i, part) in assignments.iter().enumerate() {
        if part.is_empty() {
            out.push(Diag::new(
                "SC205",
                Severity::Note,
                format!("student {}", i + 1),
                "empty assignment — this student sits the scenario out",
            ));
        }
        for item in part {
            owners.entry(item.cell).or_default().push(i);
            let expected = flag.reference.get(item.cell);
            if expected != item.color {
                out.push(Diag::new(
                    "SC203",
                    Severity::Error,
                    format!("cell {}", item.cell),
                    format!(
                        "student {} is told to color it {} but the flag wants {expected}",
                        i + 1,
                        item.color
                    ),
                ));
            }
        }
    }
    for (cell, who) in &owners {
        if who.len() > 1 {
            let names: Vec<String> =
                who.iter().map(|i| format!("student {}", i + 1)).collect();
            out.push(Diag::new(
                "SC202",
                Severity::Error,
                format!("cell {cell}"),
                format!("assigned to {} at once", names.join(" and ")),
            ));
        }
    }
    let uncovered: Vec<String> = flag
        .reference
        .iter()
        .filter(|(id, c)| {
            c.is_painted() && !config.skip_colors.contains(c) && !owners.contains_key(id)
        })
        .map(|(id, c)| format!("cell {id} ({c})"))
        .collect();
    if !uncovered.is_empty() {
        let mut d = Diag::new(
            "SC201",
            Severity::Error,
            "",
            format!(
                "{} colorable cell(s) are assigned to nobody — the flag cannot come out right",
                uncovered.len()
            ),
        );
        for cell in uncovered.iter().take(5) {
            d = d.with_detail(cell.clone());
        }
        if uncovered.len() > 5 {
            d = d.with_detail(format!("… and {} more", uncovered.len() - 5));
        }
        out.push(d);
    }
    out
}

/// Build the scenario's lock-order graph and report any cycle.
pub fn check_lock_order(
    flag: &PreparedFlag,
    scenario: &Scenario,
    config: &ActivityConfig,
) -> Vec<Diag> {
    LockOrderGraph::build(&scenario_lock_seqs(scenario, flag, config)).diags()
}

/// Validate a fault plan against the session it will be injected into:
/// `coloring` students, the colors the scenario actually uses, and the
/// kit's stock of spares. Reports every problem.
pub fn check_fault_plan(
    plan: &FaultPlan,
    coloring: usize,
    needed_colors: &[Color],
    kit: &TeamKit,
) -> Vec<Diag> {
    let mut out = Vec::new();
    let mut failures_by_color: BTreeMap<Color, usize> = BTreeMap::new();
    let mut dropouts: Vec<usize> = Vec::new();
    for e in &plan.events {
        let (t, who, color) = match e {
            FaultEvent::ImplementBreaks { color, at_secs }
            | FaultEvent::ImplementDriesOut { color, at_secs } => {
                *failures_by_color.entry(*color).or_default() += 1;
                (*at_secs, None, Some(*color))
            }
            FaultEvent::HandoffFumble { color, extra_secs } => {
                (*extra_secs, None, Some(*color))
            }
            FaultEvent::Dropout { student, at_secs } => {
                dropouts.push(*student);
                (*at_secs, Some(*student), None)
            }
            FaultEvent::LateArrival { student, at_secs } => (*at_secs, Some(*student), None),
            FaultEvent::DeadlineBell { at_secs } => (*at_secs, None, None),
        };
        if !t.is_finite() || t < 0.0 {
            out.push(Diag::new(
                "SC214",
                Severity::Error,
                format!("{e}"),
                "the fault's time is negative or not a number",
            ));
        } else if matches!(e, FaultEvent::DeadlineBell { .. }) && t == 0.0 {
            out.push(Diag::new(
                "SC214",
                Severity::Error,
                format!("{e}"),
                "the bell must ring after the start",
            ));
        }
        if let Some(s) = who {
            if s >= coloring {
                out.push(Diag::new(
                    "SC210",
                    Severity::Error,
                    format!("student #{}", s + 1),
                    format!(
                        "the fault targets student #{} but only {coloring} students color",
                        s + 1
                    ),
                ));
            }
        }
        if let Some(c) = color {
            if !needed_colors.contains(&c) {
                out.push(Diag::new(
                    "SC211",
                    Severity::Warning,
                    format!("{c}"),
                    format!("\"{e}\" targets a color this scenario never uses — it can never bite"),
                ));
            }
        }
    }
    dropouts.sort_unstable();
    dropouts.dedup();
    let everyone_leaves = coloring > 0 && dropouts.len() >= coloring;
    if everyone_leaves && !plan.policy.aborts() {
        out.push(Diag::new(
            "SC212",
            Severity::Error,
            "",
            format!(
                "every coloring student drops out and the policy is \"{}\" — \
                 there is nobody left to rebalance onto",
                plan.policy
            ),
        ));
    }
    for (c, failures) in &failures_by_color {
        let stocked = kit.count(*c);
        if *failures > stocked {
            out.push(Diag::new(
                "SC213",
                Severity::Warning,
                format!("{c}"),
                format!(
                    "{failures} {c} implement failure(s) but the kit stocks only {stocked} — \
                     spares run out before the plan does"
                ),
            ));
        }
    }
    out
}

/// Run the §IV dry-run advice checklist and map each non-passing finding
/// to its `SC4xx` ID.
pub fn check_advice(
    flag: &PreparedFlag,
    scenario: &Scenario,
    kit: &TeamKit,
    team_size: usize,
    config: &ActivityConfig,
) -> Vec<Diag> {
    advice::preflight(flag, scenario, kit, team_size, config)
        .into_iter()
        .filter(|r| r.severity != advice::Severity::Pass)
        .map(|r| {
            let (id, severity) = match r.check.as_str() {
                "implements present and usable" => ("SC401", Severity::Error),
                "implement condition" => ("SC402", Severity::Warning),
                "crayon warning" => ("SC403", Severity::Warning),
                "team size" => ("SC404", Severity::Error),
                _ => (
                    "SC409",
                    if r.severity == advice::Severity::Blocker {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                ),
            };
            Diag::new(id, severity, r.check, r.detail)
        })
        .collect()
}

/// How many students actually color under this scenario (extras are the
/// timer and sit out).
fn coloring_students(t: &CheckTarget<'_>) -> usize {
    t.scenario
        .strategy
        .assignments(t.flag, t.scenario.order, &t.config.skip_colors)
        .len()
}

/// The static-only report: flag lints, partition coverage, lock order,
/// fault plan. This is what `run`/`sweep`/`faults` preflight — it never
/// includes the advisory `SC4xx` checklist, so a deliberately
/// under-provisioned drill still reaches the runner.
pub fn static_report(t: &CheckTarget<'_>) -> Report {
    let mut report = Report::new(format!("{} / {}", t.flag.name, t.scenario.name));
    report.extend(check_flag_spec(t.spec, t.flag.width, t.flag.height));
    report.extend(check_partition(t.flag, t.scenario, t.config));
    report.extend(check_lock_order(t.flag, t.scenario, t.config));
    report.extend(check_fault_plan(
        t.plan,
        coloring_students(t),
        &t.flag.colors_needed(&t.config.skip_colors),
        t.kit,
    ));
    report.sort();
    report
}

/// The full static report: [`static_report`] plus the `SC4xx` dry-run
/// advice. (Dynamic `SC3xx` findings come from [`crate::hb`] and are
/// appended by the caller, which owns the run.)
pub fn full_report(t: &CheckTarget<'_>) -> Report {
    let mut report = static_report(t);
    report.extend(check_advice(t.flag, t.scenario, t.kit, t.team_size, t.config));
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use flagsim_agents::ImplementKind;
    use flagsim_core::partition::{CellOrder, PartitionStrategy};
    use flagsim_core::RecoveryPolicy;
    use flagsim_flags::library;
    use flagsim_grid::Region;

    fn mauritius_target(
        spec: &FlagSpec,
        flag: &PreparedFlag,
        scenario: &Scenario,
        kit: &TeamKit,
        plan: &FaultPlan,
        config: &ActivityConfig,
    ) -> Report {
        full_report(&CheckTarget {
            spec,
            flag,
            scenario,
            kit,
            team_size: 5,
            config,
            plan,
        })
    }

    #[test]
    fn clean_session_has_no_errors() {
        let spec = library::mauritius();
        let flag = PreparedFlag::new(&spec);
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let cfg = ActivityConfig::default();
        for n in 1..=4 {
            let sc = Scenario::fig1(n);
            let r = mauritius_target(&spec, &flag, &sc, &kit, &FaultPlan::none(), &cfg);
            let (errors, _, _) = r.counts();
            assert_eq!(errors, 0, "{}: {}", sc.name, r.render_text());
        }
    }

    #[test]
    fn bad_partition_reports_every_problem() {
        let spec = library::mauritius();
        let flag = PreparedFlag::new(&spec);
        // Custom partition: only the top-left cell, assigned twice.
        let one_cell = Region::from_ids([flagsim_grid::CellId(0)]);
        let sc = Scenario::new(
            "broken",
            PartitionStrategy::Custom(vec![one_cell.clone(), one_cell, Region::new()]),
            CellOrder::RowMajor,
        );
        let diags = check_partition(&flag, &sc, &ActivityConfig::default());
        let ids: Vec<&str> = diags.iter().map(|d| d.id).collect();
        assert!(ids.contains(&"SC201"), "uncovered: {ids:?}");
        assert!(ids.contains(&"SC202"), "double: {ids:?}");
        assert!(ids.contains(&"SC205"), "empty: {ids:?}");
        // 95 uncovered cells summarized in one finding, not 95.
        assert_eq!(ids.iter().filter(|&&i| i == "SC201").count(), 1);
        let uncovered = diags.iter().find(|d| d.id == "SC201").unwrap();
        assert!(uncovered.message.contains("95 colorable cell(s)"));
        assert!(uncovered.detail.iter().any(|l| l.contains("more")));
    }

    #[test]
    fn fault_plan_problems_are_itemized() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let plan = FaultPlan::new("bad drill")
            .dropout(7, 30.0) // team has 4
            .break_implement(Color::Orange, 10.0) // scenario never uses orange
            .break_implement(Color::Red, 20.0)
            .break_implement(Color::Red, 40.0) // 2 failures, 1 stocked
            .bell(0.0); // at the start
        let diags = check_fault_plan(&plan, 4, &Color::MAURITIUS, &kit);
        let ids: Vec<&str> = diags.iter().map(|d| d.id).collect();
        assert!(ids.contains(&"SC210"), "{ids:?}");
        assert!(ids.contains(&"SC211"), "{ids:?}");
        assert!(ids.contains(&"SC213"), "{ids:?}");
        assert!(ids.contains(&"SC214"), "{ids:?}");
    }

    #[test]
    fn everyone_dropping_out_is_unrecoverable_unless_aborting() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let all_gone = FaultPlan::new("exodus").dropout(0, 10.0).dropout(1, 20.0);
        let diags = check_fault_plan(&all_gone, 2, &Color::MAURITIUS, &kit);
        assert!(diags.iter().any(|d| d.id == "SC212"), "{diags:?}");
        let aborting = all_gone.with_policy(RecoveryPolicy::AbortAndReport);
        let diags = check_fault_plan(&aborting, 2, &Color::MAURITIUS, &kit);
        assert!(!diags.iter().any(|d| d.id == "SC212"), "{diags:?}");
    }

    #[test]
    fn stocked_spares_silence_sc213() {
        let kit = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS)
            .with_count(Color::Red, 2);
        let plan = FaultPlan::new("drill")
            .break_implement(Color::Red, 20.0)
            .dry_out(Color::Red, 40.0);
        let diags = check_fault_plan(&plan, 4, &Color::MAURITIUS, &kit);
        assert!(!diags.iter().any(|d| d.id == "SC213"), "{diags:?}");
    }

    #[test]
    fn advice_maps_to_stable_ids() {
        let spec = library::mauritius();
        let flag = PreparedFlag::new(&spec);
        let sc = Scenario::fig1(4);
        let cfg = ActivityConfig::default();
        let crayons = TeamKit::uniform(ImplementKind::Crayon, &Color::MAURITIUS);
        let diags = check_advice(&flag, &sc, &crayons, 5, &cfg);
        assert!(diags.iter().any(|d| d.id == "SC403" && d.severity == Severity::Warning));
        let markers = TeamKit::uniform(ImplementKind::ThickMarker, &Color::MAURITIUS);
        let diags = check_advice(&flag, &sc, &markers, 2, &cfg);
        assert!(diags.iter().any(|d| d.id == "SC404" && d.severity == Severity::Error));
    }

    #[test]
    fn static_report_excludes_advice() {
        let spec = library::mauritius();
        let flag = PreparedFlag::new(&spec);
        let sc = Scenario::fig1(4);
        let cfg = ActivityConfig::default();
        // Crayons would be SC403 in the full report…
        let kit = TeamKit::uniform(ImplementKind::Crayon, &Color::MAURITIUS);
        let t = CheckTarget {
            spec: &spec,
            flag: &flag,
            scenario: &sc,
            kit: &kit,
            team_size: 5,
            config: &cfg,
            plan: &FaultPlan::none(),
        };
        assert!(!static_report(&t).diags.iter().any(|d| d.id.starts_with("SC4")));
        assert!(full_report(&t).diags.iter().any(|d| d.id == "SC403"));
    }

    #[test]
    fn scenario_raster_is_linted_too() {
        let spec = library::mauritius();
        // At 2x2 there are only two rows of cell centers (v = 0.25 and
        // 0.75) for four stripes — two stripe layers paint nothing.
        let coarse = PreparedFlag::at_size(&spec, 2, 2);
        let diags = check_flag_spec(&spec, coarse.width, coarse.height);
        assert!(
            diags.iter().any(|d| d.id == "SC102" && d.message.contains("2x2")),
            "{diags:?}"
        );
    }
}
